"""E7 — ablation of the SSME privilege spacing.

Shows that spacing the privileged clock values ``2·diam(g)`` apart (the
paper's choice) is what keeps mutual exclusion safe for *every* identity
assignment: spacings of at most ``diam(g)`` admit legitimate configurations
with two simultaneous privileges.
"""

from __future__ import annotations

from repro.experiments import ablation_privilege_spacing

from conftest import run_report_benchmark


def test_ablation_privilege_spacing(benchmark):
    report = run_report_benchmark(
        benchmark, ablation_privilege_spacing.run_experiment, path_sizes=[7, 11, 15]
    )
    assert report.passed
    for row in report.rows:
        if row["paper_choice"]:
            assert row["safe_in_gamma1"]
        if row["spacing"] <= row["diam"]:
            assert not row["safe_in_gamma1"]
            assert row["violations_per_period"] > 0
