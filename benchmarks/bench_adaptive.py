"""E10 — adaptive-engine headline: online switching beats every fixed backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive.py                    # full headline
    PYTHONPATH=src python benchmarks/bench_adaptive.py --json BENCH_adaptive.json
    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick            # smaller workload

The headline workload is a regime-switching daemon on a large ring
(alternating synchronous phases, where the array kernels win, and sparse
single-vertex phases, where the dict dirty-set paths win).  No fixed
backend is right for both phases; ``engine="adaptive"`` re-decides online
and must beat the best *single* fixed backend on wall-clock
(``headline_wallclock.adaptive_beats_best_fixed``).

The JSON has two sections with different reproducibility contracts:

* ``headline_wallclock`` — machine-dependent timings (informational; CI
  only echoes the committed verdict, it never re-times).
* ``headline_adaptive`` — the **deterministic** trajectory facts of the
  E10 engine-equivalence rows (steps, moves, selection/final checksums,
  equivalence verdicts).  These are identical across machines, Python
  versions and NumPy presence — CI recomputes them in both the with-NumPy
  and no-NumPy jobs and compares exactly against the committed file
  (report-only, so an intentional semantic change shows up as a warning
  until the file is regenerated).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.core import RegimeSwitchingDaemon, Simulator
from repro.experiments import adaptive_speculation
from repro.graphs import ring_graph
from repro.mutex import SSME

#: The per-row columns of the deterministic headline (everything the CI
#: check compares; 'adaptive_switches' stays out — promotions need NumPy).
HEADLINE_KEYS = (
    "steps",
    "moves",
    "final_checksum",
    "selections_checksum",
    "equivalent",
    "horizon",
)

#: Fixed backends the adaptive engine races against.
FIXED_ENGINES = ("incremental", "vector", "vector-superstep")


def _time_engine(
    engine: str,
    n: int,
    dense_steps: int,
    sparse_steps: int,
    horizon: int,
    initial_seed: int,
    daemon_seed: int,
    repeat: int,
) -> Tuple[float, int]:
    """Best-of-``repeat`` wall-clock for one engine on the headline workload."""
    best = float("inf")
    steps = 0
    for _ in range(repeat):
        protocol = SSME(ring_graph(n))
        initial = protocol.random_configuration(random.Random(initial_seed))
        simulator = Simulator(
            protocol,
            RegimeSwitchingDaemon(dense_steps, sparse_steps),
            rng=random.Random(daemon_seed),
            engine=engine,
            trace="light",
        )
        started = time.perf_counter()
        execution = simulator.run(initial, max_steps=horizon)
        best = min(best, time.perf_counter() - started)
        steps = execution.steps
    return best, steps


def wallclock_headline(
    n: int,
    dense_steps: int,
    sparse_steps: int,
    periods: int,
    repeat: int,
) -> Dict[str, object]:
    """Race adaptive against every fixed backend on one workload."""
    horizon = periods * (dense_steps + sparse_steps)
    initial_seed, daemon_seed = 11, 5
    fixed: Dict[str, float] = {}
    for engine in FIXED_ENGINES:
        seconds, _ = _time_engine(
            engine, n, dense_steps, sparse_steps, horizon, initial_seed, daemon_seed, repeat
        )
        fixed[engine] = round(seconds, 4)
    adaptive_seconds, steps = _time_engine(
        "adaptive", n, dense_steps, sparse_steps, horizon, initial_seed, daemon_seed, repeat
    )
    best_fixed = min(fixed, key=fixed.get)
    return {
        "workload": {
            "topology": "ring",
            "n": n,
            "daemon": f"regime-switch({dense_steps},{sparse_steps})",
            "horizon": horizon,
            "steps": steps,
            "initial_seed": initial_seed,
            "daemon_seed": daemon_seed,
            "repeat": repeat,
        },
        "fixed_seconds": fixed,
        "best_fixed": best_fixed,
        "best_fixed_seconds": fixed[best_fixed],
        "adaptive_seconds": round(adaptive_seconds, 4),
        "speedup_vs_best_fixed": round(fixed[best_fixed] / adaptive_seconds, 3),
        "adaptive_beats_best_fixed": adaptive_seconds < fixed[best_fixed],
    }


def deterministic_headline(engine_sizes: Sequence[int]) -> Dict[str, Dict[str, object]]:
    """The E10 engine-equivalence trajectory facts, keyed by instance."""
    report = adaptive_speculation.run_experiment(
        engine_sizes=engine_sizes, gap_sizes=(), switching_sizes=()
    )
    return {
        row["instance"]: {key: row[key] for key in HEADLINE_KEYS}
        for row in report.rows
        if row["kind"] == "engine-equivalence"
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_adaptive.json",
        help="where to write the JSON summary (default: BENCH_adaptive.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller wall-clock workload (n=400, 2 periods, 1 repeat)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="wall-clock repetitions per engine; best is reported (default: 2)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n, periods, repeat = 400, 2, 1
    else:
        n, periods, repeat = 1000, 3, args.repeat

    started = time.time()
    wallclock = wallclock_headline(
        n=n, dense_steps=192, sparse_steps=768, periods=periods, repeat=repeat
    )
    trajectory = deterministic_headline(engine_sizes=(64, 96))
    elapsed = time.time() - started

    data = {
        "benchmark": "adaptive_engine",
        "code_version": adaptive_speculation.CODE_VERSION,
        "headline_wallclock": wallclock,
        "headline_adaptive": trajectory,
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")

    fixed = ", ".join(
        f"{engine}={seconds}s" for engine, seconds in wallclock["fixed_seconds"].items()
    )
    print(
        f"ring({n}) regime-switch workload, {wallclock['workload']['horizon']} steps:\n"
        f"  fixed backends: {fixed}\n"
        f"  adaptive: {wallclock['adaptive_seconds']}s "
        f"({wallclock['speedup_vs_best_fixed']}x vs best fixed "
        f"'{wallclock['best_fixed']}')"
    )
    for instance, facts in sorted(trajectory.items()):
        print(
            f"  {instance}: steps={facts['steps']} moves={facts['moves']} "
            f"equivalent={facts['equivalent']}"
        )
    print(f"\nwrote {args.json} (in {elapsed:.2f}s)", file=sys.stderr)
    return 0 if wallclock["adaptive_beats_best_fixed"] else 1


if __name__ == "__main__":
    sys.exit(main())
