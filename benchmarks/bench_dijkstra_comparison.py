"""E6 — regenerate the SSME vs Dijkstra head-to-head on rings.

The paper's headline: Dijkstra's protocol needs ~n synchronous steps, SSME
needs ceil(diam/2) ~ n/4, and no protocol can do better.
"""

from __future__ import annotations

from repro.experiments import dijkstra_comparison

from conftest import run_report_benchmark


def test_dijkstra_comparison(benchmark):
    report = run_report_benchmark(
        benchmark, dijkstra_comparison.run_experiment, ring_sizes=[8, 12, 16, 20, 24]
    )
    assert report.passed
    for row in report.rows:
        assert row["ssme_steps"] <= row["ssme_bound_ceil_diam_over_2"]
        assert row["ssme_steps"] <= row["dijkstra_steps"]
    largest = report.rows[-1]
    assert largest["advantage_factor"] >= 2.0
