"""Engine-scaling benchmark: steps/sec, old (reference) vs. new (incremental).

Measures the simulation step throughput of the reference full-rescan engine
against the incremental dirty-set engine (in both trace modes) across ring
sizes and daemons, and writes a JSON summary so the performance trajectory
is tracked across PRs.

Not collected by pytest (``bench_*`` prefix); run it directly::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --json BENCH_engine.json

Both engines measure the **same trajectory**: identical initial
configuration, seed and step budget (earlier revisions gave the incremental
engine a 4x budget, which made it time a different — more expensive,
post-stabilization — phase of the run than the reference did).

Two headline numbers (acceptance criteria of the engine PRs) on
``ring_graph(200)``:

* central daemon (``cd``): incremental must deliver >= 10x the reference
  engine's steps/sec (PR 1, dirty-set engine);
* synchronous daemon (``sd``): >= 5x, up from ~1x before the batched
  in-place view refresh (PR 2).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    Simulator,
    SynchronousDaemon,
)
from repro.graphs import ring_graph
from repro.unison import AsynchronousUnison

DEFAULT_SIZES = (50, 200, 800)
QUICK_SIZES = (50, 200)

DAEMON_FACTORIES = {
    "cd": CentralDaemon,
    "sd": SynchronousDaemon,
    "dd": lambda: DistributedDaemon(0.5),
}

ENGINE_MODES = (
    ("reference", "full"),
    ("incremental", "full"),
    ("incremental", "light"),
)


def _steps_for(n: int) -> int:
    """The per-run step budget.

    Identical for every engine: speedups are only meaningful when both
    engines simulate the same execution prefix (a shorter budget would
    keep the reference engine inside the cheap convergence phase while the
    incremental engine times the expensive stabilized phase).  The budget
    comfortably covers stabilization of the unison on a ring, so most of
    the window measures the steady state — the regime the synchronous
    daemon's batch fast path is built for.
    """
    return max(400, 480_000 // n)


def _measure(
    protocol: AsynchronousUnison,
    daemon_name: str,
    engine: str,
    trace: str,
    steps: int,
    seed: int,
    repeats: int,
) -> Dict[str, object]:
    initial = protocol.random_configuration(random.Random(seed))
    best = 0.0
    for _ in range(repeats):
        simulator = Simulator(
            protocol,
            DAEMON_FACTORIES[daemon_name](),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        start = time.perf_counter()
        execution = simulator.run(initial, max_steps=steps)
        elapsed = time.perf_counter() - start
        if execution.steps == 0:
            raise RuntimeError("benchmark run performed no steps")
        best = max(best, execution.steps / elapsed)
    return {
        "n": protocol.graph.n,
        "daemon": daemon_name,
        "engine": engine,
        "trace": trace,
        "steps": steps,
        "steps_per_sec": round(best, 1),
    }


def run_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    daemons: Sequence[str] = tuple(DAEMON_FACTORIES),
    seed: int = 0,
    repeats: int = 2,
) -> Dict[str, object]:
    """Run the full sweep and return the JSON-ready summary."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        protocol = AsynchronousUnison(ring_graph(n))
        for daemon_name in daemons:
            for engine, trace in ENGINE_MODES:
                row = _measure(
                    protocol,
                    daemon_name,
                    engine,
                    trace,
                    steps=_steps_for(n),
                    seed=seed,
                    repeats=repeats,
                )
                rows.append(row)
                print(
                    f"ring({row['n']:>4})  {row['daemon']:<3} "
                    f"{row['engine']:<11} trace={row['trace']:<5} "
                    f"{row['steps_per_sec']:>12,.1f} steps/s"
                )

    def throughput(n: int, daemon: str, engine: str, trace: str) -> Optional[float]:
        for row in rows:
            if (row["n"], row["daemon"], row["engine"], row["trace"]) == (
                n,
                daemon,
                engine,
                trace,
            ):
                return float(row["steps_per_sec"])
        return None

    speedups: List[Dict[str, object]] = []
    for n in sizes:
        for daemon_name in daemons:
            base = throughput(n, daemon_name, "reference", "full")
            if not base:
                continue
            for engine, trace in ENGINE_MODES[1:]:
                new = throughput(n, daemon_name, engine, trace)
                if new:
                    speedups.append(
                        {
                            "n": n,
                            "daemon": daemon_name,
                            "engine": engine,
                            "trace": trace,
                            "speedup_vs_reference": round(new / base, 2),
                        }
                    )

    def make_headline(daemon: str, target: float) -> Dict[str, object]:
        base = throughput(200, daemon, "reference", "full")
        full = throughput(200, daemon, "incremental", "full")
        light = throughput(200, daemon, "incremental", "light")
        if not (base and full and light):
            return {}
        return {
            "daemon": daemon,
            "n": 200,
            "reference_steps_per_sec": base,
            "incremental_full_speedup": round(full / base, 2),
            "incremental_light_speedup": round(light / base, 2),
            "target": target,
            "meets_target": max(full, light) / base >= target,
        }

    headline = make_headline("cd", 10.0) if 200 in sizes and "cd" in daemons else {}
    headline_sd = make_headline("sd", 5.0) if 200 in sizes and "sd" in daemons else {}

    return {
        "benchmark": "engine_scaling",
        "topology": "ring",
        "protocol": "AsynchronousUnison",
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
        "speedups": speedups,
        "headline": headline,
        "headline_sd": headline_sd,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_engine.json",
        help="where to write the JSON summary (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the n=800 sweep (useful on slow machines / CI)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    summary = run_benchmark(sizes=sizes, seed=args.seed)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    status = 0
    for key, label in (("headline", "cd"), ("headline_sd", "sd")):
        head = summary.get(key)
        if not head:
            continue
        print(
            f"headline: {label}/ring(200) speedup full={head['incremental_full_speedup']}x "
            f"light={head['incremental_light_speedup']}x "
            f"(target >= {head['target']}x: {'PASS' if head['meets_target'] else 'FAIL'})"
        )
        if not head["meets_target"]:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
