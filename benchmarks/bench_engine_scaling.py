"""Engine-scaling benchmark: steps/sec across engine backends.

Measures the simulation step throughput of the reference full-rescan engine
against the incremental dirty-set engine (both trace modes) and the
NumPy-vectorized array-state kernel across ring sizes and daemons, and
writes a JSON summary so the performance trajectory is tracked across PRs.

Not collected by pytest (``bench_*`` prefix); run it directly::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --json BENCH_engine.json

Every engine measures the **same trajectory**: identical initial
configuration, seed and step budget (earlier revisions gave the incremental
engine a 4x budget, which made it time a different — more expensive,
post-stabilization — phase of the run than the reference did).  Rows report
the **median** over ``--repeats`` timed runs (recorded per row), so the
report-only CI speedup checks are less sensitive to scheduler noise than
the best-of-two they replaced.

Headline numbers (acceptance criteria of the engine PRs):

* ``headline`` — central daemon (``cd``) on ``ring_graph(200)``:
  incremental >= 10x reference steps/sec (PR 1, dirty-set engine);
* ``headline_sd`` — synchronous daemon (``sd``) on ``ring_graph(200)``:
  incremental >= 5x (PR 2, batched in-place view refresh);
* ``headline_sd_vector`` — synchronous daemon on ``ring_graph(800)``
  (largest measured size under ``--quick``): vector kernel >= 15x the
  reference engine (PR 3, array-state kernel);
* ``headline_sd_superstep`` — synchronous daemon on ``ring_graph(3200)``
  (degrades to the largest measured size under ``--quick``): batched
  superstep backend >= 50x the reference engine (PR 5, in-kernel
  supersteps).  The reference baseline for this one row is measured at
  n=3200 directly (a few seconds of full rescans).

The dense regime is also swept at ``n ∈ {3200, 10000}`` (sd only; the
reference engine appears only in the n=3200 baseline row) and the
superstep regime at ``n ∈ {100000, 1000000}`` (single-step vector light at
1e5, superstep light at both — the single-step engine takes ~20s/120 steps
at 1e5 and materialized per-step deltas dominate memory at 1e6).  Those
rows start from the **legitimate** configuration — their step budget is
far below the ~n synchronous steps a random initial needs to stabilize at
these sizes, so a random start would measure the reset churn rather than
the steady state; each row records which ``initial`` it timed.

Every row records ``peak_rss_mb`` — the process-wide high-water RSS after
the row's runs (``getrusage``, Linux/macOS only, ``null`` elsewhere).
The counter is monotone, so a row's value is an *upper* bound attributable
to it only because rows run smallest-size first; read deltas between
consecutive rows, not absolutes.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]

from repro.core import (
    CentralDaemon,
    DistributedDaemon,
    Simulator,
    SynchronousDaemon,
    numpy_available,
)
from repro.graphs import ring_graph
from repro.unison import AsynchronousUnison

DEFAULT_SIZES = (50, 200, 800)
QUICK_SIZES = (50, 200)

#: Dense-regime scaling sizes: sd only; the reference engine is measured
#: at SUPERSTEP_HEADLINE_N alone (to baseline the superstep headline) and
#: skipped everywhere else in this range.
LARGE_SIZES = (3200, 10000)

#: Superstep-regime scaling sizes: sd only, light traces only.  The
#: single-step vector engine is still measured at the first size (~20s per
#: 120-step run); at the last only the superstep backend runs — its
#: checkpoint-and-replay trace keeps memory at a few state arrays where
#: the single-step engine materializes per-step deltas.
HUGE_SIZES = (100_000, 1_000_000)

#: The size whose reference-engine baseline anchors headline_sd_superstep.
SUPERSTEP_HEADLINE_N = 3200

DAEMON_FACTORIES = {
    "cd": CentralDaemon,
    "sd": SynchronousDaemon,
    "dd": lambda: DistributedDaemon(0.5),
}

ENGINE_MODES = (
    ("reference", "full"),
    ("incremental", "full"),
    ("incremental", "light"),
    ("vector", "full"),
    ("vector", "light"),
)

#: Extra modes measured only under the synchronous daemon — the batched
#: superstep path engages for sd alone (elsewhere "vector-superstep"
#: degrades to plain single-step "vector" and would duplicate those rows).
SD_ENGINE_MODES = (
    ("vector-superstep", "full"),
    ("vector-superstep", "light"),
)

#: Modes measured at the LARGE_SIZES rows (all sd).
LARGE_ENGINE_MODES = (
    ("incremental", "light"),
    ("vector", "full"),
    ("vector", "light"),
    ("vector-superstep", "full"),
    ("vector-superstep", "light"),
)


def _steps_for(n: int) -> int:
    """The per-run step budget.

    Identical for every engine: speedups are only meaningful when both
    engines simulate the same execution prefix (a shorter budget would
    keep the reference engine inside the cheap convergence phase while the
    incremental engine times the expensive stabilized phase).  Up to
    n=200 the budget covers stabilization of the unison on a ring, so most
    of the window measures the steady state; at larger sizes the window is
    an (engine-identical) mix of convergence and steady state from a
    random initial — the dedicated LARGE_SIZES rows start from the
    legitimate configuration to time the pure steady state instead.
    """
    return max(120, 480_000 // n)


def _peak_rss_mb() -> Optional[int]:
    """Process-wide high-water RSS in MB (monotone; None off Unix)."""
    if resource is None:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes.
    if sys.platform == "darwin":
        rss //= 1024
    return rss // 1024


def _measure(
    protocol: AsynchronousUnison,
    daemon_name: str,
    engine: str,
    trace: str,
    steps: int,
    seed: int,
    repeats: int,
    initial_kind: str = "random",
) -> Dict[str, object]:
    if initial_kind == "legitimate":
        initial = protocol.legitimate_configuration(0)
    else:
        initial = protocol.random_configuration(random.Random(seed))
    rates: List[float] = []
    resolved = engine
    for _ in range(repeats):
        simulator = Simulator(
            protocol,
            DAEMON_FACTORIES[daemon_name](),
            rng=random.Random(seed + 1),
            engine=engine,
            trace=trace,
        )
        resolved = simulator.engine
        start = time.perf_counter()
        execution = simulator.run(initial, max_steps=steps)
        elapsed = time.perf_counter() - start
        if execution.steps == 0:
            raise RuntimeError("benchmark run performed no steps")
        rates.append(execution.steps / elapsed)
    return {
        "n": protocol.graph.n,
        "daemon": daemon_name,
        "engine": engine,
        "resolved_engine": resolved,
        "trace": trace,
        "steps": steps,
        "repeats": repeats,
        "initial": initial_kind,
        "steps_per_sec": round(statistics.median(rates), 1),
        "peak_rss_mb": _peak_rss_mb(),
    }


def run_benchmark(
    sizes: Sequence[int] = DEFAULT_SIZES,
    daemons: Sequence[str] = tuple(DAEMON_FACTORIES),
    large_sizes: Sequence[int] = LARGE_SIZES,
    huge_sizes: Sequence[int] = HUGE_SIZES,
    seed: int = 0,
    repeats: int = 3,
) -> Dict[str, object]:
    """Run the full sweep and return the JSON-ready summary."""
    have_numpy = numpy_available()
    engine_modes: Tuple[Tuple[str, str], ...] = tuple(
        (engine, trace)
        for engine, trace in ENGINE_MODES
        if have_numpy or engine != "vector"
    )
    rows: List[Dict[str, object]] = []

    def measure_into_rows(protocol, daemon_name, engine, trace, steps, initial_kind="random"):
        row = _measure(
            protocol,
            daemon_name,
            engine,
            trace,
            steps=steps,
            seed=seed,
            repeats=repeats,
            initial_kind=initial_kind,
        )
        rows.append(row)
        print(
            f"ring({row['n']:>5})  {row['daemon']:<3} "
            f"{row['engine']:<11} trace={row['trace']:<5} "
            f"{row['steps_per_sec']:>12,.1f} steps/s  (median of {repeats})"
        )

    for n in sizes:
        # alpha=n, K=n+1 (the defaults) are always valid; the exact hole/cyclo
        # validation is skipped because it does not scale to the n>=3200 rows.
        protocol = AsynchronousUnison(ring_graph(n), validate_parameters=False)
        for daemon_name in daemons:
            modes = engine_modes
            if daemon_name == "sd" and have_numpy:
                modes = modes + SD_ENGINE_MODES
            for engine, trace in modes:
                measure_into_rows(protocol, daemon_name, engine, trace, _steps_for(n))

    # Dense-regime scaling rows: the reference engine is deliberately
    # skipped (minutes per run), so these rows have no speedup entry —
    # they track absolute steps/sec of the fast backends only.  The run
    # starts from the legitimate configuration: at these sizes the step
    # budget is far below the ~alpha = n steps a random initial needs to
    # stabilize, so a random start would time the reset/converge churn
    # instead of the steady state these rows exist to track (the n <= 800
    # rows keep the random initial — their budget covers stabilization,
    # so they measure the same mixed trajectory as the speedup headlines).
    for n in large_sizes:
        # alpha=n, K=n+1 (the defaults) are always valid; the exact hole/cyclo
        # validation is skipped because it does not scale to the n>=3200 rows.
        protocol = AsynchronousUnison(ring_graph(n), validate_parameters=False)
        modes: Tuple[Tuple[str, str], ...] = LARGE_ENGINE_MODES
        if n == SUPERSTEP_HEADLINE_N:
            # The one reference baseline in this range, anchoring
            # headline_sd_superstep (a few seconds of full rescans).
            modes = (("reference", "full"),) + modes
        for engine, trace in modes:
            if engine.startswith("vector") and not have_numpy:
                continue
            measure_into_rows(
                protocol, "sd", engine, trace, _steps_for(n), initial_kind="legitimate"
            )

    # Superstep-regime rows: light traces only — a full trace materializes
    # one (n,)-state array per step, which at these sizes is the very cost
    # the checkpoint-and-replay design exists to avoid.
    for n in huge_sizes:
        if not have_numpy:
            break
        protocol = AsynchronousUnison(ring_graph(n), validate_parameters=False)
        if n <= min(huge_sizes):
            # Single-step comparison point (~20s per 120-step run at 1e5).
            measure_into_rows(
                protocol, "sd", "vector", "light", _steps_for(n), initial_kind="legitimate"
            )
        measure_into_rows(
            protocol,
            "sd",
            "vector-superstep",
            "light",
            _steps_for(n),
            initial_kind="legitimate",
        )

    def throughput(n: int, daemon: str, engine: str, trace: str) -> Optional[float]:
        for row in rows:
            if (row["n"], row["daemon"], row["engine"], row["trace"]) == (
                n,
                daemon,
                engine,
                trace,
            ):
                return float(row["steps_per_sec"])
        return None

    speedups: List[Dict[str, object]] = []
    for n in sizes:
        for daemon_name in daemons:
            base = throughput(n, daemon_name, "reference", "full")
            if not base:
                continue
            modes = tuple(engine_modes[1:])
            if daemon_name == "sd" and have_numpy:
                modes = modes + SD_ENGINE_MODES
            for engine, trace in modes:
                new = throughput(n, daemon_name, engine, trace)
                if new:
                    speedups.append(
                        {
                            "n": n,
                            "daemon": daemon_name,
                            "engine": engine,
                            "trace": trace,
                            "speedup_vs_reference": round(new / base, 2),
                        }
                    )

    def make_headline(daemon: str, engine: str, n: int, target: float) -> Dict[str, object]:
        base = throughput(n, daemon, "reference", "full")
        full = throughput(n, daemon, engine, "full")
        light = throughput(n, daemon, engine, "light")
        if not (base and full and light):
            return {}
        return {
            "daemon": daemon,
            "n": n,
            "engine": engine,
            "reference_steps_per_sec": base,
            f"{engine}_full_speedup": round(full / base, 2),
            f"{engine}_light_speedup": round(light / base, 2),
            "target": target,
            "meets_target": max(full, light) / base >= target,
        }

    headline = make_headline("cd", "incremental", 200, 10.0) if 200 in sizes and "cd" in daemons else {}
    headline_sd = make_headline("sd", "incremental", 200, 5.0) if 200 in sizes and "sd" in daemons else {}
    # The vector headline prefers the acceptance size n=800; under --quick
    # it degrades to the largest measured size so CI still gets a signal.
    vector_n = 800 if 800 in sizes else max(sizes)
    headline_sd_vector = (
        make_headline("sd", "vector", vector_n, 15.0)
        if have_numpy and "sd" in daemons
        else {}
    )
    if headline_sd_vector and vector_n != 800:
        # Quick-mode fallback size: the 15x acceptance target was set at
        # n=800 and is borderline at n=200 — informational there, never a
        # failure exit (CI's own check stays report-only either way).
        headline_sd_vector["degraded"] = True
    # The superstep headline prefers the n=3200 baseline row; under --quick
    # (no large sizes, hence no 3200 reference) it degrades to the largest
    # size of the main sweep, like the vector headline.
    superstep_n = (
        SUPERSTEP_HEADLINE_N if SUPERSTEP_HEADLINE_N in large_sizes else vector_n
    )
    headline_sd_superstep = (
        make_headline("sd", "vector-superstep", superstep_n, 50.0)
        if have_numpy and "sd" in daemons
        else {}
    )
    if headline_sd_superstep and superstep_n != SUPERSTEP_HEADLINE_N:
        # Measured at a quick-mode fallback size where the full-sweep 50x
        # target is not expected to hold: informational, never a failure
        # exit (CI applies its own superstep-vs-single-step-vector check).
        headline_sd_superstep["degraded"] = True

    return {
        "benchmark": "engine_scaling",
        "topology": "ring",
        "protocol": "AsynchronousUnison",
        "python": platform.python_version(),
        "numpy": have_numpy,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
        "speedups": speedups,
        "headline": headline,
        "headline_sd": headline_sd,
        "headline_sd_vector": headline_sd_vector,
        "headline_sd_superstep": headline_sd_superstep,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_engine.json",
        help="where to write the JSON summary (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the n=800, dense-regime (n>=3200) and superstep-regime "
        "(n>=100000) sweeps (CI)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per row; the row reports their median (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    large_sizes: Sequence[int] = () if args.quick else LARGE_SIZES
    huge_sizes: Sequence[int] = () if args.quick else HUGE_SIZES
    summary = run_benchmark(
        sizes=sizes,
        large_sizes=large_sizes,
        huge_sizes=huge_sizes,
        seed=args.seed,
        repeats=args.repeats,
    )
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    status = 0
    for key, label in (
        ("headline", "cd/incremental"),
        ("headline_sd", "sd/incremental"),
        ("headline_sd_vector", "sd/vector"),
        ("headline_sd_superstep", "sd/vector-superstep"),
    ):
        head = summary.get(key)
        if not head:
            continue
        engine = head["engine"]
        if head.get("degraded"):
            verdict = (
                "PASS" if head["meets_target"] else "MISS at quick-mode size, informational"
            )
        else:
            verdict = "PASS" if head["meets_target"] else "FAIL"
        print(
            f"{key}: {label}/ring({head['n']}) speedup "
            f"full={head[f'{engine}_full_speedup']}x "
            f"light={head[f'{engine}_light_speedup']}x "
            f"(target >= {head['target']}x: {verdict})"
        )
        if not head["meets_target"] and not head.get("degraded"):
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
