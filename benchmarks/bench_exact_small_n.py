"""E8 — regenerate the exact model-checking cross-validation.

Solves the small SSME/Dijkstra/unison instances exactly (state-space game
solving, no sampling) and pins the sampled theorem2/theorem3-style
measurements against the certified values; broken protocol variants must
produce lasso counterexamples.
"""

from __future__ import annotations

from repro.experiments import exact_small_n

from conftest import run_report_benchmark


def test_exact_small_n(benchmark):
    report = run_report_benchmark(benchmark, exact_small_n.run_experiment)
    assert report.passed
    assert report.summary["exact_equals_theorem2_bound_on_every_ring"]
    assert report.summary["exact_dominates_sampled_everywhere"]
    assert report.summary["broken_variants_yield_lasso"]
