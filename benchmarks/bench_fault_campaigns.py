"""E9 — regenerate the fault-campaign recovery headlines.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_campaigns.py                 # full grid
    PYTHONPATH=src python benchmarks/bench_fault_campaigns.py --quick        # smoke tier only
    PYTHONPATH=src python benchmarks/bench_fault_campaigns.py --json BENCH_faults.json

Unlike the engine-scaling benchmark, everything written to the JSON here is
**deterministic**: availability, recovery times and unsafe-window lengths
are pure functions of each scenario's pinned seed, identical across
machines, Python versions, engine backends and NumPy presence (the
engine-equivalence suite pins that).  CI therefore recomputes the
smoke-tier headlines and compares them *exactly* against the committed
``BENCH_faults.json`` — report-only, so an intentional semantic change
shows up as a warning until the file is regenerated.  Wall-clock timing is
printed to stderr only and never written to the JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.experiments import fault_campaigns

#: The per-scenario report columns that are deterministic recovery
#: headlines (everything the CI check compares).
HEADLINE_KEYS = (
    "tier",
    "events",
    "availability",
    "longest_unsafe_window",
    "max_recovery",
    "last_recovery",
    "final_n",
    "final_safe",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_faults.json",
        help="where to write the JSON summary (default: BENCH_faults.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the smoke-tier scenarios (the CI subset)",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "reference", "incremental", "vector", "vector-superstep"),
        help="engine backend (headlines are identical for all of them)",
    )
    args = parser.parse_args(argv)

    started = time.time()
    report = fault_campaigns.run_experiment(
        tier="smoke" if args.quick else None, engine=args.engine
    )
    elapsed = time.time() - started

    headline = {
        row["scenario"]: {key: row[key] for key in HEADLINE_KEYS}
        for row in report.rows
    }
    data = {
        "benchmark": "fault_campaigns",
        "code_version": fault_campaigns.CODE_VERSION,
        "engine": args.engine,
        "scenarios": len(report.rows),
        "all_recovered_after_last_disruption": report.summary[
            "all_recovered_after_last_disruption"
        ],
        "mean_availability": report.summary["mean_availability"],
        "headline_recovery": headline,
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(report.to_text())
    print(
        f"\nwrote {args.json} ({len(report.rows)} scenario(s) in {elapsed:.2f}s)",
        file=sys.stderr,
    )
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
