"""E1 — regenerate Figure 1 (the bounded clock ``cherry(alpha, K)``).

Validates the clock structure for the figure's parameters (alpha=5, K=12)
and for the clocks SSME instantiates on rings of several sizes.
"""

from __future__ import annotations

from repro.experiments import figure1_clock

from conftest import run_report_benchmark


def test_figure1_clock(benchmark):
    report = run_report_benchmark(benchmark, figure1_clock.run_experiment, ssme_sizes=[4, 8, 16, 32])
    assert report.passed
