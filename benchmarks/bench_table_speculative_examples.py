"""E2 — regenerate the Section 3 table of accidentally speculative protocols.

Measures Dijkstra's token ring, the min+1 BFS tree and the Manne et al.
maximal matching under an unfair-style scheduler and under the synchronous
daemon, and reports the speculation factors next to the paper's asymptotic
claims (Theta(n^2) vs n, Theta(n^2) vs Theta(diam), 4n+2m vs 2n+1).
"""

from __future__ import annotations

from repro.experiments import table_speculative_examples

from conftest import run_report_benchmark


def test_table_speculative_examples(benchmark):
    report = run_report_benchmark(
        benchmark,
        table_speculative_examples.run_experiment,
        dijkstra_sizes=[5, 7, 9, 11, 13],
        bfs_sizes=[6, 9, 12, 15, 18],
        matching_sizes=[6, 9, 12, 15],
        configurations_per_graph=5,
    )
    assert report.passed
    # The synchronous daemon is never slower than the unfair one.
    for row in report.rows:
        assert row["sync_steps"] <= row["unfair_steps"]
