"""E3 — regenerate the Theorem 2 check: ``conv_time(SSME, sd) <= ceil(diam/2)``.

Sweeps topologies and sizes, measures the worst synchronous stabilization
time of SSME over random + adversarial initial configurations, and verifies
that the bound is both respected and reached (tightness).
"""

from __future__ import annotations

from repro.experiments import theorem2_sync_upper

from conftest import run_report_benchmark


def test_theorem2_sync_upper(benchmark):
    report = run_report_benchmark(benchmark, theorem2_sync_upper.run_experiment)
    assert report.passed
    for row in report.rows:
        assert row["measured_worst_steps"] <= row["bound_ceil_diam_over_2"]
        assert row["reaches_bound"]
        assert row["liveness_ok"]
