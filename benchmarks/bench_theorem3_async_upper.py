"""E4 — regenerate the Theorem 3 check: ``conv_time(SSME, ud) ∈ O(diam·n³)``.

Estimates the unfair-daemon stabilization time of SSME (and of its unison
substrate, the quantity the cubic analysis actually bounds) by maximizing
over adversarial schedulers and initial configurations, and verifies every
observation stays below the closed-form bound.
"""

from __future__ import annotations

from repro.experiments import theorem3_async_upper

from conftest import run_report_benchmark


def test_theorem3_async_upper(benchmark):
    report = run_report_benchmark(benchmark, theorem3_async_upper.run_experiment)
    assert report.passed
    for row in report.rows:
        assert row["unison_worst_steps"] <= row["theorem3_bound"]
        assert row["mutex_worst_steps"] <= row["unison_worst_steps"]
        # The speculation gap: the synchronous bound is tiny in comparison.
        assert row["sync_bound_ceil_diam_over_2"] < row["theorem3_bound"]
