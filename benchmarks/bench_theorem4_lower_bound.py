"""E5 — regenerate the Theorem 4 lower bound via the splicing construction.

For every delay ``t < ceil(diam/2)`` the construction produces an initial
configuration whose synchronous execution still has two simultaneously
privileged vertices at step ``t``; together the witnesses certify the
``ceil(diam/2)`` lower bound and, with E3, the optimality of SSME.
"""

from __future__ import annotations

from repro.experiments import theorem4_lower_bound

from conftest import run_report_benchmark


def test_theorem4_lower_bound(benchmark):
    report = run_report_benchmark(benchmark, theorem4_lower_bound.run_experiment)
    assert report.passed
    for row in report.rows:
        assert row["witnesses_found"] == row["delays_tested"]
        assert row["lower_bound_certified"]
