"""PR 10 — regenerate the vectorized exact-checker benchmark headlines.

Usage::

    PYTHONPATH=src python benchmarks/bench_verify.py                      # full grid (~12 min)
    PYTHONPATH=src python benchmarks/bench_verify.py --quick              # skip the frontier rows
    PYTHONPATH=src python benchmarks/bench_verify.py --json BENCH_verify.json

Three sections are written to the JSON:

* ``headline_verify`` — deterministic certification facts (state counts,
  exact worst cases, quotient sizes) on instances cheap enough for CI.
  Every value is engine-independent by construction: the batched array
  engine and the pure-Python dict engine are bit-identical, and the
  symmetry quotient preserves every per-configuration value.  CI
  recomputes this section under ``engine="auto"`` — which resolves to the
  batched engine when NumPy is importable and the dict engine when it is
  not — and compares it *exactly* against the committed file, in both the
  NumPy and the no-NumPy job (report-only).
* ``throughput`` — wall-clock comparisons of the dict and batched engines
  on the same instances, including the headline speedup row (Dijkstra
  ring(8), full 390k-state product, synchronous class; target >= 20x on
  expansion) and the symmetry-quotient compression row.  Timing is
  machine-dependent and never compared by CI.
* ``frontier`` — the certification rows only the vectorized checker
  reaches in reasonable time: exact speculation gaps on SSME rings
  n = 10 and 12 (1.3M and 15M central-class states) and the synchronous
  certification at n = 14.  Skipped by ``--quick``; the committed numbers
  were measured once and are documentation, not a gate.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Dict, Optional, Sequence

import random as _random

from repro.experiments.workloads import mutex_workload
from repro.graphs import ring_graph
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec
from repro.verify import (
    StateSpace,
    SymmetryReducer,
    exact_speculation_gap,
    verify_stabilization,
)

#: Expansion-throughput target of the headline speedup row (batched vs
#: dict states/sec on the ring(8) full product).
SPEEDUP_TARGET = 20.0


def _rss_mb() -> float:
    """Process high-water RSS in MB (monotone; run rows small-to-large)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _result_facts(result) -> Dict[str, object]:
    return {
        "states": result.state_count,
        "transitions": result.transition_count,
        "exact_worst_steps": result.exact_worst_case,
        "legitimate": result.legitimate_count,
        "stabilizes": result.stabilizes,
    }


def deterministic_headline() -> Dict[str, Dict[str, object]]:
    """The engine-independent certification facts CI compares exactly.

    Cheap enough for the pure-Python dict engine (the no-NumPy CI job):
    every row solves in a few seconds without NumPy.
    """
    rows: Dict[str, Dict[str, object]] = {}

    protocol = DijkstraTokenRing.on_ring(6)
    specification = MutualExclusionSpec(protocol)
    result = verify_stabilization(protocol, specification, "synchronous")
    rows["dijkstra-ring6-K7-synchronous-full"] = _result_facts(result)

    for n in (8, 12):
        protocol = SSME(ring_graph(n))
        specification = MutualExclusionSpec(protocol)
        workload = mutex_workload(protocol, _random.Random(0), random_count=6)
        result = verify_stabilization(
            protocol, specification, "synchronous", workload
        )
        facts = _result_facts(result)
        facts["paper_bound"] = protocol.synchronous_stabilization_bound()
        rows[f"ssme-ring{n}-synchronous-region"] = facts

    protocol = AsynchronousUnison(ring_graph(4), alpha=2, K=8)
    specification = AsynchronousUnisonSpec(protocol)
    full = verify_stabilization(protocol, specification, "synchronous")
    rows["unison-ring4-synchronous-full"] = _result_facts(full)
    quotient = verify_stabilization(
        protocol, specification, "synchronous", symmetry=True
    )
    facts = _result_facts(quotient)
    facts["full_states"] = full.state_count
    facts["group_size"] = SymmetryReducer.for_instance(
        protocol, specification, StateSpace(protocol)
    ).group_size
    rows["unison-ring4-synchronous-quotient"] = facts

    return rows


def throughput_rows() -> Dict[str, Dict[str, object]]:
    """Dict-vs-batched wall clock on identical instances (NumPy required)."""
    from repro.verify import (
        BatchedTransitionSystem,
        TransitionSystem,
        solve,
        solve_arrays,
    )

    rows: Dict[str, Dict[str, object]] = {}

    # Headline speedup: ring(8) full K^n product, synchronous class.
    protocol = DijkstraTokenRing.on_ring(8, K=5)
    specification = MutualExclusionSpec(protocol)
    space = StateSpace(protocol)

    t0 = time.perf_counter()
    dict_system = TransitionSystem(
        protocol, specification, "synchronous", space=space,
        max_states=1_000_000,
    ).explore_full()
    t1 = time.perf_counter()
    solve(dict_system)
    t2 = time.perf_counter()

    t3 = time.perf_counter()
    batched_system = BatchedTransitionSystem(
        protocol, specification, "synchronous", space=space,
        max_states=1_000_000,
    ).explore_full()
    t4 = time.perf_counter()
    solve_arrays(batched_system)
    t5 = time.perf_counter()

    states = dict_system.state_count
    assert states == batched_system.state_count
    expand_speedup = (t1 - t0) / (t4 - t3)
    rows["dijkstra-ring8-K5-full-synchronous"] = {
        "states": states,
        "dict_expand_seconds": round(t1 - t0, 3),
        "dict_solve_seconds": round(t2 - t1, 3),
        "batched_expand_seconds": round(t4 - t3, 3),
        "batched_solve_seconds": round(t5 - t4, 3),
        "dict_states_per_second": round(states / (t1 - t0)),
        "batched_states_per_second": round(states / (t4 - t3)),
        "expand_speedup": round(expand_speedup, 1),
        "end_to_end_speedup": round((t2 - t0) / (t5 - t3), 1),
        "speedup_target": SPEEDUP_TARGET,
        "target_met": expand_speedup >= SPEEDUP_TARGET,
    }

    # Quotient compression: the 2n-fold ring dihedral group on unison.
    protocol = AsynchronousUnison(ring_graph(6), alpha=4, K=8)
    specification = AsynchronousUnisonSpec(protocol)
    t0 = time.perf_counter()
    full = verify_stabilization(
        protocol, specification, "synchronous",
        engine="batched", max_states=4_000_000,
    )
    t1 = time.perf_counter()
    quotient = verify_stabilization(
        protocol, specification, "synchronous",
        engine="batched", symmetry=True, max_states=4_000_000,
    )
    t2 = time.perf_counter()
    rows["unison-ring6-synchronous-quotient"] = {
        "full_states": full.state_count,
        "quotient_states": quotient.state_count,
        "compression_ratio": round(full.state_count / quotient.state_count, 2),
        "group_size": 12,
        "exact_worst_steps": full.exact_worst_case,
        "quotient_worst_steps": quotient.exact_worst_case,
        "full_seconds": round(t1 - t0, 2),
        "quotient_seconds": round(t2 - t1, 2),
    }
    return rows


def frontier_rows() -> Dict[str, Dict[str, object]]:
    """Certification rows beyond the dict engine's practical reach."""
    rows: Dict[str, Dict[str, object]] = {}

    protocol = SSME(ring_graph(14))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(protocol, _random.Random(0), random_count=6)
    t0 = time.perf_counter()
    result = verify_stabilization(
        protocol, specification, "synchronous", workload
    )
    dt = time.perf_counter() - t0
    facts = _result_facts(result)
    facts["paper_bound"] = protocol.synchronous_stabilization_bound()
    facts["seconds"] = round(dt, 2)
    rows["ssme-ring14-synchronous-region"] = facts

    for n, cap in ((10, 20_000_000), (12, 60_000_000)):
        protocol = SSME(ring_graph(n))
        specification = MutualExclusionSpec(protocol)
        workload = mutex_workload(protocol, _random.Random(1), random_count=6)
        t0 = time.perf_counter()
        certificate = exact_speculation_gap(
            protocol, specification, "central", "synchronous", workload,
            engine="batched", max_states=cap,
        )
        dt = time.perf_counter() - t0
        strong = certificate.strong
        rows[f"ssme-ring{n}-exact-gap"] = {
            "strong_states": strong.state_count,
            "strong_transitions": strong.transition_count,
            "strong_worst_steps": strong.exact_worst_case,
            "weak_worst_steps": certificate.weak.exact_worst_case,
            "gap_factor": certificate.gap_factor,
            "speculation_pays": certificate.speculation_pays,
            "seconds": round(dt, 1),
            "states_per_second": round(strong.state_count / dt),
            "peak_rss_mb": round(_rss_mb()),
        }
        print(
            f"  ssme-ring{n}-exact-gap: {dt:.1f}s "
            f"gap={certificate.gap_factor}",
            file=sys.stderr,
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_verify.json",
        help="where to write the JSON summary (default: BENCH_verify.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the frontier rows (the ring(12) gap alone takes ~10 min)",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    print("deterministic headline ...", file=sys.stderr)
    headline = deterministic_headline()
    print("throughput rows ...", file=sys.stderr)
    throughput = throughput_rows()
    frontier: Dict[str, Dict[str, object]] = {}
    if not args.quick:
        print("frontier rows (ring(12) gap takes ~10 min) ...", file=sys.stderr)
        frontier = frontier_rows()

    speedup_row = throughput["dijkstra-ring8-K5-full-synchronous"]
    payload = {
        "benchmark": "verify_vectorized",
        "code_version": "verify-vectorized/1",
        "engine": "auto",
        "headline_verify": headline,
        "throughput": throughput,
        "frontier": frontier,
        "headline_speedup": {
            "instance": "dijkstra-ring8-K5-full-synchronous",
            "expand_speedup": speedup_row["expand_speedup"],
            "target": SPEEDUP_TARGET,
            "met": speedup_row["target_met"],
        },
        "peak_rss_mb": round(_rss_mb()),
        "wall_seconds": round(time.perf_counter() - t0, 1),
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}", file=sys.stderr)
    if not speedup_row["target_met"]:
        print(
            f"::warning::headline expansion speedup "
            f"{speedup_row['expand_speedup']}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
