"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artefact of the paper (see DESIGN.md §3) by
running the corresponding experiment driver exactly once under
pytest-benchmark (the drivers are deterministic, so repeated rounds would
only re-measure the same numbers) and printing the resulting
paper-vs-measured table.  Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import ExperimentReport


def run_report_benchmark(benchmark, driver: Callable[..., ExperimentReport], **kwargs) -> ExperimentReport:
    """Run ``driver(**kwargs)`` once under the benchmark fixture and print it."""
    report = benchmark.pedantic(lambda: driver(**kwargs), rounds=1, iterations=1)
    print()
    print(report.to_text())
    return report
