#!/usr/bin/env python3
"""Certify SSME on a small ring with the exact model checker.

Sampling-based measurement lower-bounds the worst case; the exact checker
(:mod:`repro.verify`) solves the adversarial scheduling game outright.  The
script certifies Theorem 2 on a ring — the exact synchronous worst case
over the adversarial workload region equals ``⌈diam(g)/2⌉`` — and then
prints the exact speculation gap (Definition 4) between the central and
synchronous daemon classes, with no sampling on either side.

Run it with::

    python examples/exact_verification.py [n] [seed]
"""

from __future__ import annotations

import random
import sys

from repro import SSME, MutualExclusionSpec, exact_speculation_gap, verify_stabilization
from repro.experiments import mutex_workload
from repro.graphs import ring_graph


def main(n: int = 6, seed: int = 0) -> None:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(protocol, random.Random(seed), random_count=6)
    bound = protocol.synchronous_stabilization_bound()

    result = verify_stabilization(protocol, specification, "synchronous", workload)
    print(f"SSME on ring({n}): explored {result.state_count} configurations "
          f"({result.transition_count} transitions, synchronous class)")
    print(f"  certified legitimate attractor : {result.legitimate_count} configurations")
    print(f"  exact worst-case stabilization : {result.exact_worst_case} steps")
    print(f"  Theorem 2 bound ceil(diam/2)   : {bound} steps "
          f"({'certified tight' if result.exact_worst_case == bound else 'NOT tight'})")

    gap = exact_speculation_gap(protocol, specification, "central", "synchronous", workload)
    print(f"exact speculation gap on ring({n}):")
    print(f"  central class (all schedules)  : {gap.strong.exact_worst_case} steps")
    print(f"  synchronous class              : {gap.weak.exact_worst_case} steps")
    print(f"  exact gap factor               : {gap.gap_factor:.1f}x "
          f"({'speculation pays' if gap.speculation_pays else 'no gap'})")


if __name__ == "__main__":
    main(
        n=int(sys.argv[1]) if len(sys.argv) > 1 else 6,
        seed=int(sys.argv[2]) if len(sys.argv) > 2 else 0,
    )
