#!/usr/bin/env python3
"""Executing the Theorem 4 proof: building a double-privilege witness.

Theorem 4 says no self-stabilizing mutual-exclusion protocol can stabilize
in fewer than ``ceil(diam(g)/2)`` synchronous steps.  The proof splices the
local neighbourhoods of two far-apart vertices, taken from moments of a real
execution at which each was privileged, into a single initial configuration;
by the locality lemma (Lemma 5) both vertices still "believe" they are about
to be privileged, and after ``t`` steps both are — a safety violation.

This example builds that configuration for SSME on a path (the topology with
the largest diameter per node), prints it, and replays the synchronous
execution so you can watch the violation happen at exactly the predicted
step — one step before the Theorem 2 upper bound kicks in.

Run it with::

    python examples/lower_bound_witness.py
"""

from __future__ import annotations

from repro import SSME, MutualExclusionSpec
from repro.core import synchronous_execution
from repro.graphs import path_graph
from repro.lowerbound import construct_double_privilege_witness


def main(n: int = 13) -> None:
    graph = path_graph(n)
    protocol = SSME(graph)
    specification = MutualExclusionSpec(protocol)
    bound = protocol.synchronous_stabilization_bound()
    t = bound - 1

    print(f"SSME on a path of {n} processes: diam = {protocol.diam}, "
          f"Theorem 2 bound = {bound} steps")
    print(f"building the Theorem 4 witness for delay t = {t} ...")
    witness = construct_double_privilege_witness(protocol, t)
    u, v = witness.vertex_u, witness.vertex_v
    print(f"  spliced around the diametral pair u={u}, v={v}")
    print()

    gamma = witness.initial_configuration
    print("spliced initial configuration (register values):")
    print("  " + ", ".join(f"r_{w}={gamma[w]}" for w in graph.vertices))
    print()

    execution = synchronous_execution(protocol, gamma, bound + 2)
    print(f"{'step':>4} | privileged vertices            | safe?")
    print("-" * 56)
    for index in range(execution.steps + 1):
        configuration = execution.configuration(index)
        privileged = sorted(protocol.privileged_vertices(configuration))
        safe = specification.is_safe(configuration, protocol)
        marker = ""
        if index == t:
            marker = "  <- double privilege at t (lower bound witness)"
        if index == bound:
            marker = "  <- Theorem 2: safe from here on"
        print(f"{index:>4} | {str(privileged):<30} | {'yes' if safe else 'NO'}{marker}")

    print()
    assert witness.success
    print(f"two processes ({u} and {v}) are privileged after exactly {t} steps,")
    print(f"so no protocol — SSME included — can stabilize in fewer than "
          f"{bound} synchronous steps on this graph: SSME is optimal.")


if __name__ == "__main__":
    main()
