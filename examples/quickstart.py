#!/usr/bin/env python3
"""Quickstart: run SSME on a small ring and watch it self-stabilize.

The script

1. builds the SSME protocol (Algorithm 1 of the paper) on a ring of 8
   processes,
2. corrupts every register with a transient fault (a random configuration),
3. runs the synchronous execution and reports when mutual exclusion is
   re-established — never later than ``ceil(diam(g)/2)`` steps, by
   Theorem 2 — and
4. keeps running long enough to show every process entering its critical
   section exactly once per clock period.

Run it with::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import random
import sys

from repro import SSME, MutualExclusionSpec, SynchronousDaemon, Simulator
from repro.core import observed_stabilization_index
from repro.graphs import ring_graph
from repro.mutex import critical_section_counts


def main(n: int = 8, seed: int = 1) -> None:
    graph = ring_graph(n)
    protocol = SSME(graph)
    specification = MutualExclusionSpec(protocol)
    rng = random.Random(seed)

    print(f"SSME on a ring of {n} processes")
    print(f"  diameter diam(g)          : {protocol.diam}")
    print(f"  clock                     : cherry({protocol.alpha}, {protocol.K})")
    print(f"  Theorem 2 bound (sd)      : {protocol.synchronous_stabilization_bound()} steps")
    print(f"  Theorem 3 bound (ud)      : {protocol.unfair_stabilization_bound()} steps")
    print()

    # A transient fault corrupts every register.
    corrupted = protocol.random_configuration(rng)
    print("corrupted initial configuration:")
    print("  " + ", ".join(f"r_{v}={corrupted[v]}" for v in graph.vertices))

    simulator = Simulator(protocol, SynchronousDaemon())
    horizon = protocol.K + 4 * protocol.alpha
    execution = simulator.run(corrupted, max_steps=horizon)

    stabilization = observed_stabilization_index(execution, specification, protocol)
    print()
    print(f"synchronous execution of {execution.steps} steps:")
    print(f"  mutual exclusion re-established after {stabilization} step(s)")
    print(f"  (Theorem 2 guarantees at most {protocol.synchronous_stabilization_bound()})")

    counts = critical_section_counts(execution, protocol, start=stabilization or 0)
    print()
    print("critical-section executions after stabilization:")
    for vertex in graph.vertices:
        print(f"  process {vertex}: {counts[vertex]} time(s)")
    assert all(count >= 1 for count in counts.values()), "liveness violated?!"
    print()
    print("every process entered its critical section — liveness holds.")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(size, seed)
