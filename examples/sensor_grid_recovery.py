#!/usr/bin/env python3
"""Domain scenario: radio-slot arbitration in a sensor grid.

A wireless sensor network laid out as a grid uses mutual exclusion to decide
which node may broadcast on the shared radio channel.  Nodes are cheap and
occasionally glitch: a power brown-out can corrupt a node's memory
arbitrarily (a *transient fault*).  SSME is a good fit because

* the communication graph is a grid, not a ring — Dijkstra's protocol does
  not apply;
* in the common case the network is synchronous (all nodes tick on a GPS
  pulse), and SSME recovers from any corruption within ``ceil(diam/2)``
  ticks (Theorem 2);
* even if the network degrades to asynchrony, recovery is still guaranteed
  (Theorem 1).

The script simulates a 4x5 grid, injects two waves of transient faults while
the network is running, and reports how quickly exclusive channel access is
re-established after each fault, together with fairness statistics.

Run it with::

    python examples/sensor_grid_recovery.py
"""

from __future__ import annotations

import random

from repro import SSME, MutualExclusionSpec, SynchronousDaemon, Simulator
from repro.core import observed_stabilization_index
from repro.experiments import perturbed_configurations
from repro.graphs import grid_graph
from repro.mutex import critical_section_counts


ROWS, COLS = 4, 5
FAULTY_NODES = 6


def run_phase(protocol, specification, initial, horizon, label):
    simulator = Simulator(protocol, SynchronousDaemon())
    execution = simulator.run(initial, max_steps=horizon)
    stabilization = observed_stabilization_index(execution, specification, protocol)
    bound = protocol.synchronous_stabilization_bound()
    print(f"{label}:")
    print(f"  exclusive channel access restored after {stabilization} tick(s) "
          f"(Theorem 2 bound: {bound})")
    counts = critical_section_counts(execution, protocol, start=stabilization or 0)
    served = sum(1 for count in counts.values() if count >= 1)
    print(f"  nodes that broadcast at least once afterwards: {served}/{protocol.graph.n}")
    busiest = max(counts.values())
    quietest = min(counts.values())
    print(f"  broadcasts per node: min {quietest}, max {busiest} "
          f"(perfectly fair would differ by at most 1)")
    return execution.final


def main(seed: int = 7) -> None:
    rng = random.Random(seed)
    graph = grid_graph(ROWS, COLS)
    protocol = SSME(graph)
    specification = MutualExclusionSpec(protocol)
    horizon = protocol.K + 4 * protocol.alpha

    print(f"sensor grid {ROWS}x{COLS} — {graph.n} nodes, diameter {protocol.diam}")
    print(f"slot clock: cherry({protocol.alpha}, {protocol.K})")
    print()

    # Phase 1: the network boots with completely arbitrary memory contents.
    boot = protocol.random_configuration(rng)
    state = run_phase(protocol, specification, boot, horizon, "phase 1 — arbitrary boot state")
    print()

    # Phase 2: a brown-out corrupts a handful of nodes of the running system.
    faulted = perturbed_configurations(
        protocol, state, count=1, rng=rng, corrupted_vertices=FAULTY_NODES
    )[0]
    state = run_phase(
        protocol,
        specification,
        faulted,
        horizon,
        f"phase 2 — brown-out corrupts {FAULTY_NODES} nodes",
    )
    print()

    # Phase 3: a second, larger fault while the system keeps running.
    faulted = perturbed_configurations(
        protocol, state, count=1, rng=rng, corrupted_vertices=graph.n
    )[0]
    run_phase(
        protocol,
        specification,
        faulted,
        horizon,
        "phase 3 — every node corrupted simultaneously",
    )
    print()
    print("after every fault the grid re-established exclusive channel access")
    print("within the Theorem 2 bound — no manual intervention needed.")


if __name__ == "__main__":
    main()
