#!/usr/bin/env python3
"""Speculation study: SSME vs Dijkstra's token ring across ring sizes.

The point of speculative stabilization (Definition 4) is that a protocol can
be robust against the unfair distributed daemon while being *much* faster on
the executions one speculates to be common — synchronous ones.  This example
quantifies the gap on rings:

* Dijkstra's protocol (the 1974 baseline) stabilizes in about ``n``
  synchronous steps;
* SSME stabilizes in ``ceil(diam/2) = ceil(floor(n/2)/2)`` synchronous
  steps — about four times faster — and that is optimal (Theorem 4).

Run it with::

    python examples/speculation_study.py
"""

from __future__ import annotations

import random

from repro import SSME, DijkstraTokenRing, MutualExclusionSpec, SynchronousDaemon
from repro.analysis import format_table, growth_exponent
from repro.core import worst_case_stabilization
from repro.experiments import mutex_workload, random_configurations
from repro.graphs import diameter, ring_graph


RING_SIZES = (8, 12, 16, 20, 24)


def measure_ssme(n: int, rng: random.Random) -> int:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(protocol, rng, random_count=6)
    result = worst_case_stabilization(
        protocol,
        SynchronousDaemon,
        specification,
        workload,
        horizon=protocol.K + 4 * protocol.alpha,
    )
    return result.max_steps


def measure_dijkstra(n: int, rng: random.Random) -> int:
    protocol = DijkstraTokenRing.on_ring(n)
    specification = MutualExclusionSpec(protocol)
    workload = random_configurations(protocol, 6, rng)
    result = worst_case_stabilization(
        protocol,
        SynchronousDaemon,
        specification,
        workload,
        horizon=8 * n + 80,
    )
    return result.max_steps


def main(seed: int = 3) -> None:
    rng = random.Random(seed)
    rows = []
    for n in RING_SIZES:
        ssme_steps = measure_ssme(n, random.Random(rng.randrange(2**63)))
        dijkstra_steps = measure_dijkstra(n, random.Random(rng.randrange(2**63)))
        diam = diameter(ring_graph(n))
        rows.append(
            {
                "ring size n": n,
                "diam(g)": diam,
                "SSME sync steps": ssme_steps,
                "ceil(diam/2)": (diam + 1) // 2,
                "Dijkstra sync steps": dijkstra_steps,
                "advantage": dijkstra_steps / ssme_steps if ssme_steps else None,
            }
        )
    print(format_table(rows, title="Synchronous stabilization on rings (worst case over workloads)"))
    print()
    ssme_exponent = growth_exponent([row["ring size n"] for row in rows], [row["SSME sync steps"] for row in rows])
    dijkstra_exponent = growth_exponent(
        [row["ring size n"] for row in rows], [row["Dijkstra sync steps"] for row in rows]
    )
    print(f"growth of SSME stabilization with n     : ~n^{ssme_exponent:.2f}")
    print(f"growth of Dijkstra stabilization with n : ~n^{dijkstra_exponent:.2f}")
    print()
    print("both are linear in n on rings (diam = n/2), but SSME's constant is ~1/4")
    print("of Dijkstra's — and by Theorem 4 no protocol can beat ceil(diam/2).")


if __name__ == "__main__":
    main()
