#!/usr/bin/env python3
"""Asynchronous unison: the clock-synchronization substrate of SSME.

SSME is a thin layer over the self-stabilizing asynchronous unison of
Boulinier, Petit & Villain: every node keeps a bounded clock, resets when it
detects a local inconsistency, climbs the initial tail, and then ticks in
near-lockstep with its neighbours forever.  This example runs the unison on
an irregular random topology under an *asynchronous* (random distributed)
daemon and prints how the register drift collapses until the system is in
the legitimate set Γ₁ and stays there.

Run it with::

    python examples/unison_clock_sync.py
"""

from __future__ import annotations

import random

from repro import AsynchronousUnison, AsynchronousUnisonSpec, DistributedDaemon, Simulator
from repro.clocks import max_pairwise_drift
from repro.graphs import random_connected_graph


def main(n: int = 12, seed: int = 11) -> None:
    rng = random.Random(seed)
    graph = random_connected_graph(n, 0.2, random.Random(seed))
    protocol = AsynchronousUnison(graph)
    specification = AsynchronousUnisonSpec(protocol)

    print(f"asynchronous unison on a random connected graph: n={graph.n}, m={graph.m}")
    print(f"clock: cherry({protocol.alpha}, {protocol.K})")
    print()

    corrupted = protocol.random_configuration(rng)
    simulator = Simulator(protocol, DistributedDaemon(0.5), rng=random.Random(seed))

    configuration = corrupted
    step = 0
    print(f"{'step':>5} | {'in Γ₁':>6} | {'max drift':>9} | {'negative clocks':>15} | violations")
    print("-" * 64)
    horizon = 60 * graph.n
    report_every = 10
    stabilized_at = None
    while step <= horizon:
        legitimate = protocol.is_legitimate(configuration)
        if legitimate and stabilized_at is None:
            stabilized_at = step
        if step % report_every == 0 or (legitimate and stabilized_at == step):
            values = [configuration[v] for v in graph.vertices]
            negatives = sum(1 for value in values if value < 0)
            drift = max_pairwise_drift(protocol.clock, values)
            violations = specification.drift_bound_violations(configuration)
            print(
                f"{step:>5} | {'yes' if legitimate else 'no':>6} | {drift:>9} | "
                f"{negatives:>15} | {violations}"
            )
        if legitimate and step >= (stabilized_at or 0) + 3 * report_every:
            break
        result = simulator.step(configuration, step)
        configuration = result.configuration
        step += 1

    print()
    if stabilized_at is None:
        print("the unison did not converge within the horizon — increase it.")
    else:
        print(f"the unison reached Γ₁ after {stabilized_at} asynchronous steps and")
        print("never left it: neighbouring clocks now differ by at most one tick.")


if __name__ == "__main__":
    main()
