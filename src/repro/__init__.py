"""repro — Speculative Self-Stabilization.

A production-quality reproduction of

    Swan Dubois and Rachid Guerraoui,
    "Introducing Speculation in Self-Stabilization:
     An Application to Mutual Exclusion", PODC 2013.

The library provides:

* a discrete-event simulator for self-stabilizing protocols in Dijkstra's
  shared-memory (state) model, with explicit daemons/adversaries
  (:mod:`repro.core`);
* the communication-graph substrate and the structural parameters the paper
  relies on (:mod:`repro.graphs`);
* bounded clocks ``cherry(alpha, K)`` (:mod:`repro.clocks`) and the
  Boulinier–Petit–Villain asynchronous unison built on them
  (:mod:`repro.unison`);
* the paper's contribution, the SSME mutual-exclusion protocol, together
  with Dijkstra's token-ring baseline (:mod:`repro.mutex`);
* the accidentally speculative baselines of Section 3
  (:mod:`repro.baselines`);
* the executable Theorem 4 lower-bound construction
  (:mod:`repro.lowerbound`);
* an exact explicit-state model checker certifying worst-case stabilization,
  legitimacy closure and the speculation gap on small instances
  (:mod:`repro.verify`);
* measurement, speculation analysis and the experiment harness reproducing
  every quantitative claim of the paper (:mod:`repro.analysis`,
  :mod:`repro.experiments`);
* fault campaigns: recurring fault schedules, topology churn and the named
  scenario registry behind the E9 experiment (:mod:`repro.scenarios`).

Quickstart
----------
>>> from repro import SSME, MutualExclusionSpec, SynchronousDaemon, Simulator
>>> from repro.graphs import ring_graph
>>> protocol = SSME(ring_graph(6))
>>> simulator = Simulator(protocol, SynchronousDaemon())
>>> execution = simulator.run(protocol.default_configuration(), max_steps=20)
>>> execution.steps
20
"""

from .clocks import BoundedClock
from .core import (
    AdversarialCentralDaemon,
    CentralDaemon,
    Configuration,
    Daemon,
    DistributedDaemon,
    Execution,
    LocallyCentralDaemon,
    PrivilegeAware,
    Protocol,
    RoundRobinCentralDaemon,
    Rule,
    SilentSpecification,
    Simulator,
    Specification,
    StarvationDaemon,
    SynchronousDaemon,
    measure_stabilization,
    run_speculation_study,
    worst_case_stabilization,
)
from .graphs import Graph
from .mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from .unison import AsynchronousUnison, AsynchronousUnisonSpec
from .baselines import BfsSpanningTree, BfsTreeSpec, MaximalMatching, MaximalMatchingSpec
from .verify import (
    exact_speculation_gap,
    exact_worst_case_stabilization,
    verify_stabilization,
)
from .jobs import Dispatcher, JobSpec, ResultStore, WorkerPool
from .scenarios import ChurnEvent, FaultSchedule, Scenario, run_campaign, run_scenario
from .exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "AdversarialCentralDaemon",
    "AsynchronousUnison",
    "AsynchronousUnisonSpec",
    "BfsSpanningTree",
    "BfsTreeSpec",
    "BoundedClock",
    "CentralDaemon",
    "ChurnEvent",
    "Configuration",
    "Daemon",
    "DijkstraTokenRing",
    "Dispatcher",
    "DistributedDaemon",
    "Execution",
    "FaultSchedule",
    "Graph",
    "JobSpec",
    "LocallyCentralDaemon",
    "MaximalMatching",
    "MaximalMatchingSpec",
    "MutualExclusionSpec",
    "PrivilegeAware",
    "Protocol",
    "ReproError",
    "ResultStore",
    "RoundRobinCentralDaemon",
    "Rule",
    "SSME",
    "Scenario",
    "SilentSpecification",
    "Simulator",
    "Specification",
    "StarvationDaemon",
    "SynchronousDaemon",
    "WorkerPool",
    "__version__",
    "exact_speculation_gap",
    "exact_worst_case_stabilization",
    "measure_stabilization",
    "run_campaign",
    "run_scenario",
    "run_speculation_study",
    "verify_stabilization",
    "worst_case_stabilization",
]
