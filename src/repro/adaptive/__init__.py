"""Online regime detection, mid-run engine switching, adaptive speculation.

This package closes the loop the paper opens (see ``PAPER.md`` and
``docs/adaptive.md``): instead of choosing the engine backend and the
rule set once, up front, from *declared* schedule properties, it watches
the schedule a daemon actually produces and re-decides online.

* :class:`RegimeDetector` — streaming daemon-density / schedule-synchrony
  estimates from the recent activation stream (deterministic given the
  run's seed).
* :class:`AdaptiveEngine` — mid-run backend switching between the dict
  dirty-set paths and the array-state kernels, with bit-for-bit trajectory
  equivalence to every fixed backend (``Simulator(engine="adaptive")``).
* :class:`AdaptiveProtocol` — speculative (SSME) vs conservative
  (minimal-spacing clock mutex) rule-set switching at mutually valid
  configurations, preserving self-stabilization.
"""

from .detector import RegimeDetector, RegimeEstimate
from .protocol import AdaptiveProtocol, AdaptiveProtocolRun, ProtocolSwitch
from .switching import AdaptiveEngine, SwitchEvent

__all__ = [
    "AdaptiveEngine",
    "AdaptiveProtocol",
    "AdaptiveProtocolRun",
    "ProtocolSwitch",
    "RegimeDetector",
    "RegimeEstimate",
    "SwitchEvent",
]
