"""Online regime detection from the activation stream.

The paper's speculation trade-off (optimize for the synchronous schedule,
stay correct under the adversarial one) is resolved *statically* everywhere
else in the library: backend selection reads the declared
:attr:`~repro.core.Daemon.dense` flag once, and the speculative-vs-
conservative comparison runs offline.  :class:`RegimeDetector` is the
online half — a streaming estimator that watches the selections a daemon
actually makes and classifies the current *regime*:

* **density** — EWMA of ``|selection| / n``, the fraction of the graph
  activated per action.  This is the signal backend switching keys on: the
  array kernels win when most rows fire each step, the dict dirty-set
  paths win when few do.
* **coverage** — EWMA of ``|selection| / |enabled|``, how synchronous the
  schedule is relative to what *could* fire.  1.0 means sd-like behaviour
  even when the enabled set itself is small.
* **overlap** — EWMA of the Jaccard overlap between consecutive
  selections.  High overlap means the same region fires repeatedly (a
  stable schedule); low overlap means the activity wanders.
* a **window** of the most recent raw density samples, whose mean tracks
  phase changes faster than the EWMA during long runs.

The detector is a pure function of the observation stream — it draws no
randomness and keeps no wall-clock state — so a seeded run reproduces the
exact estimate stream, and with it every decision the adaptive engine and
protocol take (``tests/test_adaptive.py`` pins this determinism).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, NamedTuple, Optional

from ..exceptions import SimulationError

__all__ = ["RegimeDetector", "RegimeEstimate"]


class RegimeEstimate(NamedTuple):
    """A point-in-time snapshot of the detector's streaming estimates."""

    #: EWMA of ``|selection| / n``.
    density: float
    #: Mean of the last ``window`` raw density samples.
    window_density: float
    #: EWMA of ``|selection| / |enabled|``.
    coverage: float
    #: EWMA of the Jaccard overlap between consecutive selections.
    overlap: float
    #: Number of observations consumed so far.
    observations: int
    #: Current classification ("dense", "sparse", or None during warmup or
    #: between the thresholds).
    regime: Optional[str]


class RegimeDetector:
    """Streaming daemon-density / schedule-synchrony estimator.

    Parameters
    ----------
    n:
        Number of vertices of the graph being simulated (the density
        denominator).
    smoothing:
        EWMA coefficient in ``(0, 1]``: each new sample moves the estimate
        by ``smoothing * (sample - estimate)``.  The default reacts to a
        phase change within a handful of steps without chattering on a
        single outlier selection.
    window:
        Length of the raw density sample window backing
        :attr:`RegimeEstimate.window_density`.
    dense_threshold / sparse_threshold:
        Hysteresis band for :meth:`classify`: densities at or above
        ``dense_threshold`` read as "dense", at or below
        ``sparse_threshold`` as "sparse", and anything between as None
        (no opinion — callers keep their current regime), which keeps a
        mid-density schedule from flapping the classification every step.
    min_observations:
        Warmup: :meth:`classify` returns None until this many observations
        have been consumed, so one early selection never triggers a switch.
    """

    #: Classification labels returned by :meth:`classify`.
    DENSE = "dense"
    SPARSE = "sparse"

    __slots__ = (
        "_n",
        "_smoothing",
        "_dense_threshold",
        "_sparse_threshold",
        "_min_observations",
        "_window",
        "_window_sum",
        "_density",
        "_coverage",
        "_overlap",
        "_observations",
        "_previous_selection",
    )

    def __init__(
        self,
        n: int,
        smoothing: float = 0.25,
        window: int = 32,
        dense_threshold: float = 0.5,
        sparse_threshold: float = 0.2,
        min_observations: int = 8,
    ) -> None:
        if n < 1:
            raise SimulationError("regime detection needs at least one vertex")
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        if not 0.0 <= sparse_threshold < dense_threshold <= 1.0:
            raise SimulationError(
                "thresholds must satisfy 0 <= sparse < dense <= 1, got "
                f"sparse={sparse_threshold}, dense={dense_threshold}"
            )
        if min_observations < 1:
            raise SimulationError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self._n = n
        self._smoothing = smoothing
        self._dense_threshold = dense_threshold
        self._sparse_threshold = sparse_threshold
        self._min_observations = min_observations
        self._window: Deque[float] = deque(maxlen=window)
        self._window_sum = 0.0
        self._density: Optional[float] = None
        self._coverage: Optional[float] = None
        self._overlap: Optional[float] = None
        self._observations = 0
        self._previous_selection: Optional[Iterable] = None

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(
        self,
        selection_size: int,
        enabled_size: int,
        selection: Optional[Iterable] = None,
    ) -> None:
        """Consume one action's selection.

        ``selection`` (the selected vertex set) is optional and only feeds
        the overlap estimate; density and coverage need the sizes alone.
        """
        density_sample = selection_size / self._n
        coverage_sample = (
            selection_size / enabled_size if enabled_size else 0.0
        )
        self._density = self._smooth(self._density, density_sample)
        self._coverage = self._smooth(self._coverage, coverage_sample)
        if len(self._window) == self._window.maxlen:
            self._window_sum -= self._window[0]
        self._window.append(density_sample)
        self._window_sum += density_sample
        if selection is not None:
            previous = self._previous_selection
            if previous is not None:
                self._overlap = self._smooth(
                    self._overlap, self._jaccard(previous, selection)
                )
            self._previous_selection = selection
        self._observations += 1

    def _smooth(self, estimate: Optional[float], sample: float) -> float:
        if estimate is None:
            return sample
        return estimate + self._smoothing * (sample - estimate)

    @staticmethod
    def _jaccard(previous, selection) -> float:
        # The engines reuse the enabled frozenset object while membership is
        # unchanged, and the synchronous daemon returns that object itself —
        # in the dense steady state consecutive selections are *the same
        # object*, making the O(n) set arithmetic below a pointer compare.
        if previous is selection:
            return 1.0
        previous = set(previous)
        selection = set(selection)
        union = len(previous | selection)
        if union == 0:
            return 0.0
        return len(previous & selection) / union

    # ------------------------------------------------------------------ #
    # Estimates
    # ------------------------------------------------------------------ #
    @property
    def observations(self) -> int:
        """Number of observations consumed so far."""
        return self._observations

    @property
    def density(self) -> float:
        """EWMA of ``|selection| / n`` (0.0 before any observation)."""
        return self._density if self._density is not None else 0.0

    @property
    def coverage(self) -> float:
        """EWMA of ``|selection| / |enabled|`` (0.0 before any observation)."""
        return self._coverage if self._coverage is not None else 0.0

    @property
    def overlap(self) -> float:
        """EWMA of consecutive-selection Jaccard overlap (0.0 until two
        selections have been observed)."""
        return self._overlap if self._overlap is not None else 0.0

    @property
    def window_density(self) -> float:
        """Mean of the last ``window`` raw density samples."""
        if not self._window:
            return 0.0
        return self._window_sum / len(self._window)

    def estimate(self) -> RegimeEstimate:
        """The current estimates as one immutable snapshot."""
        return RegimeEstimate(
            density=self.density,
            window_density=self.window_density,
            coverage=self.coverage,
            overlap=self.overlap,
            observations=self._observations,
            regime=self.classify(),
        )

    def classify(self) -> Optional[str]:
        """"dense", "sparse", or None (warmup / between the thresholds)."""
        if self._observations < self._min_observations or self._density is None:
            return None
        if self._density >= self._dense_threshold:
            return self.DENSE
        if self._density <= self._sparse_threshold:
            return self.SPARSE
        return None

    def reset(self) -> None:
        """Forget every estimate (a fresh run observes from scratch)."""
        self._window.clear()
        self._window_sum = 0.0
        self._density = None
        self._coverage = None
        self._overlap = None
        self._observations = 0
        self._previous_selection = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RegimeDetector(n={self._n}, observations={self._observations}, "
            f"density={self.density:.3f}, regime={self.classify()!r})"
        )
