"""Protocol-level adaptive speculation: speculative ↔ conservative rule sets.

The paper defines a *speculative* protocol as one that is correct under a
weak (adversarial) daemon but optimized for a stronger, common-case one —
SSME is its flagship: self-stabilizing under the unfair daemon, yet
stabilizing in ``⌈diam/2⌉`` rounds under the synchronous daemon because the
privileged clock values are spaced ``2·diam`` apart (Theorem 2).

:class:`AdaptiveProtocol` closes the loop the paper opens.  It runs a
**speculative** rule set (SSME, spacing ``2·diam``) while the
:class:`~repro.adaptive.RegimeDetector` reads the schedule as dense and
synchronous, and a **conservative** fallback (the
:class:`~repro.mutex.ParametricClockMutex` with the minimal safe spacing
``diam + 1`` on the *same clock*) when the schedule turns sparse and
adversarial — the regime where the speculative spacing buys nothing.

**Why self-stabilization survives switching.**  Both rule sets are
self-stabilizing mutual-exclusion protocols over the same graph; by
default they share one clock (same ``alpha = n``, same ``K``), so their
state spaces coincide.  A switch replaces the rule set at a configuration
that is *valid for both protocols* — :meth:`AdaptiveProtocol.compatible`
checks every register against both ``validate_state`` hooks, and the
switch is deferred while the check fails.  From the new protocol's view a
switch is therefore indistinguishable from starting at an arbitrary (valid)
configuration, which is exactly the situation self-stabilization already
covers.  Because the detector only re-evaluates after a ``dwell`` period,
any execution performs finitely many switches per window, so the active
protocol's own convergence applies on the final segment.

The wrapper is a *runner* (not a :class:`~repro.core.Protocol` subclass):
a protocol's rule set is consulted by every engine per step, whereas
adaptive speculation changes it only at segment boundaries — so the clean
seam is the same segment-wise delegation the adaptive engine uses.
"""

from __future__ import annotations

import random
from typing import Callable, List, NamedTuple, Optional, Tuple

from ..core.daemons import Daemon
from ..core.simulator import Simulator
from ..core.state import Configuration
from ..exceptions import SimulationError
from ..graphs import Graph, diameter
from ..mutex import SSME, MutualExclusionSpec
from ..mutex.variants import ParametricClockMutex, minimal_safe_spacing
from .detector import RegimeDetector
from .switching import _ProbeDaemon

__all__ = ["AdaptiveProtocol", "AdaptiveProtocolRun", "ProtocolSwitch"]

#: Rule-set labels.
SPECULATIVE = "speculative"
CONSERVATIVE = "conservative"


class ProtocolSwitch(NamedTuple):
    """``mode`` became active at global step ``step``."""

    step: int
    mode: str


class AdaptiveProtocolRun(NamedTuple):
    """Outcome of one adaptive run (all fields deterministic given seed)."""

    #: Number of actions executed.
    steps: int
    #: Rule-set history; always starts with the initial mode at step 0.
    switches: Tuple[ProtocolSwitch, ...]
    #: First global index from which every configuration is legitimate for
    #: the rule set active at that index (``steps + 1`` when never reached).
    stabilization_index: int
    #: First global index from which every configuration satisfies the
    #: mutual-exclusion safety predicate of the active rule set.
    safety_index: int
    #: Number of configurations violating safety (two+ privileges).
    unsafe_configurations: int
    #: Whether the final configuration is legitimate for the final mode.
    final_legitimate: bool
    #: Total rule firings.
    moves: int


class AdaptiveProtocol:
    """Online speculative/conservative rule-set selection for mutex.

    Parameters
    ----------
    graph:
        The communication graph both rule sets are instantiated over.
    speculative / conservative:
        Override the two rule sets.  Defaults: SSME and the minimal-safe-
        spacing :class:`ParametricClockMutex` sharing SSME's clock size, so
        the state spaces coincide and any reachable configuration is a
        legal switch point (the compatibility check still runs — custom
        rule-set pairs may have genuinely distinct state spaces).
    dwell:
        Minimum steps between rule-set re-evaluations (bounds switching).
    detector_factory:
        ``f(n) -> RegimeDetector`` for the per-run detector.
    initial_mode:
        Rule set the run starts on; defaults to speculative, mirroring the
        paper's stance that the common case is worth optimizing for.
    """

    def __init__(
        self,
        graph: Graph,
        speculative=None,
        conservative=None,
        dwell: int = 16,
        detector_factory: Optional[Callable[[int], RegimeDetector]] = None,
        initial_mode: str = SPECULATIVE,
    ) -> None:
        if dwell < 1:
            raise SimulationError(f"dwell must be >= 1, got {dwell}")
        if initial_mode not in (SPECULATIVE, CONSERVATIVE):
            raise SimulationError(f"unknown initial mode {initial_mode!r}")
        self._graph = graph
        self._speculative = speculative if speculative is not None else SSME(graph)
        if conservative is None:
            conservative = ParametricClockMutex(
                graph,
                spacing=minimal_safe_spacing(diameter(graph)),
                K=self._speculative.K,
            )
        self._conservative = conservative
        self._protocols = {
            SPECULATIVE: self._speculative,
            CONSERVATIVE: self._conservative,
        }
        self._specs = {
            mode: MutualExclusionSpec(protocol)
            for mode, protocol in self._protocols.items()
        }
        self._dwell = dwell
        self._detector_factory = detector_factory
        self._initial_mode = initial_mode

    @property
    def graph(self) -> Graph:
        """The communication graph."""
        return self._graph

    @property
    def speculative(self):
        """The speculative rule set (optimized for the dense regime)."""
        return self._speculative

    @property
    def conservative(self):
        """The conservative fallback rule set."""
        return self._conservative

    def protocol_for(self, mode: str):
        """The rule set behind a mode label."""
        return self._protocols[mode]

    # ------------------------------------------------------------------ #
    # Switch-point legality
    # ------------------------------------------------------------------ #
    def compatible(self, configuration) -> bool:
        """Whether ``configuration`` is valid under *both* rule sets.

        Switches only happen at compatible configurations — that is what
        lets the incoming protocol treat the switch as an arbitrary (valid)
        starting configuration, the case self-stabilization covers.
        ``configuration`` may be any vertex-to-state mapping, including the
        engines' live views.
        """
        for protocol in (self._speculative, self._conservative):
            validate = protocol.validate_state
            try:
                for vertex in self._graph.vertices:
                    validate(vertex, configuration[vertex])
            except Exception:
                return False
        return True

    def _target_mode(self, detector: RegimeDetector) -> Optional[str]:
        regime = detector.classify()
        if regime == RegimeDetector.DENSE:
            return SPECULATIVE
        if regime == RegimeDetector.SPARSE:
            return CONSERVATIVE
        return None

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(
        self,
        initial: Configuration,
        daemon: Daemon,
        max_steps: int,
        rng: Optional[random.Random] = None,
        engine: str = "auto",
    ) -> AdaptiveProtocolRun:
        """Run up to ``max_steps`` actions, switching rule sets online.

        ``initial`` must be valid for the initial mode's protocol (with the
        default shared-clock rule sets, any configuration of either).  The
        run measures its own trace: per-configuration safety and legitimacy
        are evaluated against the rule set *active at that step*, because a
        privilege only means mutual exclusion relative to the protocol the
        vertices are currently executing.
        """
        if max_steps < 0:
            raise SimulationError("max_steps must be non-negative")
        rng = rng or random.Random(0)
        daemon.reset()
        detector = (
            self._detector_factory(self._graph.n)
            if self._detector_factory is not None
            else RegimeDetector(self._graph.n)
        )
        probe = _ProbeDaemon(daemon, detector)
        mode = self._initial_mode
        switches: List[ProtocolSwitch] = [ProtocolSwitch(0, mode)]
        offset = 0
        current = initial
        moves = 0
        # Per-global-index observation stream: True entries mark indices
        # whose configuration failed the active rule set's predicate.
        illegitimate: List[int] = []
        unsafe: List[int] = []
        last_index = 0

        while True:
            remaining = max_steps - offset
            probe.offset = offset
            protocol = self._protocols[mode]
            spec = self._specs[mode]
            simulator = Simulator(protocol, probe, rng=rng, engine=engine, trace="light")
            pending: List[str] = []
            dwell = self._dwell
            compatible = self.compatible
            target_mode = self._target_mode

            def segment_stop(observed, local_index: int) -> bool:
                if local_index < dwell or pending:
                    return False
                target = target_mode(detector)
                if target is None or target == mode:
                    return False
                if not compatible(observed):
                    # Defer: the switch point must be valid for both rule
                    # sets.  Re-probed on the following steps.
                    return False
                pending.append(target)
                return True

            execution = simulator.run(
                protocol.configuration({v: current[v] for v in self._graph.vertices}),
                max_steps=remaining,
                stop_when=segment_stop,
            )
            moves += execution.moves()
            # Walk the segment's trace under the active rule set.  The
            # boundary configuration is re-observed by the next segment
            # (under the *new* rule set — the honest reading: both apply at
            # the instant of the switch, and safety must hold for each).
            index = offset
            for configuration in execution.iter_configurations():
                if not protocol.is_legitimate(configuration):
                    illegitimate.append(index)
                if not spec.is_safe(configuration, protocol):
                    unsafe.append(index)
                last_index = index
                index += 1
                # The walk's last yield is the segment's final configuration
                # — reusing it avoids a second light-trace replay.
                current = configuration
            offset += execution.steps
            if not execution.truncated or offset >= max_steps or not pending:
                break
            mode = pending[0]
            switches.append(ProtocolSwitch(offset, mode))

        protocol = self._protocols[mode]
        stabilization_index = (illegitimate[-1] + 1) if illegitimate else 0
        safety_index = (unsafe[-1] + 1) if unsafe else 0
        return AdaptiveProtocolRun(
            steps=offset,
            switches=tuple(switches),
            stabilization_index=min(stabilization_index, last_index + 1),
            safety_index=min(safety_index, last_index + 1),
            unsafe_configurations=len(unsafe),
            final_legitimate=protocol.is_legitimate(current),
            moves=moves,
        )
