"""Mid-run engine backend switching driven by the regime detector.

``engine="auto"`` decides the backend once, up front, from the daemon's
*declared* density.  :class:`AdaptiveEngine` decides online instead: it
starts every run on the incremental dict backend, watches the selections
the daemon actually makes through a :class:`~repro.adaptive.RegimeDetector`,
promotes the run to the array-state kernel (``"vector"``, or
``"vector-superstep"`` under a synchronous daemon) when a dense regime is
detected, and demotes back to the dict paths when sparsity returns.

The run is executed as a sequence of *segments*, each delegated to
:meth:`IncrementalEngine.run` with a fixed backend.  State crosses backend
boundaries exactly the way it crosses the Simulator API: the segment's
final :class:`~repro.core.Configuration` (via the engines'
``last_final_configuration`` hook, so no light-trace replay is paid) seeds
the next segment, where the array backends re-encode it through the
protocol's :class:`~repro.core.ArrayCodec`.

**Equivalence guarantee.**  The stitched execution is bit-for-bit the
execution any fixed backend produces:

* every backend already produces equivalent executions from equal inputs
  (the engine contract, pinned by ``tests/test_engine_equivalence.py``);
* the probe daemon forwards ``select`` with the run-global step index and
  the shared ``rng``, so the daemon observes the identical
  ``(enabled, configuration, step_index, rng-state)`` stream it would see
  in a single-segment run — the segmentation is invisible to it;
* a user ``stop_when`` is evaluated exactly once per global index, in
  order (segment boundaries re-present the boundary index, which the
  engine deduplicates), so gapless stateful observers
  (:class:`~repro.core.SafetyMonitor`) work unchanged.

``tests/test_adaptive.py`` pins the equivalence across daemons, trace
modes and NumPy availability; without NumPy the engine degrades to a
single dict segment and never errors.
"""

from __future__ import annotations

import bisect
import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..core.daemons import Daemon
from ..core.engine import IncrementalEngine
from ..core.execution import DeltaLog, Execution, LazyActivations
from ..core.state import Configuration
from ..exceptions import SimulationError
from ..types import VertexId
from .detector import RegimeDetector

__all__ = ["AdaptiveEngine", "SwitchEvent"]


class SwitchEvent(NamedTuple):
    """One entry of a run's backend switch history: ``backend`` served the
    run from global step ``step`` until the next entry (or the end)."""

    step: int
    backend: str


class _ProbeDaemon(Daemon):
    """Transparent daemon wrapper feeding the regime detector.

    Forwards ``select`` to the wrapped daemon with the *run-global* step
    index (segments restart their local index at 0) and observes every
    selection.  The advisory attributes mirror the inner daemon's so any
    backend heuristic consulted downstream sees the real schedule.  The
    probe does **not** forward ``reset``: scheduling memory (round-robin
    cursors, starvation targets) must survive segment boundaries — the
    simulator already reset the inner daemon once, at run start.
    """

    name = "adaptive-probe"

    def __init__(self, inner: Daemon, detector: RegimeDetector) -> None:
        super().__init__()
        self._inner = inner
        self._detector = detector
        self.offset = 0
        self.dense = inner.dense
        self.synchronous = inner.synchronous
        self.density = inner.density

    def bind(self, protocol) -> None:
        super().bind(protocol)
        self._inner.bind(protocol)

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        selection = self._inner.select(
            enabled, configuration, self.offset + step_index, rng
        )
        self._detector.observe(len(selection), len(enabled), selection)
        return selection

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        return self._inner.admits_selection(enabled, selection)


class _ChainedSequence(Sequence):
    """Read-only concatenation view over per-segment sequences.

    Keeps every part as-is (no copying, no materialization) — crucial for
    lazy parts like the superstep path's replayed logs.  Sequential access
    is O(1) amortized on top of the parts' own access cost.
    """

    __slots__ = ("_parts", "_offsets", "_length")

    def __init__(self, parts: Sequence[Sequence]) -> None:
        self._parts = list(parts)
        self._offsets: List[int] = []
        total = 0
        for part in self._parts:
            self._offsets.append(total)
            total += len(part)
        self._length = total

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._length))]
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range")
        part = bisect.bisect_right(self._offsets, index) - 1
        return self._parts[part][index - self._offsets[part]]


class _ChainedDeltaLog(_ChainedSequence, DeltaLog):
    """Per-segment delta logs chained into one lazy :class:`DeltaLog`."""

    __slots__ = ()


class _StitchedActivations(LazyActivations):
    """Per-segment lazy activation logs chained into one.

    The aggregate methods delegate to the per-segment logs so their
    specialized implementations keep working — the superstep log computes
    ``moves`` from per-block firing counts without replaying a single
    action, and that property must survive stitching.
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Sequence[LazyActivations]) -> None:
        super().__init__(_ChainedSequence([part._raw for part in segments]))
        self._segments = list(segments)

    def moves(self) -> int:
        return sum(part.moves() for part in self._segments)

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for part in self._segments:
            for name, count in part.rule_counts().items():
                counts[name] = counts.get(name, 0) + count
        return counts


class AdaptiveEngine:
    """Segment-wise runner that re-selects the backend mid-run.

    One instance per :class:`IncrementalEngine` (the Simulator wires this
    up for ``engine="adaptive"``); stateless between runs apart from the
    ``last_run_*`` diagnostics.

    Parameters
    ----------
    incremental:
        The dirty-set engine every segment is delegated to; its cached
        vector capability is the promotion target.
    detector_factory:
        ``f(n) -> RegimeDetector`` building the per-run detector; defaults
        to :class:`RegimeDetector` with its stock thresholds.
    dwell:
        Minimum number of steps a segment must run before the policy may
        end it with a switch.  Bounds oscillation: a run of S steps pays at
        most ``S / dwell`` backend transitions.
    superstep:
        Forwarded to the superstep backend (block cadence); None keeps the
        engine default.
    """

    __slots__ = (
        "_incremental",
        "_graph",
        "_detector_factory",
        "_dwell",
        "_superstep",
        "last_run_backend",
        "last_run_switches",
        "last_final_configuration",
        "last_run_estimate",
    )

    #: Default minimum segment length before a switch may fire.
    DEFAULT_DWELL = 24

    def __init__(
        self,
        incremental: IncrementalEngine,
        detector_factory: Optional[Callable[[int], RegimeDetector]] = None,
        dwell: Optional[int] = None,
        superstep: Optional[int] = None,
    ) -> None:
        self._incremental = incremental
        self._graph = incremental._graph
        self._detector_factory = detector_factory
        self._dwell = dwell if dwell is not None else self.DEFAULT_DWELL
        if self._dwell < 1:
            raise SimulationError(f"dwell must be >= 1, got {self._dwell}")
        self._superstep = superstep
        #: Backend of the final segment of the most recent run (None before
        #: the first run) — what "the engine ended on".
        self.last_run_backend: Optional[str] = None
        #: Backend switch history of the most recent run as a tuple of
        #: :class:`SwitchEvent`; a run that never switched has one entry.
        self.last_run_switches: Tuple[SwitchEvent, ...] = ()
        #: Final configuration of the most recent run (segment chaining
        #: hook, mirrored from the delegated engines).
        self.last_final_configuration: Optional[Configuration] = None
        #: The detector's final estimate of the most recent run.
        self.last_run_estimate = None

    def _make_detector(self) -> RegimeDetector:
        if self._detector_factory is not None:
            return self._detector_factory(self._graph.n)
        return RegimeDetector(self._graph.n)

    def _target_backend(
        self, detector: RegimeDetector, daemon: Daemon, vector_ok: bool
    ) -> Optional[str]:
        """The backend the detector currently argues for (None: no opinion)."""
        if not vector_ok:
            return None
        regime = detector.classify()
        if regime == RegimeDetector.DENSE:
            return "vector-superstep" if daemon.synchronous else "vector"
        if regime == RegimeDetector.SPARSE:
            return "dict"
        return None

    def run(
        self,
        daemon: Daemon,
        rng: random.Random,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
    ) -> Execution:
        """Run up to ``max_steps`` actions from ``initial``.

        Mirrors :meth:`IncrementalEngine.run`'s contract (and its observable
        executions — see the module docstring's equivalence guarantee).
        """
        incremental = self._incremental
        vector_ok = incremental._vector_engine() is not None
        detector = self._make_detector()
        probe = _ProbeDaemon(daemon, detector)
        dwell = self._dwell

        segments: List[Execution] = []
        switches: List[SwitchEvent] = []
        backend = "dict"
        offset = 0
        current = initial
        # Mutable cells shared with the per-segment stop predicate.
        state = {"pending": None, "user_stopped": False, "last_checked": -1}

        while True:
            remaining = max_steps - offset
            probe.offset = offset
            state["pending"] = None
            # Demotion from the superstep backend never happens (it is only
            # entered for synchronous daemons, whose density is permanently
            # 1.0), so superstep segments skip the policy probe — with no
            # user predicate they run with stop_when=None, which is what
            # unlocks the in-kernel fixed-point fast-forward.
            allow_switch = vector_ok and backend != "vector-superstep"
            segment_stop = self._segment_stop(
                stop_when, state, offset, daemon, detector,
                backend, dwell, allow_switch, vector_ok,
            )
            execution = incremental.run(
                daemon=probe,
                rng=rng,
                initial=current,
                max_steps=remaining,
                stop_when=segment_stop,
                trace=trace,
                backend=backend,
                superstep=self._superstep,
            )
            actual = incremental.last_run_backend
            current = incremental.last_final_configuration
            segments.append(execution)
            if not switches or switches[-1].backend != actual:
                switches.append(SwitchEvent(offset, actual))
            offset += execution.steps
            if (
                not execution.truncated
                or state["user_stopped"]
                or offset >= max_steps
                or state["pending"] is None
            ):
                break
            backend = state["pending"]

        self.last_run_backend = incremental.last_run_backend
        self.last_run_switches = tuple(switches)
        self.last_final_configuration = current
        self.last_run_estimate = detector.estimate()
        if len(segments) == 1:
            return segments[0]
        return self._stitch(segments, trace)

    def _segment_stop(
        self,
        stop_when: Optional[Callable],
        state: dict,
        offset: int,
        daemon: Daemon,
        detector: RegimeDetector,
        backend: str,
        dwell: int,
        allow_switch: bool,
        vector_ok: bool,
    ) -> Optional[Callable[[Configuration, int], bool]]:
        """The per-segment stop predicate (None when nothing to watch).

        Evaluates the user predicate exactly once per *global* index — a
        segment boundary re-presents the boundary index, which the
        ``last_checked`` cursor deduplicates — then, past the dwell, asks
        the detector whether the segment should end with a backend switch.
        A switch is only requested at a positive local index, so every
        segment makes progress and the loop terminates.
        """
        if stop_when is None and not allow_switch:
            return None

        target_backend = self._target_backend

        def segment_stop(observed, local_index: int) -> bool:
            global_index = offset + local_index
            if stop_when is not None and global_index > state["last_checked"]:
                state["last_checked"] = global_index
                if stop_when(observed, global_index):
                    state["user_stopped"] = True
                    return True
            if allow_switch and local_index >= dwell:
                target = target_backend(detector, daemon, vector_ok)
                if target is not None and target != backend:
                    state["pending"] = target
                    return True
            return False

        return segment_stop

    # ------------------------------------------------------------------ #
    # Stitching
    # ------------------------------------------------------------------ #
    def _stitch(self, segments: List[Execution], trace: str) -> Execution:
        """Concatenate per-segment executions into one.

        Each segment's final configuration is the next segment's initial
        one, and the boundary enabled set is recorded by both — the
        duplicates are dropped so the stitched trace satisfies the
        ``Execution`` length invariants exactly.
        """
        truncated = segments[-1].truncated
        selections: List[FrozenSet[VertexId]] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        for position, segment in enumerate(segments):
            selections.extend(segment._selections)
            enabled = segment._enabled_sets
            enabled_sets.extend(enabled if position == 0 else enabled[1:])
        if trace == "light":
            activations = _StitchedActivations(
                [segment._activations for segment in segments]
            )
            deltas = _ChainedDeltaLog(
                [segment._configurations._deltas for segment in segments]
            )
            return Execution.from_activations(
                initial=segments[0].initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
                deltas=deltas,
            )
        configurations: List[Configuration] = []
        activations: List[Sequence] = []
        for position, segment in enumerate(segments):
            parts = segment._configurations
            configurations.extend(parts if position == 0 else parts[1:])
            activations.extend(segment._activations)
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )
