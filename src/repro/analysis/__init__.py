"""Measurement analysis and reporting helpers."""

from .metrics import fit_power_law, growth_exponent, ratios, summarize, within_bound
from .tables import format_cell, format_markdown_table, format_table

__all__ = [
    "fit_power_law",
    "format_cell",
    "format_markdown_table",
    "format_table",
    "growth_exponent",
    "ratios",
    "summarize",
    "within_bound",
]
