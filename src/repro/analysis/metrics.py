"""Numeric helpers for checking the paper's asymptotic claims.

Several of the paper's statements are about *growth rates* — ``Θ(n²)`` vs
``Θ(n)``, ``Θ(diam)``, ``O(diam·n³)`` — so the experiments need simple
tools to (i) compare measured values against closed-form bounds and (ii)
estimate growth exponents from series of (size, measurement) pairs by a
log-log least-squares fit.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ratios",
    "within_bound",
    "fit_power_law",
    "growth_exponent",
    "summarize",
]


def ratios(measurements: Sequence[float], bounds: Sequence[float]) -> List[Optional[float]]:
    """Element-wise ``measurement / bound`` (``None`` where the bound is 0)."""
    if len(measurements) != len(bounds):
        raise ValueError("measurements and bounds must have the same length")
    result: List[Optional[float]] = []
    for measured, bound in zip(measurements, bounds):
        result.append(measured / bound if bound else None)
    return result


def within_bound(measurements: Sequence[float], bounds: Sequence[float]) -> bool:
    """Whether every measurement is at most its bound."""
    if len(measurements) != len(bounds):
        raise ValueError("measurements and bounds must have the same length")
    return all(measured <= bound for measured, bound in zip(measurements, bounds))


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = c * x**a`` in log-log space.

    Returns ``(a, c)``.  Data points with a non-positive coordinate are
    dropped (they carry no log-log information); at least two usable points
    are required.
    """
    points = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(points) < 2:
        raise ValueError("need at least two positive data points for a power-law fit")
    log_x = [math.log(x) for x, _ in points]
    log_y = [math.log(y) for _, y in points]
    n = len(points)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError("all x values are identical; cannot fit a power law")
    slope = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)) / denominator
    intercept = mean_y - slope * mean_x
    return slope, math.exp(intercept)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The exponent ``a`` of the power-law fit (convenience wrapper)."""
    return fit_power_law(xs, ys)[0]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Min / max / mean / count summary of a series."""
    values = list(values)
    if not values:
        return {"count": 0.0, "min": float("nan"), "max": float("nan"), "mean": float("nan")}
    return {
        "count": float(len(values)),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
    }
