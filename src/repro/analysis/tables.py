"""ASCII / Markdown table rendering for experiment reports.

The experiment drivers produce rows as plain dictionaries; these helpers
turn them into aligned text tables so benchmarks and examples can print the
same rows the paper's claims are stated in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_cell", "format_table", "format_markdown_table"]


def format_cell(value: object, float_digits: int = 2) -> str:
    """Render one cell: floats rounded, ``None`` as a dash, rest via str."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{float_digits}f}"
    return str(value)


def _select_columns(
    rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]]
) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _select_columns(rows, columns)
    rendered = [[format_cell(row.get(col), float_digits) for col in cols] for row in rows]
    widths = [
        max(len(col), max(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    separator = "-+-".join("-" * widths[i] for i in range(len(cols)))
    lines.append(header)
    lines.append(separator)
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 2,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    cols = _select_columns(rows, columns)
    lines = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_cell(row.get(col), float_digits) for col in cols) + " |"
        )
    return "\n".join(lines)
