"""Accidentally-speculative baseline protocols of Section 3."""

from .bfs_tree import BfsSpanningTree, BfsTreeSpec
from .matching import MatchingState, MaximalMatching, MaximalMatchingSpec

__all__ = [
    "BfsSpanningTree",
    "BfsTreeSpec",
    "MatchingState",
    "MaximalMatching",
    "MaximalMatchingSpec",
]
