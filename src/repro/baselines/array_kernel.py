"""Vectorized array-state kernels for the baseline protocols.

Two accidentally-speculative protocols from Section 3 of the paper get
array capabilities here, so the vector engine *and* the batched exact
checker (:mod:`repro.verify.batched`) cover every protocol family the
campaign registry ships:

* **BFS min+1 tree** — plain int levels (width-1 codec); the two guards
  reduce to one ``min`` over the CSR adjacency.
* **Maximal matching** — the ``(pointer, married)`` pair becomes a width-2
  integer row: the pointer column holds the *identity rank* of the target
  (the position of the vertex in ``graph.sorted_vertices()``, ``-1`` for
  ``None``), the married column a 0/1 bit.  Encoding pointers by identity
  rank (not by row position) keeps the codec independent of any engine's
  row order, and makes the Marriage/Seduction tie-breaks — smallest
  suitor, largest candidate by identity — plain ``min``/``max`` edge
  reductions.

Both kernels are tiling-aware (per-vertex arrays built from
``index.vertices`` are replicated per block), so the batched checker can
stack thousands of configurations block-diagonally.  Guard-by-guard
equivalence with the Python rules is pinned by
``tests/test_vector_kernel.py``; trace equivalence by the engine
equivalence suite.

This module imports NumPy at load time and is therefore only imported
from the protocols' ``array_kernel()``/``array_codec()`` hooks after a
``numpy_available`` check.
"""

from __future__ import annotations

import numpy as np

from ..core.vector import ArrayCodec, ArrayKernel, GraphIndex, tile_block_values
from .matching import MatchingState

__all__ = ["BfsTreeArrayKernel", "MatchingCodec", "MatchingArrayKernel"]

#: Sentinel above every identity rank, used to mask edge minima.
_NO_SUITOR = np.int64(1) << 40


class BfsTreeArrayKernel(ArrayKernel):
    """Array-state transition relation of the min+1 BFS tree."""

    def __init__(self, protocol) -> None:
        self.rule_names = (protocol.RULE_ROOT, protocol.RULE_MIN_PLUS_ONE)
        self._root = protocol.root
        self._max_level = protocol.max_level
        self._is_root = None

    def prepare(self, index: GraphIndex) -> None:
        base = np.zeros(len(index.vertices), dtype=bool)
        base[index.position[self._root]] = True
        self._is_root = tile_block_values(base, index)

    def _targets(self, s, index: GraphIndex):
        """``min(min_neighbor + 1, max_level)`` per row (M1's target)."""
        minimum = index.min_over_edges(s[index.indices], self._max_level)
        return np.minimum(minimum + 1, self._max_level)

    def enabled_rules(self, states, index: GraphIndex):
        s = states[:, 0]
        rule_ids = np.full(index.n, -1, dtype=np.int64)
        rule_ids[~self._is_root & (s != self._targets(s, index))] = 1
        rule_ids[self._is_root & (s != 0)] = 0
        return rule_ids

    def fire(self, states, selected, rule_ids, index: GraphIndex):
        s = states[:, 0]
        new = self._targets(s, index)[selected]
        new[rule_ids == 0] = 0
        return new.reshape(-1, 1)


class MatchingCodec(ArrayCodec):
    """Width-2 codec for :class:`~repro.baselines.MatchingState`.

    Column 0: identity rank of the pointer target, ``-1`` for ``None``;
    column 1: the married bit.
    """

    width = 2

    def __init__(self, protocol) -> None:
        self._vertices = tuple(protocol.graph.sorted_vertices())
        self._rank = {v: i for i, v in enumerate(self._vertices)}

    def encode(self, states, order):
        array = np.empty((len(order), 2), dtype=np.int64)
        for i, vertex in enumerate(order):
            state = states[vertex]
            if not isinstance(state, MatchingState):
                raise TypeError(
                    f"state {state!r} of {vertex!r} is not a MatchingState"
                )
            pointer = state.pointer
            array[i, 0] = -1 if pointer is None else self._rank[pointer]
            array[i, 1] = 1 if state.married else 0
        return array

    def decode(self, rows):
        vertices = self._vertices
        return [
            MatchingState(
                pointer=None if pointer < 0 else vertices[pointer],
                married=bool(married),
            )
            for pointer, married in rows.tolist()
        ]


class MatchingArrayKernel(ArrayKernel):
    """Array-state transition relation of the Manne et al. matching.

    With ``rank[r]`` the identity rank of row ``r``'s vertex, the per-edge
    primitives are ``points[e]`` (the owner's pointer column equals the
    neighbour's rank) and its mirror ``reverse[e]`` (the neighbour points
    at the owner); every guard is a boolean reduction of those two masks,
    and the Marriage/Seduction targets are masked min/max reductions of
    neighbour ranks.
    """

    def __init__(self, protocol) -> None:
        self.rule_names = (
            protocol.RULE_UPDATE,
            protocol.RULE_MARRIAGE,
            protocol.RULE_SEDUCTION,
            protocol.RULE_ABANDONMENT,
        )
        self._order = {
            v: i for i, v in enumerate(protocol.graph.sorted_vertices())
        }
        self._rank = None

    def prepare(self, index: GraphIndex) -> None:
        base = np.fromiter(
            (self._order[v] for v in index.vertices),
            dtype=np.int64,
            count=len(index.vertices),
        )
        self._rank = tile_block_values(base, index)

    def _edge_masks(self, states, index: GraphIndex):
        pointer = states[:, 0]
        src, dst = index.edge_src, index.indices
        points = pointer[src] == self._rank[dst]
        reverse = pointer[dst] == self._rank[src]
        return pointer, points, reverse

    def enabled_rules(self, states, index: GraphIndex):
        pointer, points, reverse = self._edge_masks(states, index)
        married_bit = states[:, 1] == 1
        src, dst = index.edge_src, index.indices

        is_married = index.any_over_edges(points & reverse)
        cache_ok = married_bit == is_married
        free = pointer == -1
        has_suitor = index.any_over_edges(reverse)
        candidate_edge = (
            (pointer[dst] == -1)
            & (states[dst, 1] == 0)
            & (self._rank[src] < self._rank[dst])
        )
        has_candidate = index.any_over_edges(candidate_edge)
        # Partner attributes, scattered through the (unique) points edge.
        partner_married = np.zeros(index.n, dtype=bool)
        partner_married[src[points]] = states[dst, 1][points] == 1

        update = ~cache_ok
        marriage = cache_ok & free & has_suitor
        seduction = cache_ok & free & ~has_suitor & has_candidate
        abandonment = (
            cache_ok
            & ~free
            & ~is_married
            & (partner_married | (pointer < self._rank))
        )

        rule_ids = np.full(index.n, -1, dtype=np.int64)
        rule_ids[abandonment] = 3
        rule_ids[seduction] = 2
        rule_ids[marriage] = 1
        rule_ids[update] = 0
        return rule_ids

    def fire(self, states, selected, rule_ids, index: GraphIndex):
        pointer, points, reverse = self._edge_masks(states, index)
        src, dst = index.edge_src, index.indices

        is_married = index.any_over_edges(points & reverse)
        suitor_rank = np.where(reverse, self._rank[dst], _NO_SUITOR)
        min_suitor = index.min_over_edges(suitor_rank, _NO_SUITOR)
        candidate_edge = (
            (pointer[dst] == -1)
            & (states[dst, 1] == 0)
            & (self._rank[src] < self._rank[dst])
        )
        candidate_rank = np.where(candidate_edge, self._rank[dst], -1)
        max_candidate = index.max_over_edges(candidate_rank, -1)

        new = states[selected].copy()
        update = rule_ids == 0
        new[update, 1] = is_married[selected][update].astype(np.int64)
        marriage = rule_ids == 1
        new[marriage, 0] = min_suitor[selected][marriage]
        seduction = rule_ids == 2
        new[seduction, 0] = max_candidate[selected][seduction]
        new[rule_ids == 3, 0] = -1
        return new
