"""The min+1 self-stabilizing BFS spanning-tree protocol (Huang & Chen).

Section 3 of the paper cites this protocol as an accidentally speculative
one: its stabilization time is ``Θ(n²)`` steps under the unfair distributed
daemon but ``Θ(diam(g))`` steps under the synchronous daemon.

The protocol is the classical *min+1* rule: a distinguished root keeps its
level at 0; every other vertex sets its level to one plus the minimum level
among its neighbours.  Levels are drawn from the bounded domain
``{0, ..., n}`` (a corrupted level can never exceed ``n``, and the bound
keeps states finite).  The protocol is silent: once every level equals the
true BFS distance from the root no rule is enabled.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from ..core import LocalView, Protocol, Rule, SilentSpecification
from ..core.state import Configuration
from ..exceptions import ProtocolError, SpecificationError
from ..graphs import Graph
from ..types import VertexId

__all__ = ["BfsSpanningTree", "BfsTreeSpec"]


class BfsSpanningTree(Protocol):
    """The min+1 BFS spanning-tree protocol.

    Parameters
    ----------
    graph:
        Connected communication graph.
    root:
        The distinguished root vertex (defaults to the smallest label).
    """

    name = "bfs-min-plus-one"

    #: Both actions write ``0`` or ``min(min_neighbor + 1, n)`` — always a
    #: legal level — so the vectorized firing path may skip re-validation.
    actions_preserve_validity = True

    RULE_ROOT = "R0"
    RULE_MIN_PLUS_ONE = "M1"

    def __init__(self, graph: Graph, root: Optional[VertexId] = None) -> None:
        super().__init__(graph)
        self._root = root if root is not None else graph.sorted_vertices()[0]
        if self._root not in graph:
            raise ProtocolError(f"root {self._root!r} is not a vertex of the graph")
        self._max_level = graph.n
        self._rules = [
            Rule(self.RULE_ROOT, self._root_guard, lambda view: 0),
            Rule(self.RULE_MIN_PLUS_ONE, self._min_plus_one_guard, self._min_plus_one_action),
        ]

    @property
    def root(self) -> VertexId:
        """The distinguished root."""
        return self._root

    @property
    def max_level(self) -> int:
        """The cap of the level domain (``n``)."""
        return self._max_level

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #
    def _target_level(self, view: LocalView) -> int:
        minimum = min(view.neighbor_states.values())
        return min(minimum + 1, self._max_level)

    def _root_guard(self, view: LocalView) -> bool:
        return view.vertex == self._root and view.state != 0

    def _min_plus_one_guard(self, view: LocalView) -> bool:
        if view.vertex == self._root:
            return False
        return view.state != self._target_level(view)

    def _min_plus_one_action(self, view: LocalView) -> int:
        return self._target_level(view)

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def random_state(self, vertex: VertexId, rng: random.Random) -> int:
        return rng.randrange(self._max_level + 1)

    def default_state(self, vertex: VertexId) -> int:
        return self._max_level

    def validate_state(self, vertex: VertexId, state) -> None:
        if not isinstance(state, int) or not 0 <= state <= self._max_level:
            raise ProtocolError(
                f"level {state!r} of vertex {vertex!r} outside 0..{self._max_level}"
            )

    def vertex_state_space(self, vertex: VertexId) -> Sequence[int]:
        """The full level domain — makes the instance exactly checkable."""
        del vertex
        return tuple(range(self._max_level + 1))

    # ------------------------------------------------------------------ #
    # Array-state capability
    # ------------------------------------------------------------------ #
    def array_codec(self):
        """Levels are plain ints — the trivial width-1 codec."""
        from ..core.vector import IntCodec, numpy_available

        if not numpy_available():
            return None
        return IntCodec()

    def array_kernel(self):
        """The vectorized R0/M1 kernel."""
        from ..core.vector import numpy_available

        if not numpy_available():
            return None
        from .array_kernel import BfsTreeArrayKernel

        return BfsTreeArrayKernel(self)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def true_levels(self) -> Dict[VertexId, int]:
        """The correct output: BFS distances from the root."""
        return self.graph.bfs_distances(self._root)

    def parents(self, configuration: Configuration) -> Dict[VertexId, Optional[VertexId]]:
        """A parent map induced by the levels (smallest-label neighbour one
        level below); ``None`` for the root and for vertices whose level is
        inconsistent."""
        parents: Dict[VertexId, Optional[VertexId]] = {}
        for vertex in self.graph.vertices:
            if vertex == self._root:
                parents[vertex] = None
                continue
            level = configuration[vertex]
            candidates = [
                u
                for u in sorted(self.graph.neighbors(vertex), key=repr)
                if configuration[u] == level - 1
            ]
            parents[vertex] = candidates[0] if candidates else None
        return parents


class BfsTreeSpec(SilentSpecification):
    """Silent specification: every level equals the true BFS distance."""

    name = "spec_BFS"

    def __init__(self, protocol: BfsSpanningTree) -> None:
        if not isinstance(protocol, BfsSpanningTree):
            raise SpecificationError("BfsTreeSpec requires a BfsSpanningTree protocol")
        self._protocol = protocol
        self._truth = protocol.true_levels()

    def is_legitimate(self, configuration: Configuration, protocol: Protocol) -> bool:
        del protocol
        return all(
            configuration[vertex] == level for vertex, level in self._truth.items()
        )
