"""The self-stabilizing maximal matching of Manne, Mjelde, Pilard & Tixeuil.

Section 3 of the paper lists this protocol as another accidentally
speculative one: ``4n + 2m`` steps under the unfair distributed daemon
versus ``2n + 1`` steps under the synchronous daemon.

Each vertex ``v`` holds a pointer ``p_v ∈ neig(v) ∪ {None}`` and a boolean
``m_v`` caching whether it is married (its pointer is reciprocated).  The
four rules are the classical ones:

* **Update** — fix the cached ``m_v`` bit;
* **Marriage** — a free vertex pointed at by a neighbour points back;
* **Seduction** — a free vertex that nobody points at proposes to a larger
  free, unmarried neighbour;
* **Abandonment** — a vertex pointing at a neighbour that will never point
  back (married, or of smaller identity) withdraws its pointer.

Identities are the vertex labels (compared through their repr order when the
labels are not integers).  The protocol is silent; its terminal
configurations encode maximal matchings.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core import LocalView, Protocol, Rule, SilentSpecification
from ..core.state import Configuration
from ..exceptions import ProtocolError, SpecificationError
from ..graphs import Graph
from ..types import VertexId

__all__ = ["MatchingState", "MaximalMatching", "MaximalMatchingSpec"]


class MatchingState:
    """Immutable local state ``(pointer, married)`` of a vertex."""

    __slots__ = ("pointer", "married")

    def __init__(self, pointer: Optional[VertexId], married: bool) -> None:
        self.pointer = pointer
        self.married = bool(married)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchingState):
            return NotImplemented
        return self.pointer == other.pointer and self.married == other.married

    def __hash__(self) -> int:
        return hash((self.pointer, self.married))

    def __repr__(self) -> str:
        return f"MatchingState(pointer={self.pointer!r}, married={self.married})"


class MaximalMatching(Protocol):
    """The Manne et al. self-stabilizing maximal matching protocol."""

    name = "maximal-matching"

    #: Every action writes ``None`` or a neighbour as the pointer and a
    #: plain bool as the cache bit — always a legal :class:`MatchingState`
    #: — so the vectorized firing path may skip re-validation.
    actions_preserve_validity = True

    RULE_UPDATE = "Update"
    RULE_MARRIAGE = "Marriage"
    RULE_SEDUCTION = "Seduction"
    RULE_ABANDONMENT = "Abandonment"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._order = {v: index for index, v in enumerate(graph.sorted_vertices())}
        self._rules = [
            Rule(self.RULE_UPDATE, self._update_guard, self._update_action),
            Rule(self.RULE_MARRIAGE, self._marriage_guard, self._marriage_action),
            Rule(self.RULE_SEDUCTION, self._seduction_guard, self._seduction_action),
            Rule(self.RULE_ABANDONMENT, self._abandonment_guard, self._abandonment_action),
        ]

    # ------------------------------------------------------------------ #
    # Identity order
    # ------------------------------------------------------------------ #
    def precedes(self, u: VertexId, v: VertexId) -> bool:
        """Whether ``u`` has a smaller identity than ``v``."""
        return self._order[u] < self._order[v]

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_married(view: LocalView) -> bool:
        state: MatchingState = view.state
        if state.pointer is None:
            return False
        partner = view.neighbor_states.get(state.pointer)
        return partner is not None and partner.pointer == view.vertex

    def _cache_correct(self, view: LocalView) -> bool:
        state: MatchingState = view.state
        return state.married == self._is_married(view)

    def _suitors(self, view: LocalView) -> List[VertexId]:
        """Neighbours currently pointing at the vertex."""
        return [
            u
            for u, neighbor_state in view.neighbor_states.items()
            if neighbor_state.pointer == view.vertex
        ]

    def _candidates(self, view: LocalView) -> List[VertexId]:
        """Free, unmarried, larger-identity neighbours a free vertex may
        propose to (Seduction)."""
        return [
            u
            for u, neighbor_state in view.neighbor_states.items()
            if neighbor_state.pointer is None
            and not neighbor_state.married
            and self.precedes(view.vertex, u)
        ]

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #
    def _update_guard(self, view: LocalView) -> bool:
        return not self._cache_correct(view)

    def _update_action(self, view: LocalView) -> MatchingState:
        state: MatchingState = view.state
        return MatchingState(pointer=state.pointer, married=self._is_married(view))

    def _marriage_guard(self, view: LocalView) -> bool:
        state: MatchingState = view.state
        return (
            self._cache_correct(view)
            and state.pointer is None
            and bool(self._suitors(view))
        )

    def _marriage_action(self, view: LocalView) -> MatchingState:
        suitor = min(self._suitors(view), key=lambda u: self._order[u])
        return MatchingState(pointer=suitor, married=view.state.married)

    def _seduction_guard(self, view: LocalView) -> bool:
        state: MatchingState = view.state
        return (
            self._cache_correct(view)
            and state.pointer is None
            and not self._suitors(view)
            and bool(self._candidates(view))
        )

    def _seduction_action(self, view: LocalView) -> MatchingState:
        candidate = max(self._candidates(view), key=lambda u: self._order[u])
        return MatchingState(pointer=candidate, married=view.state.married)

    def _abandonment_guard(self, view: LocalView) -> bool:
        state: MatchingState = view.state
        if not self._cache_correct(view) or state.pointer is None:
            return False
        partner = view.neighbor_states[state.pointer]
        if partner.pointer == view.vertex:
            return False
        return partner.married or self.precedes(state.pointer, view.vertex)

    def _abandonment_action(self, view: LocalView) -> MatchingState:
        return MatchingState(pointer=None, married=view.state.married)

    def rules(self) -> Sequence[Rule]:
        return self._rules

    # ------------------------------------------------------------------ #
    # States
    # ------------------------------------------------------------------ #
    def random_state(self, vertex: VertexId, rng: random.Random) -> MatchingState:
        neighbors = sorted(self.graph.neighbors(vertex), key=repr)
        pointer = rng.choice([None] + neighbors)
        return MatchingState(pointer=pointer, married=rng.random() < 0.5)

    def default_state(self, vertex: VertexId) -> MatchingState:
        return MatchingState(pointer=None, married=False)

    def validate_state(self, vertex: VertexId, state) -> None:
        if not isinstance(state, MatchingState):
            raise ProtocolError(f"state of {vertex!r} must be a MatchingState")
        if state.pointer is not None and state.pointer not in self.graph.neighbors(vertex):
            raise ProtocolError(
                f"pointer {state.pointer!r} of vertex {vertex!r} is not a neighbour"
            )

    def vertex_state_space(self, vertex: VertexId) -> Sequence[MatchingState]:
        """Every ``(pointer, married)`` pair — makes the instance exactly
        checkable (``2 * (deg(v) + 1)`` states per vertex)."""
        pointers = [None] + sorted(self.graph.neighbors(vertex), key=repr)
        return tuple(
            MatchingState(pointer=pointer, married=married)
            for pointer in pointers
            for married in (False, True)
        )

    # ------------------------------------------------------------------ #
    # Array-state capability
    # ------------------------------------------------------------------ #
    def array_codec(self):
        """The width-2 (pointer rank, married bit) codec."""
        from ..core.vector import numpy_available

        if not numpy_available():
            return None
        from .array_kernel import MatchingCodec

        return MatchingCodec(self)

    def array_kernel(self):
        """The vectorized Update/Marriage/Seduction/Abandonment kernel."""
        from ..core.vector import numpy_available

        if not numpy_available():
            return None
        from .array_kernel import MatchingArrayKernel

        return MatchingArrayKernel(self)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def matched_edges(self, configuration: Configuration) -> FrozenSet[Tuple[VertexId, VertexId]]:
        """The matching encoded by ``configuration``: mutually pointing pairs."""
        edges: Set[Tuple[VertexId, VertexId]] = set()
        for vertex in self.graph.vertices:
            state: MatchingState = configuration[vertex]
            if state.pointer is None:
                continue
            partner_state: MatchingState = configuration[state.pointer]
            if partner_state.pointer == vertex:
                edge = tuple(sorted((vertex, state.pointer), key=repr))
                edges.add(edge)  # type: ignore[arg-type]
        return frozenset(edges)

    def is_maximal_matching(self, configuration: Configuration) -> bool:
        """Whether the encoded matching is a maximal matching of the graph."""
        matched_edges = self.matched_edges(configuration)
        matched_vertices: Set[VertexId] = set()
        for u, v in matched_edges:
            if u in matched_vertices or v in matched_vertices:
                return False
            matched_vertices.update((u, v))
        for u, v in self.graph.edges:
            if u not in matched_vertices and v not in matched_vertices:
                return False
        return True


class MaximalMatchingSpec(SilentSpecification):
    """Silent specification: the configuration encodes a maximal matching and
    contains no dangling pointer or stale cache bit."""

    name = "spec_MM"

    def __init__(self, protocol: MaximalMatching) -> None:
        if not isinstance(protocol, MaximalMatching):
            raise SpecificationError("MaximalMatchingSpec requires a MaximalMatching protocol")
        self._protocol = protocol

    def is_legitimate(self, configuration: Configuration, protocol: Protocol) -> bool:
        del protocol
        matching_protocol = self._protocol
        if not matching_protocol.is_maximal_matching(configuration):
            return False
        for vertex in matching_protocol.graph.vertices:
            state: MatchingState = configuration[vertex]
            if state.pointer is not None:
                partner: MatchingState = configuration[state.pointer]
                if partner.pointer != vertex:
                    return False
            married = (
                state.pointer is not None
                and configuration[state.pointer].pointer == vertex
            )
            if state.married != married:
                return False
        return True
