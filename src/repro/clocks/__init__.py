"""Bounded clocks (``cherry(alpha, K)``) — the substrate of Figure 1."""

from .bounded_clock import BoundedClock
from .analysis import (
    all_within_drift,
    clock_description,
    drift,
    max_pairwise_drift,
    phi_orbit_partition,
    render_cherry_ascii,
)

__all__ = [
    "BoundedClock",
    "all_within_drift",
    "clock_description",
    "drift",
    "max_pairwise_drift",
    "phi_orbit_partition",
    "render_cherry_ascii",
]
