"""Analysis helpers for bounded clocks.

These utilities are used by the Figure 1 experiment (rendering the cherry
structure) and by the unison/SSME analysis code (checking drift between
registers, finding the privileged values on the cycle).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..exceptions import ClockError
from .bounded_clock import BoundedClock

__all__ = [
    "drift",
    "max_pairwise_drift",
    "all_within_drift",
    "clock_description",
    "render_cherry_ascii",
    "phi_orbit_partition",
]


def drift(clock: BoundedClock, values: Iterable[int]) -> int:
    """The maximum circular distance between any value and 0.

    Only meaningful for correct values; initial values are treated through
    their mod-``K`` representatives, matching ``d_K``.
    """
    values = list(values)
    if not values:
        return 0
    return max(clock.distance(v, 0) for v in values)


def max_pairwise_drift(clock: BoundedClock, values: Iterable[int]) -> int:
    """The maximum ``d_K`` distance between any two of ``values``."""
    values = list(values)
    best = 0
    for i, a in enumerate(values):
        for b in values[i + 1 :]:
            best = max(best, clock.distance(a, b))
    return best


def all_within_drift(clock: BoundedClock, values: Iterable[int], bound: int) -> bool:
    """Whether every pair of values is within circular distance ``bound``."""
    return max_pairwise_drift(clock, values) <= bound


def clock_description(clock: BoundedClock) -> Dict[str, object]:
    """A dictionary summary of the clock (used by the Figure 1 bench)."""
    return {
        "alpha": clock.alpha,
        "K": clock.K,
        "size": clock.size,
        "initial_values": sorted(clock.initial_values()),
        "correct_values_count": len(clock.correct_values()),
        "reset_value": clock.reset_value(),
    }


def render_cherry_ascii(clock: BoundedClock, max_cycle_values: int = 24) -> str:
    """An ASCII rendering of the cherry shape of Figure 1.

    The tail of initial values is drawn on the left, the correct cycle on
    the right (elided past ``max_cycle_values`` values).
    """
    tail = " -> ".join(str(v) for v in range(-clock.alpha, 0))
    cycle_values = list(range(clock.K))
    if len(cycle_values) > max_cycle_values:
        head = cycle_values[: max_cycle_values // 2]
        tail_vals = cycle_values[-max_cycle_values // 2 :]
        cycle = " -> ".join(map(str, head)) + " -> ... -> " + " -> ".join(map(str, tail_vals))
    else:
        cycle = " -> ".join(map(str, cycle_values))
    lines = [
        f"cherry(alpha={clock.alpha}, K={clock.K})",
        f"  initial tail : {tail} -> 0" if clock.alpha >= 1 else "  initial tail : 0",
        f"  correct cycle: {cycle} -> 0 (wraps)",
        f"  reset target : {clock.reset_value()}",
    ]
    return "\n".join(lines)


def phi_orbit_partition(clock: BoundedClock) -> Tuple[List[int], List[int]]:
    """Partition of the clock values into the transient tail and the
    recurrent cycle of the ``phi`` dynamics.

    Every initial value is transient (visited at most once per execution of
    ``phi``), every correct value is recurrent: this is exactly the structure
    Figure 1 illustrates.
    """
    transient = sorted(clock.strict_initial_values())
    recurrent = sorted(clock.correct_values())
    return transient, recurrent
