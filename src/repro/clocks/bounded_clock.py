"""The bounded clock ``cherry(alpha, K)`` of Figure 1.

The asynchronous-unison substrate (and therefore SSME) operates on a
*bounded clock* ``X = (cherry(alpha, K), phi)``:

* the value domain is ``cherry(alpha, K) = {-alpha, ..., -1} ∪ {0, ..., K-1}``
  — a "tail" of initial (negative) values grafted onto a cycle of ``K``
  correct values, which is what the cherry shape in Figure 1 depicts;
* the increment function ``phi`` walks up the tail and then around the
  cycle: ``phi(c) = c + 1`` if ``c < 0`` else ``(c + 1) mod K``;
* ``d_K`` is the circular distance on ``{0, ..., K-1}``;
* two correct values are *locally comparable* when their circular distance
  is at most 1, and ``c <=_l c'`` holds when ``c'`` is ``c`` or its
  successor on the cycle;
* a *reset* sends any value except ``-alpha`` back to ``-alpha``.

The class below is an immutable value object describing the clock domain;
clock *values* are plain integers, which keeps vertex states tiny and
hashable.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Tuple

from ..exceptions import ClockError

__all__ = ["BoundedClock"]


class BoundedClock:
    """The bounded clock ``X = (cherry(alpha, K), phi)``.

    Parameters
    ----------
    alpha:
        Size of the initial tail (``alpha >= 1``).  The unison protocol
        requires ``alpha >= hole(g) - 2``; SSME uses ``alpha = n``.
    K:
        Size of the correct cycle (``K >= 2``).  The unison protocol
        requires ``K > cyclo(g)``; SSME uses ``K = (2n-1)(diam(g)+1)+2``.

    Examples
    --------
    Figure 1 of the paper shows ``cherry(5, 12)``:

    >>> clock = BoundedClock(alpha=5, K=12)
    >>> clock.phi(-3)
    -2
    >>> clock.phi(11)
    0
    >>> clock.distance(1, 11)
    2
    """

    __slots__ = ("_alpha", "_K")

    def __init__(self, alpha: int, K: int) -> None:
        if alpha < 1:
            raise ClockError(f"alpha must be >= 1, got {alpha}")
        if K < 2:
            raise ClockError(f"K must be >= 2, got {K}")
        self._alpha = alpha
        self._K = K

    # ------------------------------------------------------------------ #
    # Parameters and domains
    # ------------------------------------------------------------------ #
    @property
    def alpha(self) -> int:
        """The initial-tail length ``alpha``."""
        return self._alpha

    @property
    def K(self) -> int:
        """The cycle size ``K``."""
        return self._K

    @property
    def size(self) -> int:
        """Total number of clock values, ``alpha + K``."""
        return self._alpha + self._K

    def values(self) -> Iterator[int]:
        """All values of ``cherry(alpha, K)``, from ``-alpha`` to ``K-1``."""
        return iter(range(-self._alpha, self._K))

    def state_space(self) -> Tuple[int, ...]:
        """The clock domain as an ordered tuple, ``(-alpha, ..., K-1)``.

        This is the per-vertex state space clock-based protocols hand to the
        exact model checker (:meth:`repro.core.Protocol.vertex_state_space`):
        a contiguous integer range, so configurations pack into mixed-radix
        integer keys.
        """
        return tuple(range(-self._alpha, self._K))

    def initial_values(self) -> FrozenSet[int]:
        """``init_X = {-alpha, ..., 0}`` (note that 0 is both initial and correct)."""
        return frozenset(range(-self._alpha, 1))

    def strict_initial_values(self) -> FrozenSet[int]:
        """``init*_X = init_X \\ {0}``."""
        return frozenset(range(-self._alpha, 0))

    def correct_values(self) -> FrozenSet[int]:
        """``stab_X = {0, ..., K-1}``."""
        return frozenset(range(self._K))

    def strict_correct_values(self) -> FrozenSet[int]:
        """``stab*_X = stab_X \\ {0}``."""
        return frozenset(range(1, self._K))

    # ------------------------------------------------------------------ #
    # Membership predicates (the names mirror the paper)
    # ------------------------------------------------------------------ #
    def contains(self, value: int) -> bool:
        """Whether ``value`` belongs to ``cherry(alpha, K)``."""
        return -self._alpha <= value < self._K

    def check(self, value: int) -> int:
        """Return ``value`` unchanged, raising :class:`ClockError` if it is
        outside the clock domain."""
        if not self.contains(value):
            raise ClockError(
                f"value {value} outside cherry({self._alpha}, {self._K})"
            )
        return value

    def is_initial(self, value: int) -> bool:
        """``value ∈ init_X`` (tail values and 0)."""
        return -self._alpha <= value <= 0

    def is_strict_initial(self, value: int) -> bool:
        """``value ∈ init*_X`` (strictly negative tail values)."""
        return -self._alpha <= value < 0

    def is_correct(self, value: int) -> bool:
        """``value ∈ stab_X`` (values on the cycle)."""
        return 0 <= value < self._K

    # ------------------------------------------------------------------ #
    # The clock operations
    # ------------------------------------------------------------------ #
    def phi(self, value: int) -> int:
        """The increment function ``phi`` of the paper."""
        self.check(value)
        if value < 0:
            return value + 1
        return (value + 1) % self._K

    def increment(self, value: int, times: int = 1) -> int:
        """Apply ``phi`` repeatedly (``times >= 0``)."""
        if times < 0:
            raise ClockError("cannot increment a negative number of times")
        current = self.check(value)
        for _ in range(times):
            current = self.phi(current)
        return current

    def reset_value(self) -> int:
        """The value a reset produces, ``-alpha``."""
        return -self._alpha

    def reset(self, value: int) -> int:
        """Apply a reset: any value other than ``-alpha`` becomes ``-alpha``."""
        self.check(value)
        return -self._alpha

    def canonical(self, value: int) -> int:
        """``c``-bar of the paper: the representative of ``value`` modulo
        ``K`` in ``{0, ..., K-1}``."""
        return value % self._K

    def distance(self, a: int, b: int) -> int:
        """``d_K(a, b)``: circular distance between the mod-``K``
        representatives of ``a`` and ``b``."""
        ca, cb = self.canonical(a), self.canonical(b)
        diff = (ca - cb) % self._K
        return min(diff, self._K - diff)

    def locally_comparable(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are locally comparable (``d_K <= 1``)."""
        return self.distance(a, b) <= 1

    def local_le(self, a: int, b: int) -> bool:
        """The local relation ``a <=_l b``: ``b`` equals ``a`` or its
        cyclic successor.  (Not an order, as the paper notes.)"""
        return (self.canonical(b) - self.canonical(a)) % self._K <= 1

    def steps_to_reach(self, start: int, target: int) -> int:
        """Number of ``phi`` applications needed to go from ``start`` to
        ``target`` (always defined because ``phi`` eventually visits every
        correct value, and initial values are only reachable from below)."""
        self.check(start)
        self.check(target)
        current = start
        steps = 0
        limit = self.size + self._K  # generous upper bound on the orbit length
        while current != target:
            current = self.phi(current)
            steps += 1
            if steps > limit:
                raise ClockError(
                    f"value {target} is unreachable from {start} by phi"
                )
        return steps

    def trajectory(self, start: int, length: int) -> List[int]:
        """The orbit ``[start, phi(start), phi²(start), ...]`` of ``length + 1``
        values."""
        if length < 0:
            raise ClockError("length must be non-negative")
        values = [self.check(start)]
        for _ in range(length):
            values.append(self.phi(values[-1]))
        return values

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundedClock):
            return NotImplemented
        return self._alpha == other._alpha and self._K == other._K

    def __hash__(self) -> int:
        return hash((self._alpha, self._K))

    def __repr__(self) -> str:
        return f"BoundedClock(alpha={self._alpha}, K={self._K})"

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.contains(value)
