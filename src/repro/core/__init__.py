"""Core execution model: configurations, rules, protocols, daemons,
simulator, specifications, and stabilization/speculation analysis."""

from .state import Configuration, ConfigurationBuffer, ConfigurationView
from .rules import LocalView, Rule, make_rule
from .engine import IncrementalEngine, protocol_supports_incremental
from .protocol import ActivationRecord, PrivilegeAware, Protocol
from .daemons import (
    DAEMON_FACTORIES,
    AdversarialCentralDaemon,
    CentralDaemon,
    Daemon,
    DistributedDaemon,
    LocallyCentralDaemon,
    RoundRobinCentralDaemon,
    StarvationDaemon,
    SynchronousDaemon,
    is_weaker_than,
    make_daemon,
)
from .execution import Execution, LazyActivations, LazyConfigurationTrace
from .simulator import Simulator, StepResult, synchronous_execution
from .specification import SilentSpecification, Specification
from .stabilization import (
    SafetyMonitor,
    StabilizationMeasurement,
    WorstCaseStabilization,
    measure_stabilization,
    observed_stabilization_index,
    observed_stabilization_indices,
    worst_case_stabilization,
)
from .speculation import (
    DaemonStabilizationProfile,
    SpeculationMeasurement,
    SpeculationStudy,
    measure_speculation,
    run_speculation_study,
)

__all__ = [
    "ActivationRecord",
    "AdversarialCentralDaemon",
    "CentralDaemon",
    "Configuration",
    "ConfigurationBuffer",
    "ConfigurationView",
    "DAEMON_FACTORIES",
    "Daemon",
    "DaemonStabilizationProfile",
    "DistributedDaemon",
    "Execution",
    "IncrementalEngine",
    "LazyActivations",
    "LazyConfigurationTrace",
    "LocalView",
    "LocallyCentralDaemon",
    "PrivilegeAware",
    "Protocol",
    "RoundRobinCentralDaemon",
    "Rule",
    "SafetyMonitor",
    "SilentSpecification",
    "Simulator",
    "SpeculationMeasurement",
    "SpeculationStudy",
    "Specification",
    "StabilizationMeasurement",
    "StarvationDaemon",
    "StepResult",
    "SynchronousDaemon",
    "WorstCaseStabilization",
    "is_weaker_than",
    "make_daemon",
    "make_rule",
    "measure_speculation",
    "measure_stabilization",
    "observed_stabilization_index",
    "observed_stabilization_indices",
    "protocol_supports_incremental",
    "run_speculation_study",
    "synchronous_execution",
    "worst_case_stabilization",
]
