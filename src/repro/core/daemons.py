"""Daemons (adversaries/schedulers) of Definition 1.

A daemon restricts which executions of a protocol are considered possible.
Operationally, our simulator consults the daemon at every configuration: the
daemon receives the set of enabled vertices and returns the non-empty subset
that gets activated during the next action.

The classical daemons of the paper are provided:

* :class:`SynchronousDaemon` (``sd``) — activates every enabled vertex;
* :class:`CentralDaemon` (``cd``) — activates exactly one enabled vertex;
* :class:`DistributedDaemon` — activates an arbitrary non-empty subset,
  which (together with the adversarial variants below) stands in for the
  *unfair distributed daemon* ``ud`` of the paper;
* :class:`LocallyCentralDaemon` — never activates two neighbours at once;
* :class:`AdversarialCentralDaemon` / :class:`StarvationDaemon` — greedy
  heuristics that try to delay convergence or starve a process, used to
  estimate worst-case stabilization times under unfair scheduling.

Definition 2's partial order ("more powerful" = allows more executions) is
made executable through :meth:`Daemon.admits_selection` and
:func:`is_weaker_than`: a daemon is weaker than another (over a ground set
of enabled vertices) when every per-step selection it can make is also
available to the other.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import DaemonError
from ..types import VertexId
from .protocol import Protocol
from .state import Configuration

__all__ = [
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "RoundRobinCentralDaemon",
    "DistributedDaemon",
    "LocallyCentralDaemon",
    "AdversarialCentralDaemon",
    "StarvationDaemon",
    "RegimeSwitchingDaemon",
    "is_weaker_than",
    "DAEMON_FACTORIES",
    "make_daemon",
]


class Daemon(ABC):
    """Base class for daemons.

    A daemon may be *bound* to a protocol by the simulator (see
    :meth:`bind`); adversarial daemons use the protocol to look ahead, the
    others ignore it.
    """

    #: Short human-readable name ("sd", "cd", ...), set by subclasses.
    name: str = "daemon"

    #: Backend-selection hint: True when the daemon's typical selection
    #: activates a constant fraction of the enabled set (the synchronous
    #: daemon, dense distributed daemons).  The engine's automatic backend
    #: selection runs such daemons on the vectorized array-state kernel
    #: when the protocol declares one; sparse daemons keep the dirty-set
    #: paths.  Purely advisory — every backend is correct for every daemon.
    dense: bool = False

    #: True only for daemons whose selection is *always* the full enabled
    #: set (the synchronous daemon).  Such schedules are deterministic given
    #: the initial configuration, which is what licenses the batched
    #: superstep path of :class:`repro.core.vector.VectorEngine`: K steps
    #: can be executed as pure array operations because no per-step daemon
    #: decision exists.  Never set this on a daemon that can activate a
    #: proper subset — the superstep path skips ``select`` entirely.
    synchronous: bool = False

    #: Advisory expected fraction of the enabled set activated per step
    #: (``None`` when unknown).  Used by the automatic backend selection to
    #: route mid-density daemons (``0.2 <= density < 0.5``) to the array
    #: kernel on large graphs, where the vectorized sparse guard refresh
    #: beats the dict-backed dirty-set paths.
    density: Optional[float] = None

    def __init__(self) -> None:
        self._protocol: Optional[Protocol] = None
        self._sorted_vertices: Optional[List[VertexId]] = None

    def bind(self, protocol: Protocol) -> None:
        """Attach the protocol whose executions this daemon schedules."""
        self._protocol = protocol
        # Cache the deterministic vertex order once: the simulator hands the
        # daemon a (cached) enabled set every step, and re-sorting it by repr
        # per step is a hidden O(n log n) on the simulation hot path.
        self._sorted_vertices = list(protocol.graph.sorted_vertices())

    def _ordered_enabled(self, enabled: FrozenSet[VertexId]) -> List[VertexId]:
        """The enabled vertices in deterministic (repr-sorted) order.

        Uses the vertex order cached at :meth:`bind` time when available —
        one membership filter instead of a repr sort per step.  For enabled
        sets much smaller than the graph (the tail of every stabilization
        run) sorting the few elements directly is cheaper than scanning the
        full vertex order; both branches produce the identical list.
        """
        if self._sorted_vertices is None or len(enabled) * 8 < len(self._sorted_vertices):
            return sorted(enabled, key=repr)
        return [v for v in self._sorted_vertices if v in enabled]

    @property
    def protocol(self) -> Optional[Protocol]:
        """The bound protocol, if any."""
        return self._protocol

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    @abstractmethod
    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        """Choose the non-empty subset of ``enabled`` to activate.

        ``enabled`` is the simulator's cached enabled set for the current
        configuration — daemons must not recompute it.  ``configuration``
        is an immutable snapshot under the default trace mode, but a *live*
        read-only view in light-trace mode: read it freely during the call,
        never retain it across steps.
        """

    def checked_select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        """Like :meth:`select`, with the legality checks of the model."""
        if not enabled:
            raise DaemonError("select() called with no enabled vertex")
        selection = frozenset(self.select(enabled, configuration, step_index, rng))
        if selection is enabled:
            # The synchronous daemon returns the enabled set itself (and
            # frozenset() of a frozenset is the same object); the subset
            # check below would cost O(n) per step for nothing.
            return selection
        if not selection:
            raise DaemonError(f"daemon {self.name!r} returned an empty selection")
        if not selection <= enabled:
            raise DaemonError(
                f"daemon {self.name!r} selected disabled vertices: "
                f"{sorted(selection - enabled, key=repr)!r}"
            )
        return selection

    # ------------------------------------------------------------------ #
    # Definition 2 semantics
    # ------------------------------------------------------------------ #
    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        """Whether this daemon could ever return ``selection`` for ``enabled``.

        The default is the unconstrained (distributed) behaviour: any
        non-empty subset of the enabled vertices.
        """
        return bool(selection) and selection <= enabled

    def admissible_selections(
        self, enabled: FrozenSet[VertexId]
    ) -> List[FrozenSet[VertexId]]:
        """Enumerate every selection this daemon admits (small sets only)."""
        vertices = sorted(enabled, key=repr)
        result = []
        for size in range(1, len(vertices) + 1):
            for combo in itertools.combinations(vertices, size):
                candidate = frozenset(combo)
                if self.admits_selection(enabled, candidate):
                    result.append(candidate)
        return result

    def reset(self) -> None:
        """Forget scheduling memory (round-robin position, starvation
        target...).  Called by the simulator before each run."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SynchronousDaemon(Daemon):
    """The synchronous daemon ``sd``: every enabled vertex is activated."""

    name = "sd"
    dense = True
    synchronous = True
    density = 1.0

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        return enabled

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        return bool(selection) and selection == enabled


class CentralDaemon(Daemon):
    """The central daemon ``cd``: exactly one enabled vertex per action.

    ``strategy`` controls which vertex is picked:

    * ``"random"`` — uniformly at random (default);
    * ``"first"`` / ``"last"`` — deterministic extremes of the repr order,
      useful to build reproducible sequential executions.
    """

    name = "cd"

    def __init__(self, strategy: str = "random") -> None:
        super().__init__()
        if strategy not in {"random", "first", "last"}:
            raise DaemonError(f"unknown central strategy {strategy!r}")
        self._strategy = strategy

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        ordered = self._ordered_enabled(enabled)
        if self._strategy == "first":
            choice = ordered[0]
        elif self._strategy == "last":
            choice = ordered[-1]
        else:
            choice = rng.choice(ordered)
        return frozenset({choice})

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        return len(selection) == 1 and selection <= enabled


class RoundRobinCentralDaemon(Daemon):
    """A fair central daemon cycling through the vertices in a fixed order.

    Useful as a benign sequential scheduler (it never starves a vertex).
    """

    name = "cd-rr"

    def __init__(self) -> None:
        super().__init__()
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        if self._sorted_vertices is None:
            ordered_all = sorted(enabled, key=repr)
        else:
            ordered_all = self._sorted_vertices
        total = len(ordered_all)
        for offset in range(total):
            candidate = ordered_all[(self._cursor + offset) % total]
            if candidate in enabled:
                self._cursor = (self._cursor + offset + 1) % total
                return frozenset({candidate})
        # Unreachable: checked_select() guarantees ``enabled`` is non-empty
        # and every enabled vertex appears in ``ordered_all``.
        raise DaemonError("round-robin daemon found no enabled vertex")

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        return len(selection) == 1 and selection <= enabled


class DistributedDaemon(Daemon):
    """The (randomized) distributed daemon: an arbitrary non-empty subset.

    Each enabled vertex is selected independently with probability
    ``activation_probability``; if the coin flips produce an empty set, one
    enabled vertex is forced, so the selection is always legal.
    """

    name = "dd"

    def __init__(self, activation_probability: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < activation_probability <= 1.0:
            raise DaemonError(
                f"activation probability must be in (0, 1], got {activation_probability}"
            )
        self._p = activation_probability
        # Expected selections cover at least half the enabled set: the
        # dense regime the vector backend is built for.
        self.dense = activation_probability >= 0.5
        self.density = activation_probability

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        ordered = self._ordered_enabled(enabled)
        chosen = {v for v in ordered if rng.random() < self._p}
        if not chosen:
            chosen = {rng.choice(ordered)}
        return frozenset(chosen)


class LocallyCentralDaemon(Daemon):
    """Never activates two neighbouring vertices in the same action.

    The selection is a (greedy, randomized) maximal independent subset of
    the enabled vertices.
    """

    name = "lcd"

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        if self._protocol is None:
            raise DaemonError("locally central daemon requires a bound protocol")
        graph = self._protocol.graph
        ordered = self._ordered_enabled(enabled)
        rng.shuffle(ordered)
        chosen: Set[VertexId] = set()
        for v in ordered:
            if not any(u in chosen for u in graph.neighbors(v)):
                chosen.add(v)
        return frozenset(chosen)

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        if not (selection and selection <= enabled):
            return False
        if self._protocol is None:
            return True
        graph = self._protocol.graph
        return all(
            not (graph.has_edge(u, v))
            for u in selection
            for v in selection
            if u != v
        )


class AdversarialCentralDaemon(Daemon):
    """A convergence-delaying central daemon (unfair heuristic).

    At each configuration it activates the single enabled vertex whose
    activation leaves the *largest* number of vertices enabled in the next
    configuration (ties broken in favour of the vertex activated least
    recently, then by identifier).  Keeping many vertices enabled for as
    long as possible is a standard way to realize slow executions of
    unison-style protocols, and empirically dominates random central
    scheduling in our Theorem 3 experiment.
    """

    name = "cd-adv"

    def __init__(self) -> None:
        super().__init__()
        self._last_activated: Dict[VertexId, int] = {}

    def reset(self) -> None:
        self._last_activated = {}

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        if self._protocol is None:
            raise DaemonError("adversarial daemon requires a bound protocol")
        protocol = self._protocol
        graph = protocol.graph
        # Reuse one rules lookup across the lookahead only when the protocol
        # keeps the stock enabledness chain; custom chains must be honoured.
        stock_enabledness = protocol.has_stock_enabledness()
        rules = protocol.rules() if stock_enabledness else None
        best_vertex = None
        best_key: Optional[Tuple[int, int, str]] = None
        for vertex in self._ordered_enabled(enabled):
            next_config, _ = protocol.apply(configuration, [vertex])
            # Activating a single vertex can only change the enabledness of
            # that vertex and its neighbours, so the successor's enabled
            # count is computed from the current one by a local delta.
            closed_neighborhood = set(graph.neighbors(vertex)) | {vertex}
            enabled_after = len(enabled - closed_neighborhood)
            if stock_enabledness:
                enabled_after += sum(
                    1
                    for w in closed_neighborhood
                    if protocol.evaluate(next_config, w, rules)[1]
                )
            else:
                enabled_after += sum(
                    1
                    for w in closed_neighborhood
                    if protocol.is_enabled(next_config, w)
                )
            recency = self._last_activated.get(vertex, -1)
            # Maximize enabled_after, then prefer least recently activated.
            key = (-enabled_after, recency, repr(vertex))
            if best_key is None or key < best_key:
                best_key = key
                best_vertex = vertex
        assert best_vertex is not None
        self._last_activated[best_vertex] = step_index
        return frozenset({best_vertex})

    def admits_selection(
        self, enabled: FrozenSet[VertexId], selection: FrozenSet[VertexId]
    ) -> bool:
        return len(selection) == 1 and selection <= enabled


class StarvationDaemon(Daemon):
    """An unfair distributed daemon that starves a target vertex.

    The target (by default the vertex with the largest identifier) is only
    activated when it is the sole enabled vertex; every other enabled vertex
    is activated at every step.  This realizes the classical unfairness
    pattern used to exhibit worst-case executions.
    """

    name = "ud-starve"
    dense = True  # every enabled vertex but the target fires each step

    def __init__(self, target: Optional[VertexId] = None) -> None:
        super().__init__()
        self._target = target

    def _resolve_target(self) -> Optional[VertexId]:
        if self._target is not None:
            return self._target
        if self._protocol is None:
            return None
        return self._protocol.graph.sorted_vertices()[-1]

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        target = self._resolve_target()
        if target is None:
            return enabled
        without_target = frozenset(v for v in enabled if v != target)
        return without_target if without_target else enabled


class RegimeSwitchingDaemon(Daemon):
    """Alternates synchronous and sparse-central scheduling phases.

    For ``dense_steps`` actions out of every ``dense_steps + sparse_steps``
    period the daemon behaves like the synchronous daemon (every enabled
    vertex fires); for the remaining ``sparse_steps`` actions it behaves
    like the random central daemon (one enabled vertex fires).  Phase
    membership is a pure function of the step index, so executions are
    deterministic given the seed.

    This is the canonical *regime-switch workload* for the adaptive engine
    (:mod:`repro.adaptive`): neither phase dominates the run, so any fixed
    backend choice is wrong half the time.  The advisory flags deliberately
    stay at their sparse defaults (``dense=False``, ``synchronous=False``):
    ``engine="auto"`` must keep the incremental engine for this daemon —
    exploiting the dense phases mid-run is exactly the adaptive engine's
    job, not static backend selection's.
    """

    name = "regime-switch"

    def __init__(self, dense_steps: int = 64, sparse_steps: int = 192) -> None:
        super().__init__()
        if dense_steps < 1 or sparse_steps < 1:
            raise DaemonError("phase lengths must be at least 1 step")
        self._dense_steps = dense_steps
        self._period = dense_steps + sparse_steps

    @property
    def dense_steps(self) -> int:
        """Length of the synchronous phase of each period."""
        return self._dense_steps

    @property
    def sparse_steps(self) -> int:
        """Length of the sparse-central phase of each period."""
        return self._period - self._dense_steps

    def in_dense_phase(self, step_index: int) -> bool:
        """Whether action ``step_index`` falls in a synchronous phase."""
        return (step_index % self._period) < self._dense_steps

    def select(
        self,
        enabled: FrozenSet[VertexId],
        configuration: Configuration,
        step_index: int,
        rng: random.Random,
    ) -> FrozenSet[VertexId]:
        if self.in_dense_phase(step_index):
            return enabled
        return frozenset({rng.choice(self._ordered_enabled(enabled))})


def is_weaker_than(
    weaker: Daemon, stronger: Daemon, ground_sets: Iterable[FrozenSet[VertexId]]
) -> bool:
    """Executable approximation of Definition 2 over sample enabled sets.

    ``weaker`` is at most as powerful as ``stronger`` when every per-step
    selection ``weaker`` admits is also admitted by ``stronger``.  The check
    is performed for every enabled set in ``ground_sets`` (keep them small,
    the enumeration is exponential).
    """
    for enabled in ground_sets:
        enabled = frozenset(enabled)
        if not enabled:
            continue
        weak_choices = set(weaker.admissible_selections(enabled))
        strong_choices = set(stronger.admissible_selections(enabled))
        if not weak_choices <= strong_choices:
            return False
    return True


#: Factories for daemons by short name, used by the experiment harness and
#: the command-line examples.
DAEMON_FACTORIES = {
    "sd": SynchronousDaemon,
    "cd": CentralDaemon,
    "cd-rr": RoundRobinCentralDaemon,
    "cd-adv": AdversarialCentralDaemon,
    "dd": DistributedDaemon,
    "lcd": LocallyCentralDaemon,
    "ud-starve": StarvationDaemon,
    "regime-switch": RegimeSwitchingDaemon,
}


def make_daemon(name: str, **kwargs) -> Daemon:
    """Instantiate a daemon by its short name."""
    try:
        factory = DAEMON_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(DAEMON_FACTORIES))
        raise DaemonError(f"unknown daemon {name!r}; known: {known}") from None
    return factory(**kwargs)
