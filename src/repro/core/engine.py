"""The incremental simulation engine.

The reference semantics of the model (see :class:`~repro.core.Simulator`)
recompute the enabled set of *every* vertex at *every* step, building a
fresh :class:`LocalView` per vertex and evaluating every guard twice (once
for enabledness, once inside ``Protocol.apply``).  That is O(n·rules·deg)
work per action even when the daemon activates a single vertex.

This engine exploits the locality of the state model instead: a guard of
vertex ``v`` only reads the states of ``v`` and its neighbours, so after an
action that changed the states of a set ``C`` of vertices, only the vertices
of ``C ∪ neig(C)`` can change enabledness.  The engine therefore maintains

* a mutable :class:`~repro.core.ConfigurationBuffer` updated in place
  (O(Δ) per action),
* one **persistent** :class:`LocalView` per vertex, alive for the whole
  run and patched *in place* after each action — ``view.state`` for every
  changed vertex, plus the single ``neighbor_states`` entry each changed
  vertex occupies in its neighbours' views.  That is O(Σ deg(C)) dict-entry
  writes per action instead of rebuilding a fresh view dict per dirty
  vertex per step,
* a cache of the enabled rules of every enabled vertex, refreshed for the
  dirty vertices after each action,

and shares each cached view between the enabledness check and the rule
firing, so every guard is evaluated exactly once per vertex per dirty
event.  The guard *refresh* switches on dirty-set density: below
``_BATCH_DENSITY`` the engine walks the explicit dirty set ``C ∪ neig(C)``
(the ``cd`` regime); at or above it — the synchronous-daemon regime, where
the dirty set covers essentially the whole graph — it skips the dirty-set
bookkeeping altogether and rescans every vertex against its (already
patched) persistent view, which is cheaper than materializing a set of
nearly all vertices first.  Immutable :class:`~repro.core.Configuration`
snapshots are materialized only where the :class:`~repro.core.Execution`
trace records them; in light-trace mode (``trace="light"``) no snapshot is
materialized at all and configurations are reconstructed on demand from the
activation records.

The produced executions are equivalent to the reference engine's (same
configurations, selections, enabled sets and activation records — record
*order* within one action may differ, as it follows set iteration order).
``tests/test_engine_equivalence.py`` asserts this property across
protocols, daemons, graphs and seeds.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..exceptions import SimulationError
from ..types import VertexId, VertexStateLike
from .daemons import Daemon
from .execution import Execution, LazyActivations
from .protocol import ActivationRecord, Protocol
from .rules import LocalView, Rule
from .state import Configuration, ConfigurationBuffer

__all__ = [
    "IncrementalEngine",
    "prefers_array_backend",
    "protocol_supports_incremental",
]


#: Automatic-backend policy for mid-density daemons: a daemon that is not
#: ``dense`` but advertises an expected activation fraction of at least
#: ``_MID_DENSITY`` is routed to the array kernel on graphs of at least
#: ``_MID_DENSITY_MIN_N`` vertices, where the vectorized sparse guard
#: refresh beats the dict-backed dirty-set paths.  Purely advisory — every
#: backend is correct for every daemon.
_MID_DENSITY = 0.2
_MID_DENSITY_MIN_N = 512


def prefers_array_backend(daemon: Daemon, n: int) -> bool:
    """Whether automatic backend selection should try the array kernel for
    ``daemon`` on a graph of ``n`` vertices (dense daemons always; known
    mid-density daemons on large graphs)."""
    if daemon.dense:
        return True
    return (
        daemon.density is not None
        and daemon.density >= _MID_DENSITY
        and n >= _MID_DENSITY_MIN_N
    )


def protocol_supports_incremental(protocol: Protocol) -> bool:
    """Whether ``protocol`` keeps the base-class transition semantics.

    ``choose_rule``, ``validate_state`` and ``rules`` may be overridden
    freely — the engine calls them; only the hot-path methods it *replaces*
    must be the stock implementations (see
    :meth:`Protocol.has_stock_transitions`).
    """
    return protocol.has_stock_transitions()


class IncrementalEngine:
    """Dirty-set incremental runner for one protocol instance.

    The engine is stateless between runs (all per-run state lives in local
    variables), so one instance can be cached per simulator and reused.

    Backend selection: the dict-based sparse/batch paths below are always
    available; protocols that declare an array codec/kernel (see
    :mod:`repro.core.vector`) additionally unlock a NumPy-vectorized
    **array-state backend** that replaces the whole per-step scan of the
    dense (batch) regime with a handful of array operations.  ``run``'s
    ``backend`` parameter picks between them — ``"auto"`` (default) uses
    the vector backend exactly when the protocol declares one, NumPy is
    importable and the daemon advertises dense selections
    (:attr:`Daemon.dense`); ``"vector"`` requests it for any daemon; both
    degrade gracefully to the dict paths when the capability is missing,
    so NumPy stays an optional dependency.
    """

    __slots__ = (
        "_protocol",
        "_graph",
        "_vertices",
        "_neighbors",
        "_vector",
        "last_run_backend",
        "last_final_configuration",
    )

    #: Refresh-mode switch: when ``len(changes) * _BATCH_DENSITY >= n`` the
    #: dirty set ``C ∪ neig(C)`` covers (essentially) the whole graph, so the
    #: guard refresh rescans every vertex instead of materializing the set.
    _BATCH_DENSITY = 4

    def __init__(self, protocol: Protocol) -> None:
        self._protocol = protocol
        self._graph = protocol.graph
        # The graph is immutable, so the neighbourhood map can be cached for
        # the engine's lifetime; rules() is re-queried per run because the
        # protocol contract allows it to be overridden (e.g. parameterized).
        self._vertices: Tuple[VertexId, ...] = tuple(self._graph.vertices)
        self._neighbors: Dict[VertexId, Tuple[VertexId, ...]] = {
            v: tuple(self._graph.neighbors(v)) for v in self._vertices
        }
        self._vector = None
        #: Which backend the most recent ``run`` used ("vector-superstep",
        #: "vector" or "dict"); None before the first run.  Diagnostic only.
        self.last_run_backend: Optional[str] = None
        #: The final configuration of the most recent ``run`` (None before
        #: the first run).  Lets segment-wise callers (fault campaigns, the
        #: adaptive engine) chain runs without forcing ``Execution.final``,
        #: which on a light trace replays every delta.
        self.last_final_configuration: Optional[Configuration] = None

    def _vector_engine(self):
        """The cached array-state backend, or None when unavailable.

        Probed lazily (and re-probed while unavailable, so an environment
        that gains NumPy mid-process is picked up; a cached engine is never
        dropped — the capability cannot un-declare itself).  The probed
        codec/kernel objects are handed straight to the engine, so the
        capability is instantiated exactly once.
        """
        if self._vector is None:
            from .vector import VectorEngine, vector_eligible

            if vector_eligible(self._protocol):
                codec = self._protocol.array_codec()
                kernel = self._protocol.array_kernel()
                if codec is not None and kernel is not None:
                    self._vector = VectorEngine(
                        self._protocol, codec=codec, kernel=kernel
                    )
        return self._vector

    def run(
        self,
        daemon: Daemon,
        rng: random.Random,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
        backend: str = "auto",
        superstep: Optional[int] = None,
    ) -> Execution:
        """Run up to ``max_steps`` actions from ``initial``.

        Mirrors the reference engine's ``Simulator.run`` contract exactly;
        with ``trace="light"`` the returned execution reconstructs
        intermediate configurations on demand, and daemons/predicates are
        handed a live read-only view instead of per-step snapshots.

        Views are persistent for the whole run and patched *in place* after
        each action, so the guard/action/choose_rule hooks they are handed
        must treat them as read-only **and must not retain them across
        steps** — which the rule contract already requires (guards and
        actions are pure functions of the view); a hook mutating
        ``view.neighbor_states`` would corrupt the cache, and one stashing a
        view would observe it silently change under later actions.

        ``backend`` selects between the dict-based sparse/batch paths
        (``"dict"``), the per-step NumPy array-state kernel (``"vector"``),
        and the batched synchronous kernel loop (``"vector-superstep"``,
        ``superstep`` steps per block — see
        :meth:`VectorEngine.run_supersteps`); ``"auto"`` (default) picks the
        array backend for daemons :func:`prefers_array_backend` approves
        when the protocol declares one, upgrading to supersteps for
        synchronous daemons.  Requests the capability cannot honour (no
        kernel, no NumPy, states outside the codec's layout, supersteps
        under a non-synchronous daemon) fall back to the next backend down —
        never an error.
        """
        if trace not in {"full", "light"}:
            raise SimulationError(f"unknown trace mode {trace!r}")
        if backend not in {"auto", "dict", "vector", "vector-superstep"}:
            raise SimulationError(f"unknown engine backend {backend!r}")
        if backend != "dict":
            vector = self._vector_engine()
            if vector is not None and (
                backend in ("vector", "vector-superstep")
                or prefers_array_backend(daemon, self._graph.n)
            ):
                encoded = vector.encode_initial(initial)
                if encoded is not None:
                    # Supersteps need a deterministic full-enabled-set
                    # schedule; an explicit single-step "vector" request is
                    # honoured as-is (benchmarks compare the two paths).
                    if daemon.synchronous and backend != "vector":
                        self.last_run_backend = "vector-superstep"
                        execution = vector.run_supersteps(
                            daemon=daemon,
                            rng=rng,
                            initial=initial,
                            max_steps=max_steps,
                            stop_when=stop_when,
                            trace=trace,
                            initial_array=encoded,
                            superstep=superstep,
                        )
                    else:
                        self.last_run_backend = "vector"
                        execution = vector.run(
                            daemon=daemon,
                            rng=rng,
                            initial=initial,
                            max_steps=max_steps,
                            stop_when=stop_when,
                            trace=trace,
                            initial_array=encoded,
                        )
                    self.last_final_configuration = vector.last_final_configuration
                    return execution
        self.last_run_backend = "dict"
        if set(initial) != set(self._vertices):
            raise SimulationError(
                "initial configuration is not over the protocol's vertex set"
            )
        protocol = self._protocol
        graph = self._graph
        rules = tuple(protocol.rules())
        neighbors = self._neighbors
        vertices = self._vertices
        n_vertices = len(vertices)
        batch_threshold = max(1, n_vertices // self._BATCH_DENSITY)
        # choose_rule is an overridable hook; when it is the stock
        # implementation (first enabled rule, mutually exclusive guards in
        # every protocol of the library) the engine searches for the FIRST
        # enabled rule with a short-circuit — a vertex whose first guard
        # holds never evaluates the remaining ones — and skips the
        # per-firing defensive list copy and dispatch.  An overridden
        # choose_rule needs the full enabled list, so every guard runs.
        stock_choose = type(protocol).choose_rule is Protocol.choose_rule
        choose_rule = protocol.choose_rule
        # Per-firing re-validation is skipped when it cannot raise: the
        # stock validate_state accepts everything, and protocols declaring
        # ``actions_preserve_validity`` guarantee their actions are closed
        # over the legal states.
        validate_state: Optional[Callable[[VertexId, VertexStateLike], None]] = (
            None
            if (
                protocol.actions_preserve_validity
                or type(protocol).validate_state is Protocol.validate_state
            )
            else protocol.validate_state
        )

        buffer = ConfigurationBuffer(initial)
        states = buffer.raw_states()

        # Guard and action callables, hoisted once.  Rules keeping the stock
        # ``is_enabled``/``apply`` are probed/fired through their raw
        # guard/action (one call frame less per evaluation); subclasses
        # overriding either keep their semantics through the bound methods.
        # ``plans`` pairs each guard with the pre-built ``(rule, fire)``
        # tuple the firing loop consumes, so the per-step scan allocates
        # nothing.
        guards: List[Tuple[Rule, Callable[[LocalView], object]]] = []
        plans: List[Tuple[Callable[[LocalView], object], Tuple[str, Callable]]] = []
        for rule in rules:
            check = (
                rule.guard
                if type(rule).is_enabled is Rule.is_enabled
                else rule.is_enabled
            )
            fire = rule.action if type(rule).apply is Rule.apply else rule.apply
            guards.append((rule, check))
            plans.append((check, (rule.name, fire)))

        # One persistent view per vertex (patched in place after actions)
        # plus the cache of what each enabled vertex will fire, seeded by one
        # full evaluation: ``prepared`` maps every enabled vertex to its
        # first enabled rule (stock choose_rule) or to the full enabled-rule
        # list (overridden choose_rule).
        views: Dict[VertexId, LocalView] = {}
        prepared: Dict[VertexId, object] = {}
        for vertex in vertices:
            view = LocalView._from_trusted_parts(
                vertex, states[vertex], {u: states[u] for u in neighbors[vertex]}, graph
            )
            views[vertex] = view
            if stock_choose:
                for check, plan in plans:
                    if check(view):
                        prepared[vertex] = plan
                        break
            else:
                enabled_rules = [rule for rule, check in guards if check(view)]
                if enabled_rules:
                    prepared[vertex] = enabled_rules
        # Patch plan: for each vertex, the ``neighbor_states`` dicts (one
        # per neighbour's view) holding its state.  A vertex's *own*
        # ``view.state`` is rewritten inside the firing loop — no other
        # vertex's firing reads it — so only these neighbour slots remain
        # to patch after the action.
        patch_slots: Dict[VertexId, List[Dict[VertexId, VertexStateLike]]] = {
            vertex: [views[u].neighbor_states for u in neighbors[vertex]]
            for vertex in vertices
        }
        # The views dict never changes shape after seeding; the batch scan
        # iterates this flat list instead of a fresh dict-items view.
        scan_items: List[Tuple[VertexId, LocalView]] = list(views.items())

        light = trace == "light"
        live_view = buffer.view() if light else None
        configurations: List[Configuration] = [initial]
        selections: List[FrozenSet[VertexId]] = []
        activations: List[Sequence[ActivationRecord]] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        deltas: List[Dict[VertexId, VertexStateLike]] = []
        truncated = True

        current: Configuration = initial
        enabled: Optional[FrozenSet[VertexId]] = None  # reused until membership changes
        for index in range(max_steps + 1):
            if enabled is None:
                enabled = frozenset(prepared)
            enabled_sets.append(enabled)
            observed = live_view if light else current
            if stop_when is not None and stop_when(observed, index):
                truncated = True
                break
            if not enabled:
                truncated = False
                break
            if index == max_steps:
                truncated = True
                break
            selection = daemon.checked_select(enabled, observed, index, rng)

            # Fire the cached enabled rules of the selected vertices.
            # ``record order within one action follows iteration order'' is
            # part of the engine contract (compared order-insensitively by
            # the equivalence suite), so the synchronous fast path below may
            # iterate ``prepared`` directly: when the selection is the whole
            # enabled set (``selection ⊆ enabled = prepared.keys()`` plus
            # equal sizes), the per-vertex lookups are pure overhead.
            # Each firing is recorded as a raw (vertex, rule_name, old, new)
            # tuple; full traces materialize ActivationRecords per action
            # below, light traces wrap the raw log in LazyActivations.
            records: List[tuple] = []
            changes: Dict[VertexId, VertexStateLike] = {}
            if stock_choose:
                if len(selection) == len(prepared):
                    fired = prepared.items()
                else:
                    fired = (
                        (vertex, prepared[vertex])
                        for vertex in selection
                        if vertex in prepared
                    )
                for vertex, (rule_name, fire) in fired:
                    view = views[vertex]
                    new_state = fire(view)
                    if validate_state is not None:
                        validate_state(vertex, new_state)
                    old_state = view.state
                    records.append((vertex, rule_name, old_state, new_state))
                    if new_state != old_state:
                        changes[vertex] = new_state
                        view.state = new_state
            else:
                for vertex in selection:
                    entry = prepared.get(vertex)
                    if entry is None:  # pragma: no cover - checked_select forbids it
                        continue
                    view = views[vertex]
                    # An overriding hook gets a copy so a mutation cannot
                    # corrupt the cache.
                    rule = choose_rule(list(entry), view)
                    new_state = rule.apply(view)
                    if validate_state is not None:
                        validate_state(vertex, new_state)
                    old_state = view.state
                    records.append((vertex, rule.name, old_state, new_state))
                    if new_state != old_state:
                        changes[vertex] = new_state
                        view.state = new_state

            # O(Δ) in-place update of buffer and persistent views: a changed
            # vertex occupies exactly one neighbor_states slot in each of its
            # neighbours' views, so patching those slots (O(Σ deg(C))) keeps
            # every view current without rebuilding any dict.  Only the
            # changed vertices and their neighbours can change enabledness.
            if changes:
                buffer.apply_trusted_changes(changes)
                if len(changes) >= batch_threshold:
                    # Batch refresh (dense dirty set, e.g. the synchronous
                    # daemon): C ∪ neig(C) covers essentially every vertex,
                    # so skip the dirty-set bookkeeping, rescan every view,
                    # and rebuild the enabled set unconditionally (cheaper
                    # than per-vertex membership tracking at this density).
                    for vertex, new_state in changes.items():
                        for slot in patch_slots[vertex]:
                            slot[vertex] = new_state
                    enabled = None
                    if stock_choose:
                        # The first rule is the hot one in every protocol of
                        # the library; probing it outside the general rule
                        # loop keeps the per-vertex cost at one call in the
                        # steady state.
                        first_check, first_plan = plans[0]
                        rest = plans[1:]
                        for vertex, view in scan_items:
                            if first_check(view):
                                prepared[vertex] = first_plan
                                continue
                            for check, plan in rest:
                                if check(view):
                                    prepared[vertex] = plan
                                    break
                            else:
                                prepared.pop(vertex, None)
                    else:
                        for vertex, view in scan_items:
                            enabled_rules = [
                                rule for rule, check in guards if check(view)
                            ]
                            if enabled_rules:
                                prepared[vertex] = enabled_rules
                            else:
                                prepared.pop(vertex, None)
                else:
                    # Sparse refresh: walk the explicit dirty set, tracking
                    # whether the enabled set's membership actually changed
                    # so the frozenset is rebuilt only when it did.
                    dirty: Set[VertexId] = set(changes)
                    for vertex, new_state in changes.items():
                        for slot in patch_slots[vertex]:
                            slot[vertex] = new_state
                        dirty.update(neighbors[vertex])
                    if stock_choose:
                        for vertex in dirty:
                            view = views[vertex]
                            for check, plan in plans:
                                if check(view):
                                    if vertex not in prepared:
                                        enabled = None
                                    prepared[vertex] = plan
                                    break
                            else:
                                if prepared.pop(vertex, None) is not None:
                                    enabled = None
                    else:
                        for vertex in dirty:
                            view = views[vertex]
                            enabled_rules = [
                                rule for rule, check in guards if check(view)
                            ]
                            if enabled_rules:
                                if vertex not in prepared:
                                    enabled = None
                                prepared[vertex] = enabled_rules
                            elif prepared.pop(vertex, None) is not None:
                                enabled = None

            selections.append(selection)
            if light:
                activations.append(records)
                # ``changes`` is rebound (never mutated) on the next
                # iteration, so the dict itself can seed the lazy trace.
                deltas.append(changes)
            else:
                activations.append(
                    [ActivationRecord(*record) for record in records]
                )
                current = buffer.snapshot() if changes else current
                configurations.append(current)

        # The buffer already holds the final states; snapshotting it here is
        # O(n) once, versus an O(steps · Δ) delta replay through
        # ``Execution.final`` on a light trace.
        self.last_final_configuration = buffer.snapshot() if light else current
        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=LazyActivations(activations),
                enabled_sets=enabled_sets,
                truncated=truncated,
                deltas=deltas,
            )
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )
