"""The incremental simulation engine.

The reference semantics of the model (see :class:`~repro.core.Simulator`)
recompute the enabled set of *every* vertex at *every* step, building a
fresh :class:`LocalView` per vertex and evaluating every guard twice (once
for enabledness, once inside ``Protocol.apply``).  That is O(n·rules·deg)
work per action even when the daemon activates a single vertex.

This engine exploits the locality of the state model instead: a guard of
vertex ``v`` only reads the states of ``v`` and its neighbours, so after an
action that changed the states of a set ``C`` of vertices, only the vertices
of ``C ∪ neig(C)`` can change enabledness.  The engine therefore maintains

* a mutable :class:`~repro.core.ConfigurationBuffer` updated in place
  (O(Δ) per action),
* a persistent per-vertex cache of ``(LocalView, enabled rules)`` pairs,
  refreshed only for the *dirty* vertices ``C ∪ neig(C)`` after each action,

and shares each cached view between the enabledness check and the rule
firing, so every guard is evaluated exactly once per vertex per dirty
event.  Immutable :class:`~repro.core.Configuration` snapshots are
materialized only where the :class:`~repro.core.Execution` trace records
them; in light-trace mode (``trace="light"``) no snapshot is materialized
at all and configurations are reconstructed on demand from the activation
records.

The produced executions are equivalent to the reference engine's (same
configurations, selections, enabled sets and activation records — record
*order* within one action may differ, as it follows set iteration order).
``tests/test_engine_equivalence.py`` asserts this property across
protocols, daemons, graphs and seeds.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..exceptions import SimulationError
from ..types import VertexId, VertexStateLike
from .daemons import Daemon
from .execution import Execution
from .protocol import ActivationRecord, Protocol
from .rules import LocalView, Rule
from .state import Configuration, ConfigurationBuffer

__all__ = ["IncrementalEngine", "protocol_supports_incremental"]


def protocol_supports_incremental(protocol: Protocol) -> bool:
    """Whether ``protocol`` keeps the base-class transition semantics.

    ``choose_rule``, ``validate_state`` and ``rules`` may be overridden
    freely — the engine calls them; only the hot-path methods it *replaces*
    must be the stock implementations (see
    :meth:`Protocol.has_stock_transitions`).
    """
    return protocol.has_stock_transitions()


class IncrementalEngine:
    """Dirty-set incremental runner for one protocol instance.

    The engine is stateless between runs (all per-run state lives in local
    variables), so one instance can be cached per simulator and reused.
    """

    __slots__ = ("_protocol", "_graph", "_vertices", "_neighbors")

    def __init__(self, protocol: Protocol) -> None:
        self._protocol = protocol
        self._graph = protocol.graph
        # The graph is immutable, so the neighbourhood map can be cached for
        # the engine's lifetime; rules() is re-queried per run because the
        # protocol contract allows it to be overridden (e.g. parameterized).
        self._vertices: Tuple[VertexId, ...] = tuple(self._graph.vertices)
        self._neighbors: Dict[VertexId, Tuple[VertexId, ...]] = {
            v: tuple(self._graph.neighbors(v)) for v in self._vertices
        }

    def run(
        self,
        daemon: Daemon,
        rng: random.Random,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
    ) -> Execution:
        """Run up to ``max_steps`` actions from ``initial``.

        Mirrors the reference engine's ``Simulator.run`` contract exactly;
        with ``trace="light"`` the returned execution reconstructs
        intermediate configurations on demand, and daemons/predicates are
        handed a live read-only view instead of per-step snapshots.

        Cached views persist across steps, so the guard/action/choose_rule
        hooks they are handed must treat them as read-only — which the rule
        contract already requires (guards and actions are pure functions of
        the view); a hook mutating ``view.neighbor_states`` would corrupt
        the cache for un-dirtied vertices.
        """
        if trace not in {"full", "light"}:
            raise SimulationError(f"unknown trace mode {trace!r}")
        if set(initial) != set(self._vertices):
            raise SimulationError(
                "initial configuration is not over the protocol's vertex set"
            )
        protocol = self._protocol
        graph = self._graph
        rules = tuple(protocol.rules())
        neighbors = self._neighbors

        buffer = ConfigurationBuffer(initial)
        states = buffer.raw_states()

        # Persistent enabled cache: vertex -> (view, enabled rules), present
        # only for enabled vertices.  Seeded by one full evaluation.  Bound
        # is_enabled methods are hoisted (not raw guard callables) so Rule
        # subclasses overriding is_enabled keep their semantics.
        guards = [(rule, rule.is_enabled) for rule in rules]
        prepared: Dict[VertexId, Tuple[LocalView, List[Rule]]] = {}
        for vertex in self._vertices:
            view = LocalView._from_trusted_parts(
                vertex, states[vertex], {u: states[u] for u in neighbors[vertex]}, graph
            )
            enabled_rules = [rule for rule, is_enabled in guards if is_enabled(view)]
            if enabled_rules:
                prepared[vertex] = (view, enabled_rules)

        light = trace == "light"
        live_view = buffer.view() if light else None
        configurations: List[Configuration] = [initial]
        selections: List[FrozenSet[VertexId]] = []
        activations: List[Sequence[ActivationRecord]] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        truncated = True

        current: Configuration = initial
        enabled: Optional[FrozenSet[VertexId]] = None  # reused until membership changes
        for index in range(max_steps + 1):
            if enabled is None:
                enabled = frozenset(prepared)
            enabled_sets.append(enabled)
            observed = live_view if light else current
            if stop_when is not None and stop_when(observed, index):
                truncated = True
                break
            if not enabled:
                truncated = False
                break
            if index == max_steps:
                truncated = True
                break
            selection = daemon.checked_select(enabled, observed, index, rng)

            # Fire the cached enabled rules of the selected vertices.
            records: List[ActivationRecord] = []
            changes: Dict[VertexId, VertexStateLike] = {}
            for vertex in selection:
                entry = prepared.get(vertex)
                if entry is None:  # pragma: no cover - checked_select forbids it
                    continue
                view, enabled_rules = entry
                # choose_rule is an overridable hook: hand it a copy so an
                # override mutating the sequence cannot corrupt the cache.
                rule = protocol.choose_rule(list(enabled_rules), view)
                new_state = rule.apply(view)
                protocol.validate_state(vertex, new_state)
                old_state = states[vertex]
                records.append(
                    ActivationRecord(
                        vertex=vertex,
                        rule_name=rule.name,
                        old_state=old_state,
                        new_state=new_state,
                    )
                )
                if new_state != old_state:
                    changes[vertex] = new_state

            # O(Δ) in-place update + dirty-set cache refresh: only the
            # changed vertices and their neighbours can change enabledness.
            if changes:
                buffer.apply_changes(changes)
                dirty: Set[VertexId] = set(changes)
                for vertex in changes:
                    dirty.update(neighbors[vertex])
                for vertex in dirty:
                    view = LocalView._from_trusted_parts(
                        vertex,
                        states[vertex],
                        {u: states[u] for u in neighbors[vertex]},
                        graph,
                    )
                    enabled_rules = [
                        rule for rule, is_enabled in guards if is_enabled(view)
                    ]
                    if enabled_rules:
                        if vertex not in prepared:
                            enabled = None
                        prepared[vertex] = (view, enabled_rules)
                    elif prepared.pop(vertex, None) is not None:
                        enabled = None

            selections.append(selection)
            activations.append(records)
            if not light:
                current = buffer.snapshot() if changes else current
                configurations.append(current)

        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
            )
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )
