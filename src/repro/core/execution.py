"""Execution traces.

An execution (Section 2) is a sequence of actions
``(γ0, γ1)(γ1, γ2)...``; we record the full sequence of configurations
together with, for each action, the set of vertices the daemon selected,
the rules they fired, and the set of vertices that were enabled — enough to
replay, measure stabilization times in steps *and* rounds, and compute the
restrictions used by the lower-bound argument (Definition 8).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import SimulationError
from ..types import VertexId, VertexStateLike
from .protocol import ActivationRecord
from .state import Configuration

__all__ = ["DeltaLog", "Execution", "LazyActivations", "LazyConfigurationTrace"]


class DeltaLog(Sequence):
    """Marker base for *lazily computed* per-action delta sequences.

    :class:`LazyConfigurationTrace` normally copies the delta sequence it is
    handed into a tuple (defensive against mutation).  A producer whose
    deltas are themselves reconstructed on demand — the superstep path of
    :class:`repro.core.vector.VectorEngine` replays them from periodic
    state-array checkpoints — subclasses this marker so the trace keeps the
    log as-is instead of materializing every delta dict up front.

    Subclasses must implement ``__len__`` and integer ``__getitem__``
    returning the ``{vertex: new_state}`` dict of the given action, must be
    effectively immutable, and should make *sequential* access O(1)
    amortized (``LazyConfigurationTrace.iter_from`` walks indices in
    order).
    """

    __slots__ = ()


class LazyActivations(Sequence):
    """Per-action :class:`ActivationRecord` tuples, materialized on access.

    The incremental engine's light-trace mode records each firing as a raw
    ``(vertex, rule_name, old_state, new_state)`` tuple — building a record
    *object* per firing costs more than the rest of the firing combined —
    and wraps the per-action lists in this sequence.  Record tuples are
    built per action when that action's records are requested, so sweeps
    that never inspect activations never pay for them.

    Unlike lazily reconstructed *configurations* (where a replay chain
    makes caching necessary), rebuilding one action's records is O(firings
    of that action), so only the most recently accessed action is cached:
    memory stays O(1) even when every action of a long trace is visited.
    Aggregates (:meth:`moves`, :meth:`rule_counts`,
    :meth:`activated_vertices`) read the raw log directly and never
    materialize a record.
    """

    __slots__ = ("_raw", "_cached_index", "_cached_records")

    def __init__(self, raw: Sequence[Sequence[tuple]]) -> None:
        self._raw = raw
        self._cached_index = -1
        self._cached_records: Tuple[ActivationRecord, ...] = ()

    def __len__(self) -> int:
        return len(self._raw)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"action index {index} out of range")
        if index != self._cached_index:
            self._cached_records = tuple(
                ActivationRecord(*raw) for raw in self._raw[index]
            )
            self._cached_index = index
        return self._cached_records

    # -- record-free aggregates -------------------------------------------
    def activated_vertices(self, index: int) -> Set[VertexId]:
        """The vertices that fired during action ``index`` (no records)."""
        return {raw[0] for raw in self._raw[index]}

    def moves(self) -> int:
        """Total number of firings across every action (no records)."""
        return sum(len(raws) for raws in self._raw)

    def rule_counts(self) -> Dict[str, int]:
        """Firings per rule name across every action (no records)."""
        counts: Dict[str, int] = {}
        for raws in self._raw:
            for raw in raws:
                name = raw[1]
                counts[name] = counts.get(name, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LazyActivations(actions={len(self._raw)})"


class LazyConfigurationTrace(Sequence[Configuration]):
    """``γ0 .. γ_steps`` stored as ``γ0`` plus per-action state deltas.

    Light-trace executions record only the activations; configurations are
    reconstructed on access by replaying the deltas from the nearest cached
    predecessor.  Directly requested indices are cached (repeated access is
    O(1)), and replays drop periodic checkpoints so later random accesses
    stay cheap — but a full sequential walk (iteration, ``restriction``)
    retains only O(steps / stride) snapshots, keeping light mode's memory
    below a full trace even after the trace has been walked.

    Slicing (including ``Execution.prefix``/``suffix``/``configurations``)
    returns plain lists and therefore materializes every configuration in
    the requested range — use indexed access or iteration when memory
    matters.
    """

    __slots__ = ("_deltas", "_cache")

    #: Every ``_CHECKPOINT_STRIDE``-th configuration materialized during a
    #: replay is retained, bounding both replay length and cache growth.
    _CHECKPOINT_STRIDE = 32

    def __init__(
        self,
        initial: Configuration,
        deltas: Sequence[Dict[VertexId, VertexStateLike]],
    ) -> None:
        # Lazy delta logs stay as-is: tuple-izing one would force every
        # delta to be reconstructed up front, defeating its purpose.
        self._deltas: Sequence[Dict[VertexId, VertexStateLike]] = (
            deltas if isinstance(deltas, DeltaLog) else tuple(deltas)
        )
        self._cache: Dict[int, Configuration] = {0: initial}

    @classmethod
    def from_activations(
        cls,
        initial: Configuration,
        activations: Sequence[Sequence[ActivationRecord]],
        deltas: Optional[Sequence[Dict[VertexId, VertexStateLike]]] = None,
    ) -> "LazyConfigurationTrace":
        """Build the trace from the activation records of each action.

        ``deltas`` lets a producer that already tracked the per-action state
        changes (the incremental engine does) hand them over directly
        instead of having them re-derived from the records; when given, they
        must list, for every action, exactly the vertices whose state
        changed during it.
        """
        if deltas is None:
            deltas = [
                {record.vertex: record.new_state for record in records if record.changed}
                for records in activations
            ]
        return cls(initial, deltas)

    def __len__(self) -> int:
        return len(self._deltas) + 1

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"configuration index {index} out of range")
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        start = index
        while start not in self._cache:
            start -= 1
        states = self._cache[start].as_dict()
        for action in range(start, index):
            states.update(self._deltas[action])
            position = action + 1
            if position < index and position % self._CHECKPOINT_STRIDE == 0:
                self._cache[position] = Configuration._from_trusted_dict(dict(states))
        result = Configuration._from_trusted_dict(states)
        self._cache[index] = result
        return result

    def __iter__(self) -> Iterator[Configuration]:
        return self.iter_from(0)

    def iter_from(self, start: int = 0) -> Iterator[Configuration]:
        """Iterate ``γ_start .. γ_end`` sequentially with bounded retention.

        Unlike repeated ``[index]`` access (which caches every directly
        requested configuration), a sequential walk through this iterator
        retains only the periodic checkpoints — O(steps / stride) snapshots
        no matter how much of the trace is visited.  Full-trace analyses
        (safety scans, liveness windows) must use this, not per-index
        access, to preserve light mode's memory bound.
        """
        if start < 0:
            start += len(self)
        if not 0 <= start < len(self):
            raise IndexError(f"configuration index {start} out of range")
        # Replay silently from the nearest cached predecessor of ``start``.
        base = start
        while base not in self._cache:
            base -= 1
        states: Optional[Dict[VertexId, VertexStateLike]] = None
        for index in range(base, len(self)):
            cached = self._cache.get(index)
            if cached is not None:
                states = None  # resume replaying from this snapshot
                configuration = cached
            else:
                if states is None:
                    # The previous index is always available: ``base`` is
                    # cached, and an uncached index follows either a cached
                    # one or a replayed one.
                    states = self._cache[index - 1].as_dict()
                states.update(self._deltas[index - 1])
                configuration = Configuration._from_trusted_dict(dict(states))
                if index % self._CHECKPOINT_STRIDE == 0:
                    self._cache[index] = configuration
            if index >= start:
                yield configuration

    @property
    def materialized_count(self) -> int:
        """How many configurations are currently cached (diagnostics and
        the light-trace memory-bound regression test)."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LazyConfigurationTrace(length={len(self)}, "
            f"materialized={len(self._cache)})"
        )


class Execution:
    """An (always finite, possibly truncated) execution trace.

    Attributes
    ----------
    configurations:
        ``steps + 1`` configurations ``γ0 .. γ_steps``.
    selections:
        For each action ``i``, the set of vertices the daemon activated
        during ``(γi, γ{i+1})``.
    activations:
        For each action, the :class:`ActivationRecord` of every activated
        vertex that was actually enabled.
    enabled_sets:
        For each configuration ``γi`` (``i < steps`` always, plus the final
        configuration when known), the set of enabled vertices.
    truncated:
        True when the run stopped because the step budget was exhausted
        rather than because a terminal configuration was reached.
    """

    __slots__ = ("_configurations", "_selections", "_activations", "_enabled_sets", "truncated")

    def __init__(
        self,
        configurations: Sequence[Configuration],
        selections: Sequence[FrozenSet[VertexId]],
        activations: Sequence[Sequence[ActivationRecord]],
        enabled_sets: Sequence[FrozenSet[VertexId]],
        truncated: bool,
    ) -> None:
        if not configurations:
            raise SimulationError("an execution needs at least one configuration")
        if len(selections) != len(configurations) - 1:
            raise SimulationError("need exactly one selection per action")
        if len(activations) != len(selections):
            raise SimulationError("need exactly one activation list per action")
        # Lazy traces are kept as-is so configurations materialize on demand.
        self._configurations: Sequence[Configuration] = (
            configurations
            if isinstance(configurations, LazyConfigurationTrace)
            else list(configurations)
        )
        self._selections: List[FrozenSet[VertexId]] = [frozenset(s) for s in selections]
        # Lazy activation logs are kept as-is so records materialize on
        # demand (mirroring the lazy configuration trace).
        self._activations: Sequence[Tuple[ActivationRecord, ...]] = (
            activations
            if isinstance(activations, LazyActivations)
            else [tuple(a) for a in activations]
        )
        self._enabled_sets: List[FrozenSet[VertexId]] = [frozenset(s) for s in enabled_sets]
        self.truncated = truncated

    @classmethod
    def from_activations(
        cls,
        initial: Configuration,
        selections: Sequence[FrozenSet[VertexId]],
        activations: Sequence[Sequence[ActivationRecord]],
        enabled_sets: Sequence[FrozenSet[VertexId]],
        truncated: bool,
        deltas: Optional[Sequence[Dict[VertexId, VertexStateLike]]] = None,
    ) -> "Execution":
        """A light-trace execution: configurations reconstructed on demand.

        Stores ``γ0`` plus the per-action activation deltas instead of every
        configuration; see :class:`LazyConfigurationTrace` (and its
        ``from_activations`` for the optional pre-tracked ``deltas``).
        """
        return cls(
            configurations=LazyConfigurationTrace.from_activations(
                initial, activations, deltas
            ),
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def configurations(self) -> Sequence[Configuration]:
        """``γ0 .. γ_steps``."""
        return tuple(self._configurations)

    @property
    def steps(self) -> int:
        """Number of actions in the execution."""
        return len(self._selections)

    @property
    def initial(self) -> Configuration:
        """``γ0``."""
        return self._configurations[0]

    @property
    def final(self) -> Configuration:
        """The last configuration of the (finite) trace."""
        return self._configurations[-1]

    @property
    def is_terminal(self) -> bool:
        """Whether the trace ended in a terminal configuration."""
        return not self.truncated

    def configuration(self, index: int) -> Configuration:
        """``γ_index``.

        On light traces every directly requested index is cached; scans that
        touch a whole range must use :meth:`iter_configurations` instead,
        which retains only O(steps/stride) checkpoints.
        """
        try:
            return self._configurations[index]
        except IndexError:
            raise SimulationError(
                f"configuration index {index} out of range (0..{self.steps})"
            ) from None

    def iter_configurations(self, start: int = 0) -> Iterator[Configuration]:
        """Iterate ``γ_start .. γ_steps`` sequentially.

        This is the memory-safe way to walk a trace: on a light
        (:class:`LazyConfigurationTrace`) execution it replays deltas with
        bounded checkpoint retention instead of caching every visited
        configuration the way per-index :meth:`configuration` access does.
        All the trace-walking analyses in the library (safety scans,
        stabilization indices, liveness windows) go through it.
        """
        if not 0 <= start <= self.steps:
            raise SimulationError(
                f"configuration index {start} out of range (0..{self.steps})"
            )
        configurations = self._configurations
        if isinstance(configurations, LazyConfigurationTrace):
            return configurations.iter_from(start)
        return itertools.islice(iter(configurations), start, None)

    def selection(self, index: int) -> FrozenSet[VertexId]:
        """Vertices activated during action ``(γ_index, γ_{index+1})``."""
        try:
            return self._selections[index]
        except IndexError:
            raise SimulationError(f"action index {index} out of range (0..{self.steps - 1})") from None

    def activation_records(self, index: int) -> Tuple[ActivationRecord, ...]:
        """Activation records of action ``index``."""
        try:
            return self._activations[index]
        except IndexError:
            raise SimulationError(f"action index {index} out of range (0..{self.steps - 1})") from None

    def enabled_at(self, index: int) -> FrozenSet[VertexId]:
        """The enabled vertices in ``γ_index`` (recorded during the run)."""
        try:
            return self._enabled_sets[index]
        except IndexError:
            raise SimulationError(f"no enabled set recorded for index {index}") from None

    # ------------------------------------------------------------------ #
    # Derived views (Definition 8 and friends)
    # ------------------------------------------------------------------ #
    def prefix(self, length: int) -> "Execution":
        """The prefix ``e_length`` of the execution (``length`` actions)."""
        if not 0 <= length <= self.steps:
            raise SimulationError(f"prefix length {length} out of range (0..{self.steps})")
        return Execution(
            configurations=self._configurations[: length + 1],
            selections=self._selections[:length],
            activations=self._activations[:length],
            enabled_sets=self._enabled_sets[: length + 1]
            if len(self._enabled_sets) > length
            else self._enabled_sets[:length],
            truncated=True if length < self.steps else self.truncated,
        )

    def suffix(self, start: int) -> "Execution":
        """The suffix starting at configuration ``γ_start``."""
        if not 0 <= start <= self.steps:
            raise SimulationError(f"suffix start {start} out of range (0..{self.steps})")
        return Execution(
            configurations=self._configurations[start:],
            selections=self._selections[start:],
            activations=self._activations[start:],
            enabled_sets=self._enabled_sets[start:],
            truncated=self.truncated,
        )

    def restriction(self, vertex: VertexId) -> List[VertexStateLike]:
        """The restriction ``e_v`` of Definition 8: the sequence of local
        states of ``vertex`` along the execution."""
        return [configuration[vertex] for configuration in self._configurations]

    def activated_steps(self, vertex: VertexId) -> List[int]:
        """Indices of the actions during which ``vertex`` fired a rule."""
        return [
            i for i in range(self.steps) if vertex in self._activated_vertices(i)
        ]

    def rule_counts(self) -> Dict[str, int]:
        """How many times each rule fired over the whole execution."""
        activations = self._activations
        if isinstance(activations, LazyActivations):
            return activations.rule_counts()
        counts: Dict[str, int] = {}
        for records in activations:
            for record in records:
                counts[record.rule_name] = counts.get(record.rule_name, 0) + 1
        return counts

    def moves(self) -> int:
        """Total number of individual rule firings (moves)."""
        activations = self._activations
        if isinstance(activations, LazyActivations):
            return activations.moves()
        return sum(len(records) for records in activations)

    def _activated_vertices(self, index: int) -> Set[VertexId]:
        """Vertices that fired during action ``index``, without forcing
        record materialization on a lazy activation log."""
        activations = self._activations
        if isinstance(activations, LazyActivations):
            return activations.activated_vertices(index)
        return {record.vertex for record in activations[index]}

    def count_rounds(self) -> int:
        """Number of complete *rounds* in the trace.

        A round starting at configuration ``γ_s`` ends at the first
        configuration ``γ_t`` (``t > s``) such that every vertex enabled in
        ``γ_s`` has, at some point in ``γ_s .. γ_t``, either been activated
        or become disabled.  Rounds are the usual coarse-grained time unit
        for asynchronous executions.
        """
        if self.steps == 0:
            return 0
        rounds = 0
        start = 0
        while start < self.steps:
            pending = set(self._enabled_sets[start]) if start < len(self._enabled_sets) else set()
            if not pending:
                break
            index = start
            while pending and index < self.steps:
                pending -= self._activated_vertices(index)
                next_enabled = (
                    self._enabled_sets[index + 1]
                    if index + 1 < len(self._enabled_sets)
                    else frozenset()
                )
                pending &= set(next_enabled)
                index += 1
            if pending:
                # The trace ended before the round completed.
                break
            rounds += 1
            start = index
        return rounds

    def __len__(self) -> int:
        return self.steps

    def __repr__(self) -> str:
        status = "terminal" if self.is_terminal else "truncated"
        return f"Execution(steps={self.steps}, {status})"
