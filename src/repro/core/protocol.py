"""The distributed-protocol abstraction.

A distributed protocol (Section 2) is, for each vertex, a set of guarded
rules.  Concrete protocols (unison, SSME, Dijkstra's token ring, the BFS
tree, the matching) subclass :class:`Protocol` and provide their rules, a
random-state sampler (used to draw arbitrary initial configurations, i.e.
post-transient-fault states), and optionally a privilege predicate for
mutual-exclusion-style specifications.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ProtocolError
from ..graphs import Graph
from ..types import VertexId, VertexStateLike
from .rules import LocalView, Rule
from .state import Configuration

__all__ = ["Protocol", "PrivilegeAware", "ActivationRecord"]


class ActivationRecord:
    """What happened to one vertex during one action of the execution."""

    __slots__ = ("vertex", "rule_name", "old_state", "new_state")

    def __init__(
        self,
        vertex: VertexId,
        rule_name: str,
        old_state: VertexStateLike,
        new_state: VertexStateLike,
    ) -> None:
        self.vertex = vertex
        self.rule_name = rule_name
        self.old_state = old_state
        self.new_state = new_state

    @property
    def changed(self) -> bool:
        """Whether the activation actually modified the state."""
        return self.old_state != self.new_state

    def __repr__(self) -> str:
        return (
            f"ActivationRecord(vertex={self.vertex!r}, rule={self.rule_name!r}, "
            f"{self.old_state!r} -> {self.new_state!r})"
        )


#: Methods forming the enabledness chain; fast paths may replace them only
#: when a subclass overrides none of them.
_ENABLEDNESS_METHODS = ("is_enabled", "enabled_rules", "evaluate", "local_view")

#: Additional transition methods the incremental engine replaces.
_TRANSITION_METHODS = ("apply", "enabled_vertices", "prepared_step")


class Protocol(ABC):
    """Base class of every distributed protocol in the library.

    Subclasses must implement :meth:`rules` and :meth:`random_state`; they
    may override :meth:`validate_state` to reject malformed states and
    :meth:`choose_rule` if several rules can be enabled simultaneously at a
    vertex (none of the protocols of the paper needs that).
    """

    #: Human-readable protocol name, overridden by subclasses.
    name: str = "protocol"

    #: Subclasses may set this to True to declare that every rule action,
    #: evaluated on a view whose states are all legal, produces a legal
    #: state (``validate_state`` can never raise on an action's output).
    #: Engines may then skip the per-firing re-validation on their hot
    #: paths; external inputs (``configuration``/``validate_state`` callers)
    #: are still validated.  Leave False unless the closure property
    #: actually holds for every rule.
    actions_preserve_validity: bool = False

    #: Whether the protocol is *anonymous*: its rules read only local state
    #: and the neighbour state multiset, never vertex identities, so every
    #: graph automorphism maps executions to executions.  Required (together
    #: with the specification-side flag) for the exact checker's symmetry
    #: quotient (:class:`repro.verify.SymmetryReducer`).  Leave False unless
    #: the equivariance property actually holds for every rule — identity-
    #: dependent protocols (SSME's privileged values, BFS roots, matching
    #: identities) must keep it False even when a symmetric superclass sets
    #: it True.
    vertex_symmetric: bool = False

    def has_stock_enabledness(self) -> bool:
        """Whether this protocol keeps the base-class enabledness chain.

        Fast paths (the rules-hoisted :meth:`enabled_vertices` scan, the
        adversarial daemon's lookahead) may bypass
        :meth:`is_enabled`/:meth:`enabled_rules`/:meth:`evaluate`/
        :meth:`local_view` only when none of them is overridden.

        Only *class-level* overrides are detected; monkeypatching a method
        on an instance is not supported and will be bypassed by the fast
        paths — subclass instead.
        """
        cls = type(self)
        return all(
            getattr(cls, name) is getattr(Protocol, name)
            for name in _ENABLEDNESS_METHODS
        )

    def has_stock_transitions(self) -> bool:
        """Whether this protocol keeps the full base-class transition
        semantics (enabledness chain plus :meth:`apply`/
        :meth:`enabled_vertices`/:meth:`prepared_step`).

        The incremental simulation engine replaces all of these with cached
        equivalents, so it is only sound for protocols where this holds;
        :meth:`choose_rule`, :meth:`validate_state` and :meth:`rules` may be
        overridden freely — every engine calls them.
        """
        cls = type(self)
        return self.has_stock_enabledness() and all(
            getattr(cls, name) is getattr(Protocol, name)
            for name in _TRANSITION_METHODS
        )

    def __init__(self, graph: Graph) -> None:
        if graph.n == 0:
            raise ProtocolError("protocols require a non-empty communication graph")
        if not graph.is_connected():
            raise ProtocolError(f"{type(self).__name__} requires a connected communication graph")
        self._graph = graph

    # ------------------------------------------------------------------ #
    # Abstract interface
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The communication graph the protocol runs on."""
        return self._graph

    @abstractmethod
    def rules(self) -> Sequence[Rule]:
        """The guarded rules of the local protocol (same for every vertex)."""

    @abstractmethod
    def random_state(self, vertex: VertexId, rng: random.Random) -> VertexStateLike:
        """Sample an arbitrary (possibly corrupted) state for ``vertex``.

        Drawing every vertex's state through this method produces an
        arbitrary initial configuration, which is how transient faults are
        modelled in self-stabilization.
        """

    # ------------------------------------------------------------------ #
    # Optional hooks
    # ------------------------------------------------------------------ #
    def validate_state(self, vertex: VertexId, state: VertexStateLike) -> None:
        """Raise :class:`ProtocolError` if ``state`` is not a legal local
        state for ``vertex``.  The default accepts everything."""

    def choose_rule(self, enabled_rules: Sequence[Rule], view: LocalView) -> Rule:
        """Pick which enabled rule the vertex executes when activated.

        All protocols in this library have mutually exclusive guards, so the
        default (first enabled rule, in :meth:`rules` order) never has to
        arbitrate; it exists as an explicit extension point.
        """
        return enabled_rules[0]

    def default_state(self, vertex: VertexId) -> VertexStateLike:
        """A canonical 'clean' state, used by workload generators that want
        a well-defined non-random starting point.  Defaults to sampling with
        a fixed seed."""
        return self.random_state(vertex, random.Random(0))

    # ------------------------------------------------------------------ #
    # Finite-state capability (the exact model checker)
    # ------------------------------------------------------------------ #
    def vertex_state_space(self, vertex: VertexId) -> Optional[Sequence[VertexStateLike]]:
        """The finite, ordered set of legal local states of ``vertex``, or None.

        Protocols whose per-vertex state ranges over a small finite domain
        (the bounded clock of unison/SSME, Dijkstra's counter) may return
        that domain here to unlock the exact explicit-state model checker
        (:mod:`repro.verify`): the product of the per-vertex domains is the
        configuration space the checker enumerates and packs into integer
        keys.  The sequence must contain every state accepted by
        :meth:`validate_state` for ``vertex`` (so every rule action stays
        inside it), list each state exactly once, and use a deterministic
        order — the order defines the packing.  The default — None —
        declares the domain unknown/unbounded and keeps the protocol on the
        sampling-based analyses only.
        """
        return None

    # ------------------------------------------------------------------ #
    # Array-state capability (the vectorized engine backend)
    # ------------------------------------------------------------------ #
    def array_codec(self):
        """The protocol's :class:`~repro.core.vector.ArrayCodec`, or None.

        Protocols whose per-vertex state is a fixed small tuple of machine
        integers may return a codec here (together with
        :meth:`array_kernel`) to unlock the NumPy-vectorized engine backend
        for the dense-daemon regime.  The default — no capability — keeps
        the protocol on the dict-based engines; NumPy remains an optional
        dependency either way.
        """
        return None

    def array_kernel(self):
        """The protocol's :class:`~repro.core.vector.ArrayKernel`, or None.

        Must encode *exactly* the stock transition semantics over the
        :meth:`array_codec` representation (first-enabled-rule arbitration
        included); see :func:`repro.core.vector.protocol_supports_vector`
        for the full eligibility contract.  Implementations may assume
        NumPy is importable — the capability is only queried after that
        check — but must return None themselves when it is not, so direct
        callers degrade cleanly too.
        """
        return None

    # ------------------------------------------------------------------ #
    # Configurations
    # ------------------------------------------------------------------ #
    def configuration(self, assignment: Mapping[VertexId, VertexStateLike]) -> Configuration:
        """Build and validate a configuration from ``assignment``."""
        missing = [v for v in self._graph.vertices if v not in assignment]
        if missing:
            raise ProtocolError(f"assignment misses vertices: {missing!r}")
        extra = [v for v in assignment if v not in self._graph]
        if extra:
            raise ProtocolError(f"assignment has unknown vertices: {extra!r}")
        for vertex, state in assignment.items():
            self.validate_state(vertex, state)
        return Configuration(assignment)

    def random_configuration(self, rng: random.Random) -> Configuration:
        """An arbitrary configuration: every state drawn by :meth:`random_state`."""
        return Configuration(
            {v: self.random_state(v, rng) for v in self._graph.vertices}
        )

    def default_configuration(self) -> Configuration:
        """The configuration assigning :meth:`default_state` everywhere."""
        return Configuration({v: self.default_state(v) for v in self._graph.vertices})

    # ------------------------------------------------------------------ #
    # Enabledness and transitions
    # ------------------------------------------------------------------ #
    def local_view(self, configuration: Configuration, vertex: VertexId) -> LocalView:
        """The local view of ``vertex`` in ``configuration``."""
        return LocalView.from_configuration(configuration, vertex, self._graph)

    def evaluate(
        self,
        configuration: Configuration,
        vertex: VertexId,
        rules: Optional[Sequence[Rule]] = None,
    ) -> Tuple[LocalView, List[Rule]]:
        """Evaluate every guard of ``vertex`` once: ``(view, enabled_rules)``.

        ``rules`` lets callers hoist the :meth:`rules` lookup out of
        per-vertex loops; the returned view can be reused to fire one of the
        enabled rules, so guards are evaluated exactly once per vertex per
        step (see :meth:`prepared_step` / :meth:`apply`).
        """
        view = self.local_view(configuration, vertex)
        if rules is None:
            rules = self.rules()
        return view, [rule for rule in rules if rule.is_enabled(view)]

    def enabled_rules(self, configuration: Configuration, vertex: VertexId) -> List[Rule]:
        """The rules of ``vertex`` whose guard holds in ``configuration``."""
        return self.evaluate(configuration, vertex)[1]

    def is_enabled(self, configuration: Configuration, vertex: VertexId) -> bool:
        """Whether ``vertex`` is enabled in ``configuration``."""
        return bool(self.enabled_rules(configuration, vertex))

    def enabled_vertices(self, configuration: Configuration) -> FrozenSet[VertexId]:
        """The set of enabled vertices in ``configuration``."""
        if self.has_stock_enabledness():
            # Fast path: hoist the rules lookup and build one view per
            # vertex instead of re-resolving both per vertex per rule.
            rules = self.rules()
            graph = self._graph
            enabled = []
            for v in graph.vertices:
                view = LocalView.from_configuration(configuration, v, graph)
                if any(rule.is_enabled(view) for rule in rules):
                    enabled.append(v)
            return frozenset(enabled)
        # A subclass customized the enabledness chain — honour it.
        return frozenset(
            v for v in self._graph.vertices if self.is_enabled(configuration, v)
        )

    def prepared_step(
        self, configuration: Configuration
    ) -> Tuple[FrozenSet[VertexId], Dict[VertexId, Tuple[LocalView, List[Rule]]]]:
        """Evaluate every vertex once: ``(enabled set, prepared evaluations)``.

        ``prepared`` maps each *enabled* vertex to the ``(view, enabled
        rules)`` pair produced by :meth:`evaluate`; passing it to
        :meth:`apply` reuses those evaluations instead of re-running every
        guard, so each step evaluates guards once per vertex.
        """
        rules = self.rules()
        prepared: Dict[VertexId, Tuple[LocalView, List[Rule]]] = {}
        for vertex in self._graph.vertices:
            view, enabled_rules = self.evaluate(configuration, vertex, rules)
            if enabled_rules:
                prepared[vertex] = (view, enabled_rules)
        return frozenset(prepared), prepared

    def apply(
        self,
        configuration: Configuration,
        selected: Iterable[VertexId],
        prepared: Optional[Dict[VertexId, Tuple[LocalView, List[Rule]]]] = None,
    ) -> Tuple[Configuration, List[ActivationRecord]]:
        """Execute one action: activate every vertex in ``selected``.

        Each selected vertex evaluates its rules against the *current*
        configuration (atomic snapshot of its neighbours) and rewrites its
        own state; all rewrites are applied simultaneously, which is exactly
        the semantics of the state model under an arbitrary daemon.

        Selected vertices that turn out to be disabled are ignored (the
        daemon abstraction already prevents this; tolerating it makes the
        method convenient for exploratory use).

        ``prepared`` (from :meth:`prepared_step` on the *same*
        configuration) short-circuits guard evaluation: selected vertices
        absent from it are treated as disabled, present ones reuse the
        stored view and enabled rules.
        """
        changes: Dict[VertexId, VertexStateLike] = {}
        records: List[ActivationRecord] = []
        rules: Optional[Sequence[Rule]] = None
        for vertex in selected:
            if vertex not in self._graph:
                raise ProtocolError(f"cannot activate unknown vertex {vertex!r}")
            if prepared is not None:
                entry = prepared.get(vertex)
                if entry is None:
                    continue
                view, enabled = entry
            else:
                if rules is None:
                    rules = self.rules()
                view, enabled = self.evaluate(configuration, vertex, rules)
                if not enabled:
                    continue
            rule = self.choose_rule(enabled, view)
            new_state = rule.apply(view)
            self.validate_state(vertex, new_state)
            changes[vertex] = new_state
            records.append(
                ActivationRecord(
                    vertex=vertex,
                    rule_name=rule.name,
                    old_state=configuration[vertex],
                    new_state=new_state,
                )
            )
        if not changes:
            return configuration, records
        return configuration.updated(changes), records

    def is_terminal(self, configuration: Configuration) -> bool:
        """Whether no vertex is enabled in ``configuration``."""
        return not self.enabled_vertices(configuration)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self._graph!r})"


class PrivilegeAware(ABC):
    """Mixin for protocols that define a ``privileged`` predicate.

    Mutual-exclusion-style specifications (``spec_ME``) are expressed in
    terms of this predicate (Section 4): a vertex that is privileged in a
    configuration and activated during the next action executes its critical
    section during that action.
    """

    @abstractmethod
    def is_privileged(self, configuration: Configuration, vertex: VertexId) -> bool:
        """Whether ``vertex`` is privileged in ``configuration``."""

    def privileged_vertices(self, configuration: Configuration) -> FrozenSet[VertexId]:
        """All privileged vertices of ``configuration``."""
        graph: Graph = getattr(self, "graph")
        return frozenset(
            v for v in graph.vertices if self.is_privileged(configuration, v)
        )

    def privileged_rows(self, rows, order):
        """Optional batch capability: the ``(m, n)`` boolean privilege matrix
        of an ``(m, n, width)`` array of codec-encoded configurations, with
        columns aligned to the vertex tuple ``order``.

        Must agree entry-for-entry with :meth:`is_privileged` on the decoded
        configurations — the exact checker's batched safety evaluation
        (``spec_ME``) builds on it.  The base implementation returns
        ``None``, meaning "unsupported": callers then decode and evaluate
        per configuration.
        """
        del rows, order
        return None
