"""Guarded rules and the local view they are evaluated against.

The paper describes protocols in Dijkstra's guarded-command style
(Section 2): each vertex runs a local protocol made of rules

    <label> :: <guard> --> <action>

where the guard is a predicate over the vertex's own variables and those of
its neighbours, and the action rewrites the vertex's own variables.  The
:class:`LocalView` type is the *only* information a guard or an action may
read, which enforces the locality restriction of the model ("each process
can only update its state based on locally available information").
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence

from ..exceptions import ProtocolError
from ..graphs import Graph
from ..types import VertexId, VertexStateLike
from .state import Configuration

__all__ = ["LocalView", "Rule", "make_rule"]


class LocalView:
    """What a vertex can see when evaluating its guarded rules.

    Attributes
    ----------
    vertex:
        The vertex evaluating its rules.
    state:
        Its current local state.
    neighbor_states:
        Mapping from each neighbour to that neighbour's current state.
    graph:
        The communication graph (for degree / identity queries only; rules
        must not peek at non-neighbour states, and the view gives them no
        way to).
    """

    __slots__ = ("vertex", "state", "neighbor_states", "graph")

    def __init__(
        self,
        vertex: VertexId,
        state: VertexStateLike,
        neighbor_states: Mapping[VertexId, VertexStateLike],
        graph: Graph,
    ) -> None:
        self.vertex = vertex
        self.state = state
        self.neighbor_states: Dict[VertexId, VertexStateLike] = dict(neighbor_states)
        self.graph = graph

    @classmethod
    def _from_trusted_parts(
        cls,
        vertex: VertexId,
        state: VertexStateLike,
        neighbor_states: Dict[VertexId, VertexStateLike],
        graph: Graph,
    ) -> "LocalView":
        """Adopt ``neighbor_states`` without copying.

        The caller transfers ownership of the dict and must not mutate it
        afterwards.  The simulation hot paths build a fresh dict per view,
        and the public constructor's defensive re-copy doubled the cost of
        every view construction.
        """
        view = cls.__new__(cls)
        view.vertex = vertex
        view.state = state
        view.neighbor_states = neighbor_states
        view.graph = graph
        return view

    @classmethod
    def from_configuration(
        cls, configuration: Configuration, vertex: VertexId, graph: Graph
    ) -> "LocalView":
        """Build the view of ``vertex`` in ``configuration``."""
        neighbors = graph.neighbors(vertex)
        return cls._from_trusted_parts(
            vertex,
            configuration[vertex],
            {u: configuration[u] for u in neighbors},
            graph,
        )

    @property
    def neighbors(self) -> FrozenSet[VertexId]:
        """The neighbours of the vertex."""
        return frozenset(self.neighbor_states)

    def neighbor_values(self) -> Sequence[VertexStateLike]:
        """The neighbour states, in a deterministic (repr-sorted) order."""
        return [self.neighbor_states[u] for u in sorted(self.neighbor_states, key=repr)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LocalView(vertex={self.vertex!r}, state={self.state!r}, "
            f"neighbors={sorted(self.neighbor_states, key=repr)!r})"
        )


class Rule:
    """A guarded rule ``label :: guard --> action``.

    ``guard`` maps a :class:`LocalView` to a boolean; ``action`` maps a
    :class:`LocalView` to the vertex's *new* local state.  Actions must be
    pure functions of the view.
    """

    __slots__ = ("name", "guard", "action")

    def __init__(
        self,
        name: str,
        guard: Callable[[LocalView], bool],
        action: Callable[[LocalView], VertexStateLike],
    ) -> None:
        if not name:
            raise ProtocolError("rules must have a non-empty name")
        self.name = name
        self.guard = guard
        self.action = action

    def is_enabled(self, view: LocalView) -> bool:
        """Evaluate the guard on ``view``."""
        return bool(self.guard(view))

    def apply(self, view: LocalView) -> VertexStateLike:
        """Evaluate the action on ``view`` and return the new state."""
        return self.action(view)

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"


def make_rule(
    name: str,
    guard: Callable[[LocalView], bool],
    action: Callable[[LocalView], VertexStateLike],
) -> Rule:
    """Small convenience constructor mirroring the paper's rule syntax."""
    return Rule(name=name, guard=guard, action=action)
