"""The discrete-event simulator: protocol + daemon -> executions.

The simulator realizes the operational model of Section 2: at each
configuration it computes the enabled vertices, asks the daemon for a
non-empty subset of them, and applies the corresponding action atomically.
Runs are deterministic given the seed (and fully deterministic under the
synchronous daemon).
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, List, Optional, Sequence

from ..exceptions import SimulationError
from ..types import VertexId
from .daemons import Daemon
from .engine import (
    IncrementalEngine,
    prefers_array_backend,
    protocol_supports_incremental,
)
from .execution import Execution
from .protocol import ActivationRecord, Protocol
from .state import Configuration

__all__ = ["StepResult", "Simulator"]

#: Engine selection values accepted by :class:`Simulator`.
ENGINES = (
    "auto",
    "adaptive",
    "incremental",
    "vector",
    "vector-superstep",
    "reference",
)

#: Trace modes accepted by :class:`Simulator` (see docs/engine.md).
TRACE_MODES = ("full", "light")


class StepResult:
    """Outcome of a single simulated action."""

    __slots__ = ("configuration", "selection", "records", "enabled", "terminal")

    def __init__(
        self,
        configuration: Configuration,
        selection: FrozenSet[VertexId],
        records: Sequence[ActivationRecord],
        enabled: FrozenSet[VertexId],
        terminal: bool,
    ) -> None:
        self.configuration = configuration
        self.selection = selection
        self.records = tuple(records)
        self.enabled = enabled
        self.terminal = terminal

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StepResult(selected={sorted(self.selection, key=repr)!r}, "
            f"terminal={self.terminal})"
        )


class Simulator:
    """Runs executions of a protocol under a daemon.

    Parameters
    ----------
    protocol:
        The distributed protocol to execute.
    daemon:
        The adversary scheduling the execution.  It is bound to the
        protocol by the constructor.
    rng:
        Source of randomness for the daemon (and nothing else).  Passing a
        seeded ``random.Random`` makes runs reproducible.
    engine:
        ``"auto"`` (default) picks the fastest sound backend for the
        (protocol, daemon) pair: the NumPy-vectorized array-state kernel
        (:mod:`repro.core.vector`) when the protocol declares one, NumPy is
        importable and the daemon makes dense (or known mid-density)
        selections (:func:`~repro.core.engine.prefers_array_backend`) —
        upgraded to the batched superstep loop
        (:meth:`~repro.core.vector.VectorEngine.run_supersteps`) when the
        daemon is synchronous (:attr:`Daemon.synchronous`); the dirty-set
        incremental engine otherwise.  ``"incremental"`` forces the
        dict-based dirty-set engine of :mod:`repro.core.engine`;
        ``"vector"`` requests the single-step array-state kernel for any
        daemon; ``"vector-superstep"`` requests the batched kernel loop
        (degrading to ``"vector"`` under a non-synchronous daemon, whose
        per-step selections supersteps cannot honour).  Both array requests
        fall back to ``"incremental"`` when the capability is unavailable —
        NumPy stays optional.  ``"adaptive"`` re-decides the backend *online*
        (:class:`repro.adaptive.AdaptiveEngine`): each run starts on the
        dict paths, promotes to the array kernels when the regime detector
        reads the schedule as dense, and demotes back when sparsity returns
        — producing bit-for-bit the same executions as any fixed backend
        (without NumPy it degrades to a single dict segment).  The switch
        history of the last run is reported by :attr:`last_run_switches`.
        ``"reference"`` runs the naive full-rescan semantics and serves as
        the correctness oracle.  Protocols that override the base-class
        transition methods automatically fall back to the reference engine.
        The resolved choice is reported by :attr:`engine`.
    trace:
        ``"full"`` (default) records every configuration in the returned
        :class:`Execution`.  ``"light"`` records activations only and
        reconstructs configurations on demand — same observable trace, far
        less per-step work and memory.  Both engines honour both modes; in
        light mode the incremental engine additionally hands daemons and
        ``stop_when`` predicates a live read-only view of the current
        states instead of per-step snapshots, so they must not retain it
        across steps.

    Examples
    --------
    >>> from repro.graphs import ring_graph
    >>> from repro.mutex import SSME
    >>> from repro.core import SynchronousDaemon, Simulator
    >>> protocol = SSME(ring_graph(4))
    >>> sim = Simulator(protocol, SynchronousDaemon())
    >>> execution = sim.run(protocol.default_configuration(), max_steps=10)
    >>> execution.steps
    10
    """

    def __init__(
        self,
        protocol: Protocol,
        daemon: Daemon,
        rng: Optional[random.Random] = None,
        engine: str = "auto",
        trace: str = "full",
    ) -> None:
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
            )
        if trace not in TRACE_MODES:
            raise SimulationError(
                f"unknown trace mode {trace!r}; known: {', '.join(TRACE_MODES)}"
            )
        self._protocol = protocol
        self._daemon = daemon
        self._daemon.bind(protocol)
        self._rng = rng or random.Random(0)
        # Protocols overriding hot-path transition methods keep their custom
        # semantics: no incremental engine, and no prepared-evaluation
        # threading either (their ``apply`` may predate the ``prepared``
        # keyword and their enabledness chain must be honoured).
        self._prepared_ok = protocol_supports_incremental(protocol)
        # Backend resolution (graceful, never an error): the array-state
        # kernel needs the protocol capability *and* NumPy; "auto"
        # additionally requires the daemon to make dense selections — the
        # regime where whole-array steps beat the dirty-set paths.  The
        # probe constructs the incremental engine (which runs would build
        # anyway) so the kernel it instantiates is the one that runs.
        self._incremental: Optional[IncrementalEngine] = None
        self._adaptive = None
        if engine == "adaptive":
            if not self._prepared_ok:
                engine = "reference"
            else:
                # Imported lazily: repro.adaptive builds on this module.
                from ..adaptive.switching import AdaptiveEngine

                self._incremental = IncrementalEngine(protocol)
                self._adaptive = AdaptiveEngine(self._incremental)
        if engine in ("auto", "vector", "vector-superstep"):
            if engine == "auto" and not prefers_array_backend(daemon, protocol.graph.n):
                engine = "incremental"
            elif not self._prepared_ok:
                engine = "reference"
            else:
                self._incremental = IncrementalEngine(protocol)
                if self._incremental._vector_engine() is None:
                    engine = "incremental"
                elif engine == "vector":
                    # An explicit single-step request stays single-step
                    # (benchmarks and equivalence tests compare the paths).
                    engine = "vector"
                else:
                    # "auto" on an array-approved daemon, or an explicit
                    # superstep request: batched kernel blocks whenever the
                    # schedule is deterministic (synchronous daemon),
                    # per-step vector otherwise.
                    engine = "vector-superstep" if daemon.synchronous else "vector"
        if engine in ("incremental", "vector", "vector-superstep") and not self._prepared_ok:
            engine = "reference"
        self._engine = engine
        self._trace = trace

    @property
    def protocol(self) -> Protocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def daemon(self) -> Daemon:
        """The scheduling daemon."""
        return self._daemon

    @property
    def engine(self) -> str:
        """The resolved engine ("vector-superstep", "vector", "incremental"
        or "reference")."""
        return self._engine

    @property
    def last_run_backend(self) -> Optional[str]:
        """Which backend the most recent :meth:`run` actually used
        ("vector-superstep", "vector" or "dict"; None before any run or
        under the reference engine).  Diagnostic: the vector backend may
        decline a particular initial configuration (states outside the
        codec's integer layout) and fall back to the dict paths
        mid-selection.  Under the adaptive engine this is the backend the
        run *ended* on; :attr:`last_run_switches` has the full history."""
        if self._incremental is None:
            return None
        return self._incremental.last_run_backend

    @property
    def last_run_switches(self):
        """Backend switch history of the most recent :meth:`run` as a tuple
        of ``(step, backend)`` events — ``backend`` served the run from
        ``step`` until the next event.  A fixed-backend run reports the
        single event ``(0, backend)``; None before any run or under the
        reference engine."""
        if self._adaptive is not None:
            return self._adaptive.last_run_switches or None
        if self._incremental is None or self._incremental.last_run_backend is None:
            return None
        return ((0, self._incremental.last_run_backend),)

    @property
    def trace(self) -> str:
        """The trace mode executions are recorded with."""
        return self._trace

    # ------------------------------------------------------------------ #
    # Single step
    # ------------------------------------------------------------------ #
    def step(self, configuration: Configuration, step_index: int = 0) -> StepResult:
        """Simulate one action from ``configuration``.

        If the configuration is terminal the result has ``terminal=True``
        and echoes the configuration unchanged.
        """
        if self._prepared_ok:
            enabled, prepared = self._protocol.prepared_step(configuration)
        else:
            enabled, prepared = self._protocol.enabled_vertices(configuration), None
        if not enabled:
            return StepResult(
                configuration=configuration,
                selection=frozenset(),
                records=(),
                enabled=enabled,
                terminal=True,
            )
        selection = self._daemon.checked_select(enabled, configuration, step_index, self._rng)
        if prepared is not None:
            new_configuration, records = self._protocol.apply(
                configuration, selection, prepared=prepared
            )
        else:
            new_configuration, records = self._protocol.apply(configuration, selection)
        return StepResult(
            configuration=new_configuration,
            selection=selection,
            records=records,
            enabled=enabled,
            terminal=False,
        )

    # ------------------------------------------------------------------ #
    # Full runs
    # ------------------------------------------------------------------ #
    def run(
        self,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: Optional[str] = None,
    ) -> Execution:
        """Run up to ``max_steps`` actions starting from ``initial``.

        The run stops early when a terminal configuration is reached or when
        ``stop_when(configuration, step_index)`` returns True (the predicate
        is also evaluated on the initial configuration with index 0).

        ``trace`` overrides the simulator's trace mode for this run.
        """
        if max_steps < 0:
            raise SimulationError("max_steps must be non-negative")
        trace = trace if trace is not None else self._trace
        if trace not in TRACE_MODES:
            raise SimulationError(
                f"unknown trace mode {trace!r}; known: {', '.join(TRACE_MODES)}"
            )
        self._daemon.reset()
        if self._engine == "adaptive":
            return self._adaptive.run(
                daemon=self._daemon,
                rng=self._rng,
                initial=initial,
                max_steps=max_steps,
                stop_when=stop_when,
                trace=trace,
            )
        if self._engine in ("incremental", "vector", "vector-superstep"):
            if self._incremental is None:
                self._incremental = IncrementalEngine(self._protocol)
            return self._incremental.run(
                daemon=self._daemon,
                rng=self._rng,
                initial=initial,
                max_steps=max_steps,
                stop_when=stop_when,
                trace=trace,
                backend=(
                    self._engine
                    if self._engine in ("vector", "vector-superstep")
                    else "dict"
                ),
            )
        return self._run_reference(initial, max_steps, stop_when, trace)

    def _run_reference(
        self,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]],
        trace: str,
    ) -> Execution:
        """The naive full-rescan semantics — the correctness oracle.

        Every configuration is evaluated from scratch.  For stock protocols
        guards still run only once per vertex per step because the
        enabledness pass is shared with ``Protocol.apply`` (see
        :meth:`Protocol.prepared_step`); protocols overriding hot-path
        methods go through their own ``enabled_vertices``/``apply`` chain
        unchanged.
        """
        light = trace == "light"
        configurations: List[Configuration] = [initial]
        selections: List[FrozenSet[VertexId]] = []
        activations: List[Sequence[ActivationRecord]] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        truncated = True

        current = initial
        for index in range(max_steps + 1):
            if self._prepared_ok:
                enabled, prepared = self._protocol.prepared_step(current)
            else:
                enabled, prepared = self._protocol.enabled_vertices(current), None
            enabled_sets.append(enabled)
            if stop_when is not None and stop_when(current, index):
                truncated = True
                break
            if not enabled:
                truncated = False
                break
            if index == max_steps:
                truncated = True
                break
            selection = self._daemon.checked_select(enabled, current, index, self._rng)
            if prepared is not None:
                new_configuration, records = self._protocol.apply(
                    current, selection, prepared=prepared
                )
            else:
                new_configuration, records = self._protocol.apply(current, selection)
            selections.append(selection)
            activations.append(records)
            if not light:
                configurations.append(new_configuration)
            current = new_configuration

        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
            )
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )

    def run_until_terminal(
        self,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: Optional[str] = "light",
    ) -> Execution:
        """Run until a terminal configuration; raise if the budget is hit.

        Only meaningful for *silent* protocols (BFS tree, matching) that are
        guaranteed to terminate; unison/SSME never terminate.

        ``stop_when`` and ``trace`` are threaded through to :meth:`run`
        (they used to be silently dropped).  ``trace`` defaults to
        ``"light"`` — terminal-seeking callers typically only inspect the
        final configuration, and a light trace reconstructs anything else
        on demand; pass ``trace="full"`` to keep per-step snapshots, or
        ``trace=None`` to defer to the simulator's configured mode (the
        same ``None`` semantics as :meth:`run`).  A ``stop_when`` that
        fires before a terminal configuration truncates the run, which
        therefore raises like an exhausted budget.
        """
        execution = self.run(
            initial,
            max_steps,
            stop_when=stop_when,
            trace=trace,
        )
        if not execution.is_terminal:
            raise SimulationError(
                f"no terminal configuration reached within {max_steps} steps"
            )
        return execution


def synchronous_execution(
    protocol: Protocol, initial: Configuration, steps: int
) -> Execution:
    """Convenience helper: the (unique) synchronous execution prefix.

    Under the synchronous daemon the execution from a configuration is
    deterministic, so no seed is needed.
    """
    from .daemons import SynchronousDaemon

    simulator = Simulator(protocol, SynchronousDaemon(), rng=random.Random(0))
    return simulator.run(initial, max_steps=steps)
