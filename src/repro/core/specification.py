"""Problem specifications.

A *specification* (Section 2) is the set of executions that satisfy a
problem.  All specifications used in the paper and in this library decompose
into

* a **safety** predicate evaluated on individual configurations (at most one
  privileged vertex, legitimate unison configuration, correct BFS distances,
  valid maximal matching, ...), and
* a **liveness** condition evaluated on a (finite window of an) execution
  (every vertex executes its critical section, every clock is incremented,
  ...; silent tasks have trivial liveness).

Finite traces can only *approximate* liveness; the experiment harness always
allocates a window long enough to make the approximation meaningful (e.g. a
full clock period for SSME) and the measurement objects record whether the
liveness check was even attempted.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..exceptions import SpecificationError
from .execution import Execution
from .protocol import Protocol
from .state import Configuration

__all__ = ["Specification", "SilentSpecification"]


class Specification(ABC):
    """Base class of problem specifications."""

    #: Human-readable name ("spec_ME", "spec_AU", ...).
    name: str = "spec"

    #: Whether the safety predicate is invariant under graph automorphisms
    #: (``is_safe(g·γ) == is_safe(γ)`` for every automorphism ``g``).  The
    #: exact checker's symmetry quotient requires this *and* the protocol's
    #: :attr:`repro.core.Protocol.vertex_symmetric`.  Identity-dependent
    #: specifications (mutual exclusion over identity-spaced privileged
    #: values, rooted trees) must keep it False.
    vertex_symmetric: bool = False

    # ------------------------------------------------------------------ #
    # Safety
    # ------------------------------------------------------------------ #
    @abstractmethod
    def is_safe(self, configuration: Configuration, protocol: Protocol) -> bool:
        """Whether ``configuration`` satisfies the safety predicate."""

    def safe_rows(self, rows, order, protocol: Protocol):
        """Optional batch capability: the ``(m,)`` boolean safety vector of
        an ``(m, n, width)`` array of codec-encoded configurations, with
        columns aligned to the vertex tuple ``order``.

        Must agree entry-for-entry with :meth:`is_safe` on the decoded
        configurations — the exact checker's batched expansion
        (:mod:`repro.verify.batched`) calls it once per frontier instead of
        once per configuration.  The base implementation returns ``None``,
        meaning "unsupported": the checker then decodes and evaluates per
        configuration (correct, just slower).
        """
        del rows, order, protocol
        return None

    def first_unsafe_index(
        self, execution: Execution, protocol: Protocol, start: int = 0
    ) -> Optional[int]:
        """Index of the first unsafe configuration at or after ``start``,
        or ``None`` when every such configuration is safe.

        The trace is walked sequentially (``iter_configurations``): on a
        light execution a per-index walk would cache every reconstructed
        configuration and silently balloon back to full-trace memory.
        """
        for index, configuration in enumerate(
            execution.iter_configurations(start), start
        ):
            if not self.is_safe(configuration, protocol):
                return index
        return None

    def last_unsafe_index(
        self, execution: Execution, protocol: Protocol
    ) -> Optional[int]:
        """Index of the last unsafe configuration of the trace, or ``None``.

        Sequential walk, same memory bound as :meth:`first_unsafe_index`.
        """
        last = None
        for index, configuration in enumerate(execution.iter_configurations()):
            if not self.is_safe(configuration, protocol):
                last = index
        return last

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #
    def check_liveness(
        self, execution: Execution, protocol: Protocol, start: int = 0
    ) -> bool:
        """Whether the liveness condition holds on the window starting at
        configuration ``start``.  The default accepts everything (silent
        tasks)."""
        return True

    # ------------------------------------------------------------------ #
    # Whole-execution check
    # ------------------------------------------------------------------ #
    def satisfied_by(
        self, execution: Execution, protocol: Protocol, start: int = 0
    ) -> bool:
        """Whether the suffix of the trace starting at ``start`` satisfies
        the specification (safety on every configuration + liveness)."""
        if start < 0 or start > execution.steps:
            raise SpecificationError(
                f"start index {start} out of range (0..{execution.steps})"
            )
        if self.first_unsafe_index(execution, protocol, start) is not None:
            return False
        return self.check_liveness(execution, protocol, start)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SilentSpecification(Specification):
    """Specification of a *silent* task.

    Silent self-stabilizing tasks (BFS spanning tree, maximal matching)
    converge to a configuration that is both legitimate and terminal; their
    safety predicate is "the output encoded in the configuration is
    correct" and they have no liveness obligation beyond convergence.
    """

    @abstractmethod
    def is_legitimate(self, configuration: Configuration, protocol: Protocol) -> bool:
        """Whether the output encoded by ``configuration`` is correct."""

    def is_safe(self, configuration: Configuration, protocol: Protocol) -> bool:
        return self.is_legitimate(configuration, protocol)
