"""Speculative stabilization (Definition 4) as executable analysis.

A protocol is ``(d, d', f, f')``-speculatively stabilizing when it
self-stabilizes under the strong daemon ``d`` with stabilization time
``Θ(f)``, and under the weaker daemon ``d' ≺ d`` its stabilization time is
``Θ(f')`` with ``f' < f``.  This module measures a protocol's stabilization
time under a pair of daemons over a family of graphs and checks the
*shape* of the claim: the bound functions dominate the measurements and the
weak-daemon measurements are (eventually, and significantly) smaller.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from ..graphs import Graph
from .daemons import Daemon
from .protocol import Protocol
from .specification import Specification
from .state import Configuration
from .stabilization import WorstCaseStabilization, worst_case_stabilization

__all__ = [
    "DaemonStabilizationProfile",
    "SpeculationMeasurement",
    "SpeculationStudy",
    "measure_speculation",
    "run_speculation_study",
]


class DaemonStabilizationProfile:
    """Stabilization of one protocol instance under one daemon."""

    __slots__ = ("daemon_name", "worst_case", "bound")

    def __init__(
        self,
        daemon_name: str,
        worst_case: WorstCaseStabilization,
        bound: Optional[float],
    ) -> None:
        self.daemon_name = daemon_name
        self.worst_case = worst_case
        self.bound = bound

    @property
    def max_steps(self) -> Optional[int]:
        """Worst observed stabilization time."""
        return self.worst_case.max_steps

    @property
    def within_bound(self) -> Optional[bool]:
        """Whether every observed stabilization time respects ``bound``."""
        if self.bound is None or self.max_steps is None:
            return None
        return self.max_steps <= self.bound

    def __repr__(self) -> str:
        return (
            f"DaemonStabilizationProfile({self.daemon_name!r}, "
            f"max_steps={self.max_steps}, bound={self.bound})"
        )


class SpeculationMeasurement:
    """Measurement of Definition 4 on a single graph."""

    __slots__ = ("graph", "strong", "weak")

    def __init__(
        self,
        graph: Graph,
        strong: DaemonStabilizationProfile,
        weak: DaemonStabilizationProfile,
    ) -> None:
        self.graph = graph
        self.strong = strong
        self.weak = weak

    @property
    def speculation_factor(self) -> Optional[float]:
        """Ratio strong/weak of the observed stabilization times.

        A factor greater than 1 means the weak (speculated-frequent) daemon
        stabilizes faster, which is the whole point of speculation.  The
        factor is ``None`` when either measurement failed to stabilize and
        ``inf`` when the weak side stabilized immediately.
        """
        if self.strong.max_steps is None or self.weak.max_steps is None:
            return None
        if self.weak.max_steps == 0:
            return float("inf") if self.strong.max_steps > 0 else 1.0
        return self.strong.max_steps / self.weak.max_steps

    def __repr__(self) -> str:
        return (
            f"SpeculationMeasurement(n={self.graph.n}, "
            f"strong={self.strong.max_steps}, weak={self.weak.max_steps})"
        )


class SpeculationStudy:
    """Measurements over a family of graphs plus the Definition 4 verdict."""

    def __init__(self, protocol_name: str, measurements: Sequence[SpeculationMeasurement]):
        self.protocol_name = protocol_name
        self.measurements = tuple(measurements)

    @property
    def all_within_bounds(self) -> bool:
        """Whether every measurement respects both announced bounds (where
        bounds were supplied)."""
        for measurement in self.measurements:
            for profile in (measurement.strong, measurement.weak):
                if profile.within_bound is False:
                    return False
        return True

    @property
    def weak_never_slower(self) -> bool:
        """Whether the weak daemon's observed stabilization never exceeds the
        strong daemon's on any graph of the study — the observable core of
        ``f' < f``."""
        for measurement in self.measurements:
            strong, weak = measurement.strong.max_steps, measurement.weak.max_steps
            if strong is None or weak is None:
                return False
            if weak > strong:
                return False
        return True

    def speculation_factors(self) -> List[Optional[float]]:
        """Per-graph speculation factors."""
        return [m.speculation_factor for m in self.measurements]

    def satisfies_definition4(self, min_final_factor: float = 1.0) -> bool:
        """Empirical verdict for Definition 4.

        Requires (i) every run stabilized, (ii) observed times respect the
        announced bounds, and (iii) on the largest graph of the study the
        speculation factor is at least ``min_final_factor`` (callers pass a
        value > 1 to require a *significant* improvement).
        """
        if not self.measurements:
            return False
        if not self.all_within_bounds:
            return False
        for measurement in self.measurements:
            if measurement.strong.max_steps is None or measurement.weak.max_steps is None:
                return False
        largest = max(self.measurements, key=lambda m: m.graph.n)
        factor = largest.speculation_factor
        return factor is not None and factor >= min_final_factor

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular view (one row per graph) for reporting."""
        rows = []
        for measurement in self.measurements:
            rows.append(
                {
                    "protocol": self.protocol_name,
                    "n": measurement.graph.n,
                    "m": measurement.graph.m,
                    "strong_daemon": measurement.strong.daemon_name,
                    "strong_steps": measurement.strong.max_steps,
                    "strong_bound": measurement.strong.bound,
                    "weak_daemon": measurement.weak.daemon_name,
                    "weak_steps": measurement.weak.max_steps,
                    "weak_bound": measurement.weak.bound,
                    "speculation_factor": measurement.speculation_factor,
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"SpeculationStudy({self.protocol_name!r}, graphs={len(self.measurements)})"
        )


def measure_speculation(
    protocol: Protocol,
    specification: Specification,
    strong_daemon_factory: Callable[[], Daemon],
    weak_daemon_factory: Callable[[], Daemon],
    initial_configurations: Sequence[Configuration],
    strong_horizon: int,
    weak_horizon: int,
    rng: Optional[random.Random] = None,
    strong_bound: Optional[float] = None,
    weak_bound: Optional[float] = None,
    strong_runs_per_configuration: int = 1,
    weak_runs_per_configuration: int = 1,
    check_liveness: bool = False,
    engine: str = "auto",
    trace: str = "full",
) -> SpeculationMeasurement:
    """Measure one protocol instance under a strong and a weak daemon.

    ``check_liveness``, ``engine`` and ``trace`` are forwarded unchanged to
    :func:`worst_case_stabilization` for both daemons, so Definition 4
    studies can verify liveness (SSME must actually serve every vertex),
    cross-check against the reference oracle, and run on light traces.
    """
    if not initial_configurations:
        raise SimulationError("need at least one initial configuration")
    rng = rng or random.Random(0)
    strong = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=strong_daemon_factory,
        specification=specification,
        initial_configurations=initial_configurations,
        horizon=strong_horizon,
        rng=random.Random(rng.randrange(2**63)),
        check_liveness=check_liveness,
        runs_per_configuration=strong_runs_per_configuration,
        engine=engine,
        trace=trace,
    )
    weak = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=weak_daemon_factory,
        specification=specification,
        initial_configurations=initial_configurations,
        horizon=weak_horizon,
        rng=random.Random(rng.randrange(2**63)),
        check_liveness=check_liveness,
        runs_per_configuration=weak_runs_per_configuration,
        engine=engine,
        trace=trace,
    )
    strong_name = strong_daemon_factory().name
    weak_name = weak_daemon_factory().name
    return SpeculationMeasurement(
        graph=protocol.graph,
        strong=DaemonStabilizationProfile(strong_name, strong, strong_bound),
        weak=DaemonStabilizationProfile(weak_name, weak, weak_bound),
    )


def run_speculation_study(
    protocol_factory: Callable[[Graph], Protocol],
    specification_factory: Callable[[Protocol], Specification],
    graphs: Iterable[Graph],
    strong_daemon_factory: Callable[[], Daemon],
    weak_daemon_factory: Callable[[], Daemon],
    workload: Callable[[Protocol, random.Random], Sequence[Configuration]],
    strong_horizon: Callable[[Protocol], int],
    weak_horizon: Callable[[Protocol], int],
    strong_bound: Optional[Callable[[Protocol], float]] = None,
    weak_bound: Optional[Callable[[Protocol], float]] = None,
    rng: Optional[random.Random] = None,
    strong_runs_per_configuration: int = 1,
    weak_runs_per_configuration: int = 1,
    check_liveness: bool = False,
    engine: str = "auto",
    trace: str = "full",
) -> SpeculationStudy:
    """Run a Definition 4 study over a family of graphs.

    All the per-graph knobs (horizons, bounds, workload of initial
    configurations) are callables of the protocol instance so the study can
    scale them with ``n`` and ``diam(g)`` the way the paper's bounds do.
    ``check_liveness``, ``engine`` and ``trace`` reach every underlying
    measurement unchanged.
    """
    rng = rng or random.Random(0)
    measurements: List[SpeculationMeasurement] = []
    protocol_name = "?"
    for graph in graphs:
        protocol = protocol_factory(graph)
        protocol_name = protocol.name
        specification = specification_factory(protocol)
        initial_configurations = workload(protocol, random.Random(rng.randrange(2**63)))
        measurement = measure_speculation(
            protocol=protocol,
            specification=specification,
            strong_daemon_factory=strong_daemon_factory,
            weak_daemon_factory=weak_daemon_factory,
            initial_configurations=list(initial_configurations),
            strong_horizon=strong_horizon(protocol),
            weak_horizon=weak_horizon(protocol),
            rng=random.Random(rng.randrange(2**63)),
            strong_bound=strong_bound(protocol) if strong_bound else None,
            weak_bound=weak_bound(protocol) if weak_bound else None,
            strong_runs_per_configuration=strong_runs_per_configuration,
            weak_runs_per_configuration=weak_runs_per_configuration,
            check_liveness=check_liveness,
            engine=engine,
            trace=trace,
        )
        measurements.append(measurement)
    return SpeculationStudy(protocol_name, measurements)
