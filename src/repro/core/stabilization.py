"""Measuring stabilization times on simulated executions.

The paper defines the convergence (stabilization) time of a self-stabilizing
protocol under a daemon as the worst, over the executions allowed by the
daemon, of the number of actions needed to reach a configuration from which
every execution satisfies the specification (Definition 3).

On a finite simulated trace we measure the *observed* stabilization point:
the smallest index ``s`` such that every configuration from ``s`` to the end
of the trace satisfies the safety predicate (optionally also requiring the
liveness check to pass on that suffix).  For deterministic daemons
(synchronous) with a horizon covering the protocol's period this is exact;
for randomized/adversarial daemons the experiment harness takes the maximum
over many seeds and initial configurations, which lower-bounds the true
worst case while every upper-bound theorem must still dominate it.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence

from ..exceptions import SimulationError
from .daemons import Daemon
from .execution import Execution
from .protocol import Protocol
from .simulator import Simulator
from .specification import Specification
from .state import Configuration

__all__ = [
    "StabilizationMeasurement",
    "WorstCaseStabilization",
    "observed_stabilization_index",
    "measure_stabilization",
    "worst_case_stabilization",
]


class StabilizationMeasurement:
    """Outcome of measuring one execution against a specification."""

    __slots__ = (
        "stabilization_steps",
        "stabilized",
        "liveness_checked",
        "liveness_ok",
        "execution_steps",
        "terminal",
        "rounds",
    )

    def __init__(
        self,
        stabilization_steps: Optional[int],
        stabilized: bool,
        liveness_checked: bool,
        liveness_ok: Optional[bool],
        execution_steps: int,
        terminal: bool,
        rounds: int,
    ) -> None:
        self.stabilization_steps = stabilization_steps
        self.stabilized = stabilized
        self.liveness_checked = liveness_checked
        self.liveness_ok = liveness_ok
        self.execution_steps = execution_steps
        self.terminal = terminal
        self.rounds = rounds

    def __repr__(self) -> str:
        return (
            f"StabilizationMeasurement(steps={self.stabilization_steps}, "
            f"stabilized={self.stabilized}, liveness_ok={self.liveness_ok})"
        )


class WorstCaseStabilization:
    """Aggregate of stabilization measurements over many runs."""

    __slots__ = ("measurements", "all_stabilized", "all_live")

    def __init__(self, measurements: Sequence[StabilizationMeasurement]) -> None:
        self.measurements = tuple(measurements)
        self.all_stabilized = all(m.stabilized for m in self.measurements)
        checked = [m for m in self.measurements if m.liveness_checked]
        self.all_live = all(m.liveness_ok for m in checked) if checked else None

    @property
    def max_steps(self) -> Optional[int]:
        """The worst observed stabilization time (``None`` if nothing ran)."""
        steps = [
            m.stabilization_steps
            for m in self.measurements
            if m.stabilization_steps is not None
        ]
        return max(steps) if steps else None

    @property
    def mean_steps(self) -> Optional[float]:
        """The mean observed stabilization time."""
        steps = [
            m.stabilization_steps
            for m in self.measurements
            if m.stabilization_steps is not None
        ]
        return sum(steps) / len(steps) if steps else None

    @property
    def max_rounds(self) -> Optional[int]:
        """Worst observed stabilization expressed in rounds-equivalent
        (rounds of the whole trace; coarse but monotone)."""
        rounds = [m.rounds for m in self.measurements]
        return max(rounds) if rounds else None

    def __repr__(self) -> str:
        return (
            f"WorstCaseStabilization(runs={len(self.measurements)}, "
            f"max_steps={self.max_steps}, all_stabilized={self.all_stabilized})"
        )


def observed_stabilization_index(
    execution: Execution, specification: Specification, protocol: Protocol
) -> Optional[int]:
    """Smallest index ``s`` such that every configuration of the trace from
    ``s`` onwards is safe, or ``None`` when the final configuration itself
    is unsafe (the trace never stabilized within its horizon)."""
    last_unsafe = specification.last_unsafe_index(execution, protocol)
    if last_unsafe is None:
        return 0
    if last_unsafe == execution.steps:
        return None
    return last_unsafe + 1


def measure_stabilization(
    protocol: Protocol,
    daemon: Daemon,
    initial: Configuration,
    specification: Specification,
    horizon: int,
    rng: Optional[random.Random] = None,
    check_liveness: bool = False,
    engine: str = "incremental",
) -> StabilizationMeasurement:
    """Run one execution and measure its observed stabilization time.

    Parameters
    ----------
    horizon:
        Maximum number of actions to simulate.  For liveness checks the
        horizon must extend well past the expected stabilization point
        (e.g. at least one clock period for SSME).
    check_liveness:
        When True, the specification's liveness condition is evaluated on
        the suffix starting at the observed stabilization point.
    engine:
        Simulation engine ("incremental" by default; "reference" replays
        the naive semantics, useful to cross-check a measurement).
    """
    simulator = Simulator(protocol, daemon, rng=rng or random.Random(0), engine=engine)
    execution = simulator.run(initial, max_steps=horizon)
    index = observed_stabilization_index(execution, specification, protocol)
    stabilized = index is not None
    liveness_ok: Optional[bool] = None
    if check_liveness and stabilized:
        liveness_ok = specification.check_liveness(execution, protocol, index)
    return StabilizationMeasurement(
        stabilization_steps=index,
        stabilized=stabilized,
        liveness_checked=check_liveness and stabilized,
        liveness_ok=liveness_ok,
        execution_steps=execution.steps,
        terminal=execution.is_terminal,
        rounds=execution.count_rounds(),
    )


def worst_case_stabilization(
    protocol: Protocol,
    daemon_factory: Callable[[], Daemon],
    specification: Specification,
    initial_configurations: Iterable[Configuration],
    horizon: int,
    rng: Optional[random.Random] = None,
    check_liveness: bool = False,
    runs_per_configuration: int = 1,
    engine: str = "incremental",
) -> WorstCaseStabilization:
    """Maximize the observed stabilization time over configurations and seeds.

    A fresh daemon is built for each run (so daemons with scheduling memory
    start clean), and each initial configuration is replayed
    ``runs_per_configuration`` times with different seeds — only useful for
    randomized daemons; deterministic daemons produce identical runs.
    """
    if runs_per_configuration < 1:
        raise SimulationError("runs_per_configuration must be >= 1")
    rng = rng or random.Random(0)
    measurements: List[StabilizationMeasurement] = []
    for initial in initial_configurations:
        for _ in range(runs_per_configuration):
            seed = rng.randrange(2**63)
            measurement = measure_stabilization(
                protocol=protocol,
                daemon=daemon_factory(),
                initial=initial,
                specification=specification,
                horizon=horizon,
                rng=random.Random(seed),
                check_liveness=check_liveness,
                engine=engine,
            )
            measurements.append(measurement)
    return WorstCaseStabilization(measurements)
