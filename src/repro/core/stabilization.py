"""Measuring stabilization times on simulated executions.

The paper defines the convergence (stabilization) time of a self-stabilizing
protocol under a daemon as the worst, over the executions allowed by the
daemon, of the number of actions needed to reach a configuration from which
every execution satisfies the specification (Definition 3).

On a finite simulated trace we measure the *observed* stabilization point:
the smallest index ``s`` such that every configuration from ``s`` to the end
of the trace satisfies the safety predicate (optionally also requiring the
liveness check to pass on that suffix).  For deterministic daemons
(synchronous) with a horizon covering the protocol's period this is exact;
for randomized/adversarial daemons the experiment harness takes the maximum
over many seeds and initial configurations, which lower-bounds the true
worst case while every upper-bound theorem must still dominate it.

For finite-state protocol instances small enough to enumerate, the exact
model checker lifts this caveat entirely: :func:`repro.verify.
verify_stabilization` solves the adversarial scheduling game over *every*
schedule of a daemon class (and, in exhaustive mode, every initial
configuration), certifying the true worst case that the sampled values
here approach from below — ``exact >= sampled`` on any shared region is
pinned by ``tests/test_exact_consistency.py`` and the E8 driver.  See
``docs/verify.md`` for when each layer applies.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Mapping, Optional, Sequence

from ..exceptions import SimulationError
from .daemons import Daemon
from .execution import Execution
from .protocol import Protocol
from .simulator import Simulator
from .specification import Specification
from .state import Configuration

__all__ = [
    "SafetyMonitor",
    "StabilizationMeasurement",
    "WorstCaseStabilization",
    "observed_stabilization_index",
    "observed_stabilization_indices",
    "measure_stabilization",
    "worst_case_stabilization",
]


class SafetyMonitor:
    """Online multi-specification safety monitor.

    Instead of re-walking a recorded trace once per specification, the
    monitor observes every configuration *as the run produces it* (via the
    simulator's ``stop_when`` hook) and tracks, per specification, the first
    and last index whose configuration violated safety — exactly the
    quantities stabilization measurement needs.  One pass, any number of
    specifications, no configuration retained; with a light trace the
    measured run never materializes a configuration at all.

    Usage::

        monitor = SafetyMonitor([spec_a, spec_b], protocol)
        execution = simulator.run(initial, max_steps=h, stop_when=monitor.observe)
        index_a = monitor.stabilization_index(spec_a)

    An optional wrapped ``stop_when`` predicate is evaluated *after* the
    observation is recorded, so it may interrogate the monitor about the
    configuration it is deciding on (see :meth:`is_currently_safe`).

    In light-trace mode :meth:`observe` receives a live read-only view; the
    monitor only derives booleans from it and never retains it, which is
    exactly the contract such views require.
    """

    __slots__ = (
        "_protocol",
        "_specs",
        "_checks",
        "_first_unsafe",
        "_last_unsafe",
        "_last_index",
        "_stop_when",
    )

    def __init__(
        self,
        specifications: Sequence[Specification],
        protocol: Protocol,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
    ) -> None:
        specs = tuple(specifications)
        if not specs:
            raise SimulationError("SafetyMonitor needs at least one specification")
        self._protocol = protocol
        self._specs = specs
        self._checks = [spec.is_safe for spec in specs]
        self._first_unsafe: List[Optional[int]] = [None] * len(specs)
        self._last_unsafe: List[Optional[int]] = [None] * len(specs)
        self._last_index = -1
        self._stop_when = stop_when

    def reset(self) -> None:
        """Forget all observations (reuse the monitor for another run)."""
        self._first_unsafe = [None] * len(self._specs)
        self._last_unsafe = [None] * len(self._specs)
        self._last_index = -1

    # ------------------------------------------------------------------ #
    # The stop_when-compatible callback
    # ------------------------------------------------------------------ #
    def observe(self, configuration: Mapping, index: int) -> bool:
        """Record safety of ``configuration`` at ``index``.

        Drop-in ``stop_when`` predicate: returns False (never stops the
        run) unless a wrapped ``stop_when`` was supplied, in which case its
        verdict — evaluated after the observation — is returned.
        """
        if index != self._last_index + 1:
            raise SimulationError(
                f"monitor observed index {index} after {self._last_index}; "
                "observations must be gapless (one run per monitor, or reset())"
            )
        self._last_index = index
        protocol = self._protocol
        for position, check in enumerate(self._checks):
            if not check(configuration, protocol):
                self._last_unsafe[position] = index
                if self._first_unsafe[position] is None:
                    self._first_unsafe[position] = index
        if self._stop_when is not None:
            return self._stop_when(configuration, index)
        return False

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _position(self, specification: Specification) -> int:
        for position, spec in enumerate(self._specs):
            if spec is specification:
                return position
        raise SimulationError("specification was not monitored")

    @property
    def observed_steps(self) -> int:
        """Index of the last observed configuration (-1 before any)."""
        return self._last_index

    def is_currently_safe(self, specification: Specification) -> bool:
        """Whether the most recently observed configuration was safe."""
        if self._last_index < 0:
            raise SimulationError("monitor has observed no configuration yet")
        return self._last_unsafe[self._position(specification)] != self._last_index

    def first_unsafe_index(self, specification: Specification) -> Optional[int]:
        """First observed unsafe index for ``specification`` (or ``None``)."""
        return self._first_unsafe[self._position(specification)]

    def last_unsafe_index(self, specification: Specification) -> Optional[int]:
        """Last observed unsafe index for ``specification`` (or ``None``)."""
        return self._last_unsafe[self._position(specification)]

    def stabilization_index(self, specification: Specification) -> Optional[int]:
        """The observed stabilization index over the observed prefix.

        Same contract as :func:`observed_stabilization_index`: smallest
        ``s`` such that every observed configuration from ``s`` on was
        safe, ``None`` when the last observed configuration was unsafe.
        """
        last_unsafe = self._last_unsafe[self._position(specification)]
        if last_unsafe is None:
            return 0
        if last_unsafe == self._last_index:
            return None
        return last_unsafe + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SafetyMonitor(specs={[s.name for s in self._specs]!r}, "
            f"observed={self._last_index + 1})"
        )


class StabilizationMeasurement:
    """Outcome of measuring one execution against a specification."""

    __slots__ = (
        "stabilization_steps",
        "stabilized",
        "liveness_checked",
        "liveness_ok",
        "execution_steps",
        "terminal",
        "rounds",
    )

    def __init__(
        self,
        stabilization_steps: Optional[int],
        stabilized: bool,
        liveness_checked: bool,
        liveness_ok: Optional[bool],
        execution_steps: int,
        terminal: bool,
        rounds: int,
    ) -> None:
        self.stabilization_steps = stabilization_steps
        self.stabilized = stabilized
        self.liveness_checked = liveness_checked
        self.liveness_ok = liveness_ok
        self.execution_steps = execution_steps
        self.terminal = terminal
        self.rounds = rounds

    def __repr__(self) -> str:
        return (
            f"StabilizationMeasurement(steps={self.stabilization_steps}, "
            f"stabilized={self.stabilized}, liveness_ok={self.liveness_ok})"
        )


class WorstCaseStabilization:
    """Aggregate of stabilization measurements over many runs."""

    __slots__ = ("measurements", "all_stabilized", "all_live")

    def __init__(self, measurements: Sequence[StabilizationMeasurement]) -> None:
        self.measurements = tuple(measurements)
        self.all_stabilized = all(m.stabilized for m in self.measurements)
        checked = [m for m in self.measurements if m.liveness_checked]
        self.all_live = all(m.liveness_ok for m in checked) if checked else None

    @property
    def max_steps(self) -> Optional[int]:
        """The worst observed stabilization time (``None`` if nothing ran)."""
        steps = [
            m.stabilization_steps
            for m in self.measurements
            if m.stabilization_steps is not None
        ]
        return max(steps) if steps else None

    @property
    def mean_steps(self) -> Optional[float]:
        """The mean observed stabilization time."""
        steps = [
            m.stabilization_steps
            for m in self.measurements
            if m.stabilization_steps is not None
        ]
        return sum(steps) / len(steps) if steps else None

    @property
    def max_rounds(self) -> Optional[int]:
        """Worst observed stabilization expressed in rounds-equivalent
        (rounds of the whole trace; coarse but monotone)."""
        rounds = [m.rounds for m in self.measurements]
        return max(rounds) if rounds else None

    def __repr__(self) -> str:
        return (
            f"WorstCaseStabilization(runs={len(self.measurements)}, "
            f"max_steps={self.max_steps}, all_stabilized={self.all_stabilized})"
        )


def observed_stabilization_index(
    execution: Execution, specification: Specification, protocol: Protocol
) -> Optional[int]:
    """Smallest index ``s`` such that every configuration of the trace from
    ``s`` onwards is safe, or ``None`` when the final configuration itself
    is unsafe (the trace never stabilized within its horizon)."""
    last_unsafe = specification.last_unsafe_index(execution, protocol)
    if last_unsafe is None:
        return 0
    if last_unsafe == execution.steps:
        return None
    return last_unsafe + 1


def observed_stabilization_indices(
    execution: Execution,
    specifications: Sequence[Specification],
    protocol: Protocol,
) -> List[Optional[int]]:
    """Observed stabilization indices of several specifications in **one**
    sequential pass over the trace.

    Equivalent to calling :func:`observed_stabilization_index` once per
    specification, but the (possibly lazily reconstructed) configurations
    are visited a single time, and on light traces only O(steps/stride)
    of them are retained.
    """
    monitor = SafetyMonitor(specifications, protocol)
    for index, configuration in enumerate(execution.iter_configurations()):
        monitor.observe(configuration, index)
    return [monitor.stabilization_index(spec) for spec in specifications]


def measure_stabilization(
    protocol: Protocol,
    daemon: Daemon,
    initial: Configuration,
    specification: Specification,
    horizon: int,
    rng: Optional[random.Random] = None,
    check_liveness: bool = False,
    engine: str = "auto",
    trace: str = "full",
    count_rounds: bool = True,
) -> StabilizationMeasurement:
    """Run one execution and measure its observed stabilization time.

    Safety is monitored **online** (:class:`SafetyMonitor` riding the
    simulator's ``stop_when`` hook): the stabilization index is known the
    moment the run ends and the trace is never re-walked for it.

    Parameters
    ----------
    horizon:
        Maximum number of actions to simulate.  For liveness checks the
        horizon must extend well past the expected stabilization point
        (e.g. at least one clock period for SSME).
    check_liveness:
        When True, the specification's liveness condition is evaluated on
        the suffix starting at the observed stabilization point.
    engine:
        Simulation engine ("auto" by default — the vectorized array-state
        backend for dense daemons when the protocol declares one, the
        incremental dirty-set engine otherwise; "reference" replays the
        naive semantics, useful to cross-check a measurement).
    trace:
        Trace mode of the underlying run.  With ``"light"`` the safety
        monitor reads live views and no configuration is materialized by
        the measurement itself; liveness checks (and any later trace
        inspection) reconstruct configurations on demand.
    count_rounds:
        When False, skip the O(steps·n) round count of the finished trace
        and report ``rounds=0``.  Large-n sweeps that only need step counts
        must disable it — on a 10⁴-vertex horizon the round walk would
        dominate the (vectorized) run itself.
    """
    simulator = Simulator(
        protocol, daemon, rng=rng or random.Random(0), engine=engine, trace=trace
    )
    monitor = SafetyMonitor([specification], protocol)
    execution = simulator.run(initial, max_steps=horizon, stop_when=monitor.observe)
    index = monitor.stabilization_index(specification)
    stabilized = index is not None
    liveness_ok: Optional[bool] = None
    if check_liveness and stabilized:
        liveness_ok = specification.check_liveness(execution, protocol, index)
    return StabilizationMeasurement(
        stabilization_steps=index,
        stabilized=stabilized,
        liveness_checked=check_liveness and stabilized,
        liveness_ok=liveness_ok,
        execution_steps=execution.steps,
        terminal=execution.is_terminal,
        rounds=execution.count_rounds() if count_rounds else 0,
    )


def worst_case_stabilization(
    protocol: Protocol,
    daemon_factory: Callable[[], Daemon],
    specification: Specification,
    initial_configurations: Iterable[Configuration],
    horizon: int,
    rng: Optional[random.Random] = None,
    check_liveness: bool = False,
    runs_per_configuration: int = 1,
    engine: str = "auto",
    trace: str = "full",
    count_rounds: bool = True,
) -> WorstCaseStabilization:
    """Maximize the observed stabilization time over configurations and seeds.

    A fresh daemon is built for each run (so daemons with scheduling memory
    start clean), and each initial configuration is replayed
    ``runs_per_configuration`` times with different seeds — only useful for
    randomized daemons; deterministic daemons produce identical runs.
    ``trace`` is forwarded to every underlying run; sweeps that only need
    the indices should pass ``"light"``.
    """
    if runs_per_configuration < 1:
        raise SimulationError("runs_per_configuration must be >= 1")
    rng = rng or random.Random(0)
    measurements: List[StabilizationMeasurement] = []
    for initial in initial_configurations:
        for _ in range(runs_per_configuration):
            seed = rng.randrange(2**63)
            measurement = measure_stabilization(
                protocol=protocol,
                daemon=daemon_factory(),
                initial=initial,
                specification=specification,
                horizon=horizon,
                rng=random.Random(seed),
                check_liveness=check_liveness,
                engine=engine,
                trace=trace,
                count_rounds=count_rounds,
            )
            measurements.append(measurement)
    return WorstCaseStabilization(measurements)
