"""Configurations: immutable global states of the distributed system.

A *configuration* assigns a local state to every vertex of the communication
graph (Section 2 of the paper).  Configurations are immutable and hashable
(provided vertex states are hashable), which lets the simulator detect
terminal configurations, cache enabled sets, and compare configurations for
the lower-bound splicing construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from ..exceptions import SimulationError
from ..types import VertexId, VertexStateLike

__all__ = ["Configuration"]


class Configuration(Mapping[VertexId, VertexStateLike]):
    """An immutable mapping from vertices to their local states.

    Examples
    --------
    >>> gamma = Configuration({0: 1, 1: 5})
    >>> gamma[0]
    1
    >>> gamma.updated({0: 2})[0]
    2
    """

    __slots__ = ("_states", "_hash")

    def __init__(self, states: Mapping[VertexId, VertexStateLike]):
        self._states: Dict[VertexId, VertexStateLike] = dict(states)
        self._hash = None

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        try:
            return self._states[vertex]
        except KeyError:
            raise SimulationError(f"configuration has no state for vertex {vertex!r}") from None

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._states

    # -- Value semantics ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._states == other._states
        if isinstance(other, Mapping):
            return self._states == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._states.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {s!r}" for v, s in sorted(self._states.items(), key=lambda kv: repr(kv[0])))
        return f"Configuration({{{inner}}})"

    # -- Functional updates ---------------------------------------------------
    def updated(self, changes: Mapping[VertexId, VertexStateLike]) -> "Configuration":
        """A new configuration with the states of ``changes`` replaced.

        Every key of ``changes`` must already be a vertex of the
        configuration (a configuration never gains or loses vertices).
        """
        for vertex in changes:
            if vertex not in self._states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        merged = dict(self._states)
        merged.update(changes)
        return Configuration(merged)

    def restrict(self, vertices: Iterable[VertexId]) -> "Configuration":
        """The restriction of the configuration to ``vertices``.

        This is the ``k``-local state of Definition 7 once ``vertices`` is a
        ball of the communication graph.
        """
        vertices = list(vertices)
        missing = [v for v in vertices if v not in self._states]
        if missing:
            raise SimulationError(f"unknown vertices in restriction: {missing!r}")
        return Configuration({v: self._states[v] for v in vertices})

    def differing_vertices(self, other: "Configuration") -> Tuple[VertexId, ...]:
        """Vertices whose states differ between ``self`` and ``other``."""
        if set(self._states) != set(other._states):
            raise SimulationError("configurations are over different vertex sets")
        return tuple(
            v for v in self._states if self._states[v] != other._states[v]
        )

    def as_dict(self) -> Dict[VertexId, VertexStateLike]:
        """A mutable copy of the underlying mapping."""
        return dict(self._states)
