"""Configurations: immutable global states of the distributed system.

A *configuration* assigns a local state to every vertex of the communication
graph (Section 2 of the paper).  Configurations are immutable and hashable
(provided vertex states are hashable), which lets the simulator detect
terminal configurations, cache enabled sets, and compare configurations for
the lower-bound splicing construction.

The incremental simulation engine additionally uses two mutable-world
companions defined here:

* :class:`ConfigurationBuffer` — a mutable vertex->state mapping updated in
  place in O(Δ) per action, from which immutable :class:`Configuration`
  snapshots are materialized only when the execution trace records them;
* :class:`ConfigurationView` — a read-only *live* window onto a buffer,
  handed to daemons and ``stop_when`` predicates in light-trace mode so no
  snapshot has to be materialized for steps the trace does not keep.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from ..exceptions import SimulationError
from ..types import VertexId, VertexStateLike

__all__ = ["Configuration", "ConfigurationBuffer", "ConfigurationView"]


class Configuration(Mapping[VertexId, VertexStateLike]):
    """An immutable mapping from vertices to their local states.

    Examples
    --------
    >>> gamma = Configuration({0: 1, 1: 5})
    >>> gamma[0]
    1
    >>> gamma.updated({0: 2})[0]
    2
    """

    __slots__ = ("_states", "_hash")

    def __init__(self, states: Mapping[VertexId, VertexStateLike]):
        self._states: Dict[VertexId, VertexStateLike] = dict(states)
        self._hash = None

    @classmethod
    def _from_trusted_dict(cls, states: Dict[VertexId, VertexStateLike]) -> "Configuration":
        """Wrap ``states`` without copying.

        The caller transfers ownership of the dict and must never mutate it
        afterwards; the simulation engine uses this to materialize snapshots
        from its :class:`ConfigurationBuffer` with a single dict copy.
        """
        configuration = cls.__new__(cls)
        configuration._states = states
        configuration._hash = None
        return configuration

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        try:
            return self._states[vertex]
        except KeyError:
            raise SimulationError(f"configuration has no state for vertex {vertex!r}") from None

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._states

    # -- Value semantics ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._states == other._states
        if isinstance(other, Mapping):
            return self._states == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._states.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {s!r}" for v, s in sorted(self._states.items(), key=lambda kv: repr(kv[0])))
        return f"Configuration({{{inner}}})"

    # -- Functional updates ---------------------------------------------------
    def updated(self, changes: Mapping[VertexId, VertexStateLike]) -> "Configuration":
        """A new configuration with the states of ``changes`` replaced.

        Every key of ``changes`` must already be a vertex of the
        configuration (a configuration never gains or loses vertices).
        """
        for vertex in changes:
            if vertex not in self._states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        merged = dict(self._states)
        merged.update(changes)
        return Configuration._from_trusted_dict(merged)

    def restrict(self, vertices: Iterable[VertexId]) -> "Configuration":
        """The restriction of the configuration to ``vertices``.

        This is the ``k``-local state of Definition 7 once ``vertices`` is a
        ball of the communication graph.
        """
        vertices = list(vertices)
        missing = [v for v in vertices if v not in self._states]
        if missing:
            raise SimulationError(f"unknown vertices in restriction: {missing!r}")
        return Configuration({v: self._states[v] for v in vertices})

    def differing_vertices(self, other: "Configuration") -> Tuple[VertexId, ...]:
        """Vertices whose states differ between ``self`` and ``other``."""
        if set(self._states) != set(other._states):
            raise SimulationError("configurations are over different vertex sets")
        return tuple(
            v for v in self._states if self._states[v] != other._states[v]
        )

    def as_dict(self) -> Dict[VertexId, VertexStateLike]:
        """A mutable copy of the underlying mapping."""
        return dict(self._states)


class ConfigurationBuffer(Mapping[VertexId, VertexStateLike]):
    """A mutable vertex->state mapping used internally by the engine.

    Unlike :class:`Configuration`, updates happen in place (O(Δ) per action
    for Δ changed vertices); immutable snapshots are materialized on demand
    with :meth:`snapshot`, each costing one dict copy.
    """

    __slots__ = ("_states",)

    def __init__(self, initial: Mapping[VertexId, VertexStateLike]) -> None:
        self._states: Dict[VertexId, VertexStateLike] = dict(initial)

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        try:
            return self._states[vertex]
        except KeyError:
            raise SimulationError(f"buffer has no state for vertex {vertex!r}") from None

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._states

    # -- Mutation ----------------------------------------------------------
    def apply_changes(self, changes: Mapping[VertexId, VertexStateLike]) -> None:
        """Overwrite the states of ``changes`` in place (keys must exist)."""
        for vertex in changes:
            if vertex not in self._states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        self._states.update(changes)

    def apply_trusted_changes(self, changes: Mapping[VertexId, VertexStateLike]) -> None:
        """Like :meth:`apply_changes` without the per-key membership check.

        For callers that construct ``changes`` from the buffer's own vertex
        set (the simulation engine's firing loop does: every key comes from
        a daemon selection validated against the enabled set); the check is
        pure per-action overhead there, and it dominates the batch fast
        path where Δ is the whole graph.
        """
        self._states.update(changes)

    # -- Export ------------------------------------------------------------
    def snapshot(self) -> Configuration:
        """An immutable :class:`Configuration` copy of the current states."""
        return Configuration._from_trusted_dict(dict(self._states))

    def raw_states(self) -> Dict[VertexId, VertexStateLike]:
        """The live underlying dict (engine internals only; do not leak)."""
        return self._states

    def view(self) -> "ConfigurationView":
        """A read-only live view of this buffer."""
        return ConfigurationView(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConfigurationBuffer(n={len(self._states)})"


class ConfigurationView(Mapping[VertexId, VertexStateLike]):
    """A read-only *live* view of a :class:`ConfigurationBuffer`.

    The engine passes views to daemons and ``stop_when`` predicates in
    light-trace mode: they behave like the current configuration (including
    the functional :meth:`updated`, which adversarial daemons use to look
    ahead) without materializing a snapshot.  The view tracks the buffer —
    callers must not retain it across steps; call :meth:`snapshot` to pin
    the current states.
    """

    __slots__ = ("_buffer",)

    def __init__(self, buffer: ConfigurationBuffer) -> None:
        self._buffer = buffer

    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        return self._buffer[vertex]

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._buffer

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    # Live views are deliberately unhashable: their contents change under
    # the caller's feet, so hashing one (e.g. for membership in a seen-set)
    # would be a correctness trap.  Pin the states with snapshot() first.
    __hash__ = None  # type: ignore[assignment]

    def updated(self, changes: Mapping[VertexId, VertexStateLike]) -> Configuration:
        """An immutable configuration: current states with ``changes`` applied."""
        states = dict(self._buffer.raw_states())
        for vertex in changes:
            if vertex not in states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        states.update(changes)
        return Configuration._from_trusted_dict(states)

    def restrict(self, vertices: Iterable[VertexId]) -> Configuration:
        """The (immutable) restriction of the current states to ``vertices``."""
        return self.snapshot().restrict(vertices)

    def differing_vertices(self, other: "Configuration") -> Tuple[VertexId, ...]:
        """Vertices whose current states differ from ``other``'s."""
        return self.snapshot().differing_vertices(other)

    def snapshot(self) -> Configuration:
        """Pin the current states as an immutable :class:`Configuration`."""
        return self._buffer.snapshot()

    def as_dict(self) -> Dict[VertexId, VertexStateLike]:
        """A mutable copy of the current states."""
        return dict(self._buffer.raw_states())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConfigurationView(n={len(self._buffer)})"
