"""The NumPy-vectorized array-state engine backend (the "vector kernel").

The incremental engine of :mod:`repro.core.engine` wins big in the sparse
regime (central-style daemons: O(Δ) per action), but in the *dense* regime —
the synchronous daemon, dense distributed daemons — every action dirties
essentially every vertex, so each step still pays n Python guard calls plus
n Python firing calls.  That per-step cost is exactly what the paper's
headline experiments (Theorem 2 synchronous sweeps, Theorem 3 adversarial
sweeps) are bound by at scale.

This module replaces the whole per-step scan by a handful of array
operations for protocols whose per-vertex state is a fixed small tuple of
machine integers (unison clocks, Dijkstra/SSME token counters):

* :class:`GraphIndex` — the communication graph flattened once into
  CSR-style neighbour index arrays (``indptr``/``indices``/``edge_src``);
* :class:`ArrayCodec` — encodes a configuration into an ``(n, k)`` int64
  array and decodes rows back into exact Python states
  (:class:`IntCodec` for plain-int states, :class:`IntTupleCodec` for
  fixed-width int tuples);
* :class:`ArrayKernel` — the protocol-declared vectorized transition
  relation: ``enabled_rules(states, index)`` returns, per vertex, the
  position of its *first* enabled rule (or -1), and
  ``fire(states, selected, rule_ids, index)`` returns the new state rows of
  the selected vertices — both as whole-array computations;
* :class:`VectorEngine` — a drop-in runner with the exact
  ``IncrementalEngine.run`` contract built on the above.

Protocols opt in through the capability API
:meth:`repro.core.Protocol.array_codec` / :meth:`~repro.core.Protocol.array_kernel`
(both return None by default).  Backend selection is automatic and degrades
gracefully: the vector backend is used only when the protocol declares a
kernel, NumPy is importable (it stays an **optional** dependency — nothing
in this module imports it at module load), and the engine semantics the
kernel encodes (stock transition chain, stock ``choose_rule``, actions that
preserve state validity) actually hold; otherwise the existing sparse/batch
dict paths run unchanged.

Equivalence with the reference engine (same configurations, selections,
enabled sets, activation records, truncation) is pinned by
``tests/test_engine_equivalence.py`` and ``tests/test_vector_kernel.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import SimulationError
from ..graphs import Graph
from ..types import VertexId, VertexStateLike
from .daemons import Daemon
from .execution import DeltaLog, Execution, LazyActivations
from .protocol import ActivationRecord, Protocol
from .rules import Rule
from .state import Configuration

__all__ = [
    "ArrayCodec",
    "ArrayKernel",
    "ArrayStateView",
    "GraphIndex",
    "IntCodec",
    "IntTupleCodec",
    "TiledGraphIndex",
    "VectorEngine",
    "numpy_available",
    "protocol_supports_vector",
    "tile_block_positions",
    "tile_block_values",
    "vector_eligible",
]


def numpy_available() -> bool:
    """Whether NumPy can be imported *right now*.

    Evaluated dynamically on every call (a successful import of an
    already-loaded module is a dict lookup) so test harnesses can prove the
    graceful degradation path by stubbing ``sys.modules["numpy"]``.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def vector_eligible(protocol: Protocol) -> bool:
    """The cheap (non-instantiating) half of the vector-backend contract.

    True when the *semantics* the kernel encodes hold and NumPy is
    importable:

    * NumPy importable (optional dependency — this is checked first so
      capability hooks may assume it when called);
    * the stock transition semantics (same precondition as the incremental
      engine — the kernel replaces the whole guard/firing chain);
    * the stock ``choose_rule`` (the kernel hard-codes the
      first-enabled-rule arbitration the base class implements);
    * firing re-validation impossible or waived
      (``actions_preserve_validity`` or a stock ``validate_state``) — the
      vector firing path does not call back into Python per vertex.

    Says nothing about the protocol actually *declaring* the capability;
    callers that need the codec/kernel probe them directly afterwards (so
    the objects are built once and used, never built-and-discarded).
    """
    if not numpy_available():
        return False
    if not protocol.has_stock_transitions():
        return False
    if type(protocol).choose_rule is not Protocol.choose_rule:
        return False
    return (
        protocol.actions_preserve_validity
        or type(protocol).validate_state is Protocol.validate_state
    )


def protocol_supports_vector(protocol: Protocol) -> bool:
    """Whether ``protocol`` can run on the vectorized array-state backend.

    :func:`vector_eligible` plus the protocol actually declaring both an
    :meth:`~repro.core.Protocol.array_codec` and an
    :meth:`~repro.core.Protocol.array_kernel`.  Probing instantiates (and
    discards) the capability objects — engine code paths use
    :func:`vector_eligible` + a direct probe instead, keeping exactly one
    construction per engine.
    """
    return (
        vector_eligible(protocol)
        and protocol.array_codec() is not None
        and protocol.array_kernel() is not None
    )


class GraphIndex:
    """CSR-style integer indexing of a (fixed) communication graph.

    Attributes
    ----------
    vertices:
        Row position -> vertex id (same order as ``graph.vertices``).
    position:
        Vertex id -> row position.
    indptr, indices:
        Classic CSR adjacency: the neighbours of row ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` (row positions, not ids).
    edge_src:
        Row position of the *owning* vertex for every directed adjacency
        entry, aligned with ``indices`` — ``(edge_src[e], indices[e])``
        enumerates every (vertex, neighbour) pair once per direction.
    """

    __slots__ = ("vertices", "position", "n", "indptr", "indices", "edge_src")

    def __init__(self, graph: Graph) -> None:
        import numpy as np

        self.vertices: Tuple[VertexId, ...] = tuple(graph.vertices)
        self.position: Dict[VertexId, int] = {
            v: i for i, v in enumerate(self.vertices)
        }
        n = self.n = len(self.vertices)
        degrees = [0] * n
        columns: List[int] = []
        for i, v in enumerate(self.vertices):
            neighbors = [self.position[u] for u in graph.neighbors(v)]
            degrees[i] = len(neighbors)
            columns.extend(neighbors)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(degrees, dtype=np.int64), out=self.indptr[1:])
        self.indices = np.asarray(columns, dtype=np.int64)
        self.edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.asarray(degrees, dtype=np.int64)
        )

    # Per-vertex reductions over incident adjacency entries.  ``edge_flags``
    # is a boolean array aligned with ``indices``/``edge_src``; vertices
    # without neighbours reduce over the empty set (any -> False,
    # all -> True), matching Python's any()/all().
    def any_over_edges(self, edge_flags) -> "object":
        """Per-vertex ``any`` of a per-adjacency-entry boolean array."""
        import numpy as np

        return np.bincount(self.edge_src[edge_flags], minlength=self.n) > 0

    def all_over_edges(self, edge_flags) -> "object":
        """Per-vertex ``all`` of a per-adjacency-entry boolean array."""
        import numpy as np

        return np.bincount(self.edge_src[~edge_flags], minlength=self.n) == 0

    # Subset (sparse-refresh) indexing: the same reductions restricted to
    # the adjacency entries of a few rows, so kernels can re-evaluate guards
    # for only the vertices a firing could have affected.
    def subset_edges(self, rows):
        """Adjacency entries of ``rows`` as ``(owner_ranks, neighbor_rows)``.

        ``owner_ranks[e]`` is the *rank into ``rows``* (not the global row
        position) owning entry ``e``; ``neighbor_rows[e]`` is the global row
        position of the neighbour.  Rank-based ownership lets the subset
        reductions below use length-``len(rows)`` bincounts.
        """
        import numpy as np

        starts = self.indptr[rows]
        stops = self.indptr[rows + 1]
        counts = stops - starts
        entries = _concat_ranges(starts, stops, counts)
        owners = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
        return owners, self.indices[entries]

    def any_over_subset(self, owner_ranks, edge_flags, m):
        """Per-rank ``any`` over subset adjacency entries (m = len(rows))."""
        import numpy as np

        return np.bincount(owner_ranks[edge_flags], minlength=m) > 0

    def all_over_subset(self, owner_ranks, edge_flags, m):
        """Per-rank ``all`` over subset adjacency entries (m = len(rows))."""
        import numpy as np

        return np.bincount(owner_ranks[~edge_flags], minlength=m) == 0

    def dirty_rows(self, changed):
        """``changed`` rows plus all their neighbours, sorted and unique.

        Exactly the rows whose guards can differ after a firing that only
        touched ``changed`` (guards are locally checkable by the protocol
        model: a vertex reads its own and its neighbours' states).
        """
        import numpy as np

        starts = self.indptr[changed]
        stops = self.indptr[changed + 1]
        neighbors = self.indices[_concat_ranges(starts, stops, stops - starts)]
        return np.unique(np.concatenate((changed, neighbors)))

    def min_over_edges(self, edge_values, empty):
        """Per-vertex ``min`` of a per-adjacency-entry int array.

        Vertices without neighbours reduce to ``empty``.  Uses ``reduceat``
        over the CSR segment starts; empty segments are masked out rather
        than handed to ``reduceat`` (whose empty-segment semantics return
        the *next* segment's first entry).
        """
        import numpy as np

        out = np.full(self.n, empty, dtype=np.int64)
        counts = self.indptr[1:] - self.indptr[:-1]
        nonempty = counts > 0
        if nonempty.any():
            starts = self.indptr[:-1][nonempty]
            out[nonempty] = np.minimum.reduceat(edge_values, starts)
        return out

    def max_over_edges(self, edge_values, empty):
        """Per-vertex ``max`` of a per-adjacency-entry int array (see
        :meth:`min_over_edges`)."""
        import numpy as np

        out = np.full(self.n, empty, dtype=np.int64)
        counts = self.indptr[1:] - self.indptr[:-1]
        nonempty = counts > 0
        if nonempty.any():
            starts = self.indptr[:-1][nonempty]
            out[nonempty] = np.maximum.reduceat(edge_values, starts)
        return out


class TiledGraphIndex(GraphIndex):
    """``blocks`` disjoint copies of a base :class:`GraphIndex`.

    The batched exact checker (:mod:`repro.verify.batched`) stacks ``B``
    frontier configurations of an ``n``-vertex instance into one
    ``(B·n, width)`` state array and runs the protocol's unmodified
    :class:`ArrayKernel` over it in a single call.  The kernel only ever
    reads the graph through the CSR arrays, so a block-diagonal replication
    of the base adjacency — block ``b`` owning rows ``[b·n, (b+1)·n)`` with
    all edges kept inside the block — makes every array operation compute
    ``B`` independent instances at once.

    Kernels whose :meth:`ArrayKernel.prepare` precomputes *positional*
    arrays from vertex identities (a root row, a ring-predecessor map) must
    detect tiling via :attr:`base`/:attr:`blocks` and tile those arrays with
    per-block offsets; purely structural kernels (unison) work unchanged.

    ``vertices``/``position`` keep the base geometry (block 0): tiled
    indexes are internal to batch expansion and never serve id lookups for
    rows outside block 0.
    """

    __slots__ = ("base", "blocks", "base_n")

    def __init__(self, base: GraphIndex, blocks: int) -> None:
        import numpy as np

        if blocks < 1:
            raise SimulationError("TiledGraphIndex needs at least one block")
        # Fill the GraphIndex slots directly: there is no Graph object with
        # duplicated vertices to construct one from.
        self.base = base
        self.blocks = blocks
        self.base_n = base.n
        self.vertices = base.vertices
        self.position = base.position
        n = self.n = base.n * blocks
        entries = int(base.indices.size)
        degrees = base.indptr[1:] - base.indptr[:-1]
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.tile(degrees, blocks), out=self.indptr[1:])
        row_offsets = np.repeat(
            np.arange(blocks, dtype=np.int64) * base.n, entries
        )
        self.indices = np.tile(base.indices, blocks) + row_offsets
        self.edge_src = np.tile(base.edge_src, blocks) + row_offsets


def tile_block_values(values, index: GraphIndex):
    """``values`` (one entry per base row) tiled across an index's blocks.

    Identity on a plain :class:`GraphIndex`; ``np.tile`` across blocks on a
    :class:`TiledGraphIndex`.  The standard helper for kernels whose
    ``prepare`` builds per-vertex arrays from vertex identities.
    """
    import numpy as np

    if isinstance(index, TiledGraphIndex):
        return np.tile(values, index.blocks)
    return values


def tile_block_positions(positions, index: GraphIndex):
    """Per-base-row *row positions* tiled with per-block offsets.

    For positional arrays (e.g. a ring-predecessor map ``row -> pred row``)
    each block's copy must point inside its own block.
    """
    import numpy as np

    if isinstance(index, TiledGraphIndex):
        offsets = np.repeat(
            np.arange(index.blocks, dtype=np.int64) * index.base_n,
            index.base_n,
        )
        return np.tile(positions, index.blocks) + offsets
    return positions


def _concat_ranges(starts, stops, counts):
    """Concatenation of ``arange(starts[i], stops[i])`` for every ``i``."""
    import numpy as np

    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)


class ArrayCodec(ABC):
    """Fixed-width integer encoding of per-vertex states.

    A protocol whose local state is (isomorphic to) a tuple of ``width``
    machine integers declares a codec; the vector engine keeps the whole
    configuration as one ``(n, width)`` int64 array.  ``decode`` must invert
    ``encode`` *exactly* — the states it returns are compared (and recorded
    in traces) against the Python engines' states.
    """

    #: Number of int64 columns per vertex.
    width: int = 1

    @abstractmethod
    def encode(self, states: Mapping[VertexId, VertexStateLike], order: Sequence[VertexId]):
        """``(len(order), width)`` int64 array of ``states`` in ``order``.

        Raises ``TypeError``/``ValueError``/``OverflowError`` when a state
        does not fit the fixed-width integer layout; the engine treats that
        as "this configuration cannot run vectorized" and falls back.
        """

    @abstractmethod
    def decode(self, rows) -> List[VertexStateLike]:
        """Exact Python states of an ``(m, width)`` array of rows."""


class IntCodec(ArrayCodec):
    """Codec for protocols whose state is a plain Python ``int``."""

    width = 1

    def encode(self, states, order):
        import numpy as np

        array = np.empty((len(order), 1), dtype=np.int64)
        column = array[:, 0]
        for i, vertex in enumerate(order):
            state = states[vertex]
            if not isinstance(state, int) or isinstance(state, bool):
                raise TypeError(f"state {state!r} of {vertex!r} is not a plain int")
            column[i] = state
        return array

    def decode(self, rows):
        return rows[:, 0].tolist()


class IntTupleCodec(ArrayCodec):
    """Codec for states that are fixed-width tuples of ints."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise SimulationError("IntTupleCodec width must be >= 1")
        self.width = width

    def encode(self, states, order):
        import numpy as np

        array = np.empty((len(order), self.width), dtype=np.int64)
        for i, vertex in enumerate(order):
            state = states[vertex]
            if not isinstance(state, tuple) or len(state) != self.width:
                raise TypeError(
                    f"state {state!r} of {vertex!r} is not a {self.width}-int tuple"
                )
            array[i] = state
        return array

    def decode(self, rows):
        return [tuple(row) for row in rows.tolist()]


class ArrayKernel(ABC):
    """A protocol's vectorized transition relation.

    The kernel must implement *exactly* the semantics of the stock engine
    chain on the declared codec's representation:

    * ``enabled_rules`` returns, for every vertex, the position (in
      :attr:`rule_names` order — which must equal ``protocol.rules()``
      order) of its **first** enabled rule, or ``-1`` when disabled.  This
      bakes in the base-class ``choose_rule`` (first enabled rule), which
      is why :func:`protocol_supports_vector` rejects overrides.
    * ``fire`` evaluates the actions of ``rule_ids`` for the ``selected``
      row positions against the *current* ``states`` (atomic-snapshot
      semantics: the engine writes the returned rows back only after the
      call) and returns the ``(len(selected), width)`` new rows.

    Both receive the full ``(n, width)`` state array and the shared
    :class:`GraphIndex`; :meth:`prepare` is called once per engine so
    kernels can precompute index arrays (e.g. Dijkstra's predecessor map).
    """

    #: Rule names in ``protocol.rules()`` order; rule ids index this tuple.
    rule_names: Tuple[str, ...] = ()

    def prepare(self, index: GraphIndex) -> None:
        """One-time hook to precompute kernel-specific index arrays."""

    @abstractmethod
    def enabled_rules(self, states, index: GraphIndex):
        """``(n,)`` int array: first enabled rule id per vertex, -1 if none."""

    @abstractmethod
    def fire(self, states, selected, rule_ids, index: GraphIndex):
        """``(len(selected), width)`` new state rows for ``selected``."""

    def enabled_rules_for(self, states, rows, index: GraphIndex):
        """Optional sparse capability: ``enabled_rules`` restricted to
        ``rows`` (an int64 array of row positions), returning the
        ``(len(rows),)`` first-enabled rule ids.

        Must agree entry-for-entry with ``enabled_rules(states, index)[rows]``
        — the engine patches only these entries of its cached rule-id array
        after a sparse firing, so any divergence is silent state corruption.
        The base implementation returns ``None``, meaning "unsupported":
        the engine then always rescans the full array.
        """
        del states, rows, index
        return None


class ArrayStateView(Mapping[VertexId, VertexStateLike]):
    """A read-only *live* Mapping view of the vector engine's state array.

    The exact analogue of :class:`repro.core.ConfigurationView` for the
    array backend: daemons and ``stop_when`` predicates receive it in
    light-trace mode.  Reads decode through the codec, so callers observe
    ordinary Python states; like every live view it must not be retained
    across steps (call :meth:`snapshot` to pin the current states) and is
    deliberately unhashable.
    """

    __slots__ = ("_index", "_states", "_codec")

    def __init__(self, index: GraphIndex, states, codec: ArrayCodec) -> None:
        self._index = index
        self._states = states
        self._codec = codec

    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        try:
            row = self._index.position[vertex]
        except KeyError:
            raise SimulationError(
                f"configuration has no state for vertex {vertex!r}"
            ) from None
        return self._codec.decode(self._states[row : row + 1])[0]

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._index.vertices)

    def __len__(self) -> int:
        return self._index.n

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._index.position

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    # Live views change under the caller's feet; hashing one would be a
    # correctness trap (same contract as ConfigurationView).
    __hash__ = None  # type: ignore[assignment]

    @property
    def vertex_order(self) -> Tuple[VertexId, ...]:
        """Row position -> vertex id of :meth:`raw_states` (stable per engine)."""
        return self._index.vertices

    def raw_states(self):
        """The live ``(n, width)`` int64 state array, row-aligned with
        :attr:`vertex_order`.

        Read-only contract: callers must neither mutate nor retain it (it
        changes under their feet like the view itself).  This is the hook
        array-aware predicates (e.g. the vectorized privilege count behind
        ``MutualExclusionSpec.is_safe``) use to avoid decoding per vertex.
        """
        return self._states

    def as_dict(self) -> Dict[VertexId, VertexStateLike]:
        """A mutable copy of the current states."""
        return dict(
            zip(self._index.vertices, self._codec.decode(self._states))
        )

    def snapshot(self) -> Configuration:
        """Pin the current states as an immutable :class:`Configuration`."""
        return Configuration._from_trusted_dict(self.as_dict())

    def updated(self, changes: Mapping[VertexId, VertexStateLike]) -> Configuration:
        """An immutable configuration: current states with ``changes`` applied."""
        states = self.as_dict()
        for vertex in changes:
            if vertex not in states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        states.update(changes)
        return Configuration._from_trusted_dict(states)

    def restrict(self, vertices: Iterable[VertexId]) -> Configuration:
        """The (immutable) restriction of the current states to ``vertices``."""
        return self.snapshot().restrict(vertices)

    def differing_vertices(self, other: Configuration) -> Tuple[VertexId, ...]:
        """Vertices whose current states differ from ``other``'s."""
        return self.snapshot().differing_vertices(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArrayStateView(n={self._index.n})"


class _VectorAction(Sequence):
    """One action's raw firing log, decoded from arrays on demand.

    Behaves as the sequence of raw ``(vertex, rule_name, old, new)`` tuples
    :class:`~repro.core.LazyActivations` consumes, but stores only the four
    compact arrays the engine already produced.  ``len`` never decodes, so
    aggregate walks (``moves()``) stay array-cheap; iterating decodes the
    whole action in bulk (four ``tolist`` calls), which only happens when a
    caller actually inspects that action's records.
    """

    __slots__ = ("_selected", "_rule_ids", "_old", "_new", "_vertices", "_names", "_codec")

    def __init__(self, selected, rule_ids, old, new, vertices, names, codec) -> None:
        self._selected = selected
        self._rule_ids = rule_ids
        self._old = old
        self._new = new
        self._vertices = vertices
        self._names = names
        self._codec = codec

    def __len__(self) -> int:
        return int(self._selected.size)

    def _decoded(self) -> List[tuple]:
        return list(
            zip(
                map(self._vertices.__getitem__, self._selected.tolist()),
                map(self._names.__getitem__, self._rule_ids.tolist()),
                self._codec.decode(self._old),
                self._codec.decode(self._new),
            )
        )

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._decoded())

    def __getitem__(self, position):
        return self._decoded()[position]


class _SuperstepReplayer:
    """Deterministic re-execution of a superstep run from its checkpoints.

    The superstep path records only periodic state-array snapshots; every
    per-step artefact (configurations, deltas, activation records) is
    reconstructed on demand by replaying the kernel forward from the nearest
    checkpoint at or before the requested index.  The kernel is a pure
    function of the state array, so the replay is bit-identical to the
    original run.

    One mutable cursor (``_states``/``_rule_ids`` positioned at
    configuration ``_at``) is kept; sequential access — the dominant pattern
    through ``LazyConfigurationTrace.iter_from`` and aggregate walks — costs
    one kernel step per index, and a random access costs at most one
    checkpoint load plus ``superstep`` kernel steps.
    """

    __slots__ = (
        "_codec",
        "_kernel",
        "_index",
        "_checkpoints",
        "_refresh",
        "_at",
        "_states",
        "_rule_ids",
    )

    def __init__(self, codec, kernel, index, checkpoints, refresh) -> None:
        self._codec = codec
        self._kernel = kernel
        self._index = index
        #: step -> pristine state-array snapshot (never handed out).
        self._checkpoints: Dict[int, object] = checkpoints
        #: ``(rule_ids, states, selected, changed_rows) -> rule_ids`` — the
        #: engine's (possibly sparse) guard-refresh, shared so replays take
        #: the same fast paths as the original run.
        self._refresh = refresh
        self._at = -1
        self._states = None
        self._rule_ids = None

    def _load(self, step: int) -> None:
        self._states = self._checkpoints[step].copy()
        self._rule_ids = self._kernel.enabled_rules(self._states, self._index)
        self._at = step

    def seek(self, step: int) -> None:
        """Position the cursor on configuration ``step``."""
        if self._at == step:
            return
        if self._at < 0 or step < self._at:
            base = max(k for k in self._checkpoints if k <= step)
            self._load(base)
        else:
            nearer = [k for k in self._checkpoints if self._at < k <= step]
            if nearer:
                self._load(max(nearer))
        while self._at < step:
            self._advance()

    def _advance(self):
        """Fire one synchronous step on the cursor; returns the step data
        ``(selected, rule_ids, old_rows, new_rows)`` of the transition."""
        import numpy as np

        rule_ids = self._rule_ids
        pos = np.flatnonzero(rule_ids != -1)
        rids = rule_ids[pos]
        old_rows = self._states[pos]
        new_rows = self._kernel.fire(self._states, pos, rids, self._index)
        changed_rows = np.any(new_rows != old_rows, axis=1)
        if bool(changed_rows.any()):
            self._states[pos] = new_rows
            self._rule_ids = self._refresh(
                rule_ids, self._states, pos, changed_rows
            )
        self._at += 1
        return pos, rids, old_rows, new_rows

    # -- accessors (all position the cursor as a side effect) --------------
    def step_data(self, step: int):
        """``(selected, rule_ids, old_rows, new_rows)`` of action ``step``.

        All four arrays are fresh copies safe to retain; the cursor ends on
        configuration ``step + 1`` so sequential action walks replay each
        step exactly once.
        """
        self.seek(step)
        return self._advance()

    def states_at(self, step: int):
        """The live cursor array at configuration ``step`` (do not retain)."""
        self.seek(step)
        return self._states

    def configuration_at(self, step: int) -> Configuration:
        """Configuration ``step`` as an immutable decoded snapshot."""
        self.seek(step)
        return Configuration._from_trusted_dict(
            dict(zip(self._index.vertices, self._codec.decode(self._states)))
        )

    def view_at(self, step: int) -> ArrayStateView:
        """A live :class:`ArrayStateView` of configuration ``step``.

        Valid only until the cursor moves — consume immediately.
        """
        self.seek(step)
        return ArrayStateView(self._index, self._states, self._codec)


class _SuperstepActionLog(Sequence):
    """Per-action :class:`_VectorAction` sequence reconstructed by replay.

    The raw log handed to :class:`~repro.core.LazyActivations` by the
    superstep path: ``log[i]`` replays action ``i`` through the shared
    :class:`_SuperstepReplayer` and wraps its step data in the same
    :class:`_VectorAction` the single-step path records eagerly.
    """

    __slots__ = ("_replayer", "_counts", "_vertices", "_names", "_codec")

    def __init__(self, replayer, counts, vertices, names, codec) -> None:
        self._replayer = replayer
        self._counts = counts
        self._vertices = vertices
        self._names = names
        self._codec = codec

    def __len__(self) -> int:
        return len(self._counts)

    def _position_index(self, index: int) -> int:
        if index < 0:
            index += len(self._counts)
        if not 0 <= index < len(self._counts):
            raise IndexError(f"action index {index} out of range")
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = self._position_index(index)
        selected, rule_ids, old_rows, new_rows = self._replayer.step_data(index)
        return _VectorAction(
            selected, rule_ids, old_rows, new_rows,
            self._vertices, self._names, self._codec,
        )

    def activated_positions(self, index: int):
        """Row positions fired by action ``index`` (no state decoding)."""
        return self._replayer.step_data(self._position_index(index))[0]


class _SuperstepActivations(LazyActivations):
    """:class:`LazyActivations` whose aggregates avoid replaying.

    ``moves()`` reads the per-step selection counts the superstep loop
    recorded as plain ints, and ``activated_vertices`` maps replayed row
    positions straight to vertex ids without decoding any state — keeping
    round counting on big-n light traces out of the codec entirely.
    """

    __slots__ = ()

    def moves(self) -> int:
        return sum(self._raw._counts)

    def activated_vertices(self, index: int):
        raw = self._raw
        positions = raw.activated_positions(index)
        return set(map(raw._vertices.__getitem__, positions.tolist()))


class _SuperstepDeltaLog(DeltaLog):
    """Per-action ``{vertex: new_state}`` deltas reconstructed by replay.

    What the superstep path hands to :class:`LazyConfigurationTrace` in
    light-trace mode — the :class:`~repro.core.DeltaLog` marker keeps the
    trace from materializing every delta up front.
    """

    __slots__ = ("_log",)

    def __init__(self, log: _SuperstepActionLog) -> None:
        self._log = log

    def __len__(self) -> int:
        return len(self._log)

    def __getitem__(self, index):
        import numpy as np

        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        log = self._log
        selected, _rule_ids, old_rows, new_rows = log._replayer.step_data(
            log._position_index(index)
        )
        changed_rows = np.any(new_rows != old_rows, axis=1)
        if not bool(changed_rows.any()):
            return {}
        if bool(changed_rows.all()):
            changed, changed_new = selected, new_rows
        else:
            changed = selected[changed_rows]
            changed_new = new_rows[changed_rows]
        return dict(
            zip(
                map(log._vertices.__getitem__, changed.tolist()),
                log._codec.decode(changed_new),
            )
        )


class VectorEngine:
    """Array-state runner with the :class:`IncrementalEngine` run contract.

    One instance per protocol; stateless between runs.  Each step is a
    constant number of whole-array operations: guard evaluation through the
    protocol's :class:`ArrayKernel`, firing through vectorized actions, and
    O(Δ)-in-C bookkeeping for the trace.  The enabled frozenset is rebuilt
    only when the enabled *membership* actually changed (in the dense
    steady state — unison under the synchronous daemon — it never does).
    """

    __slots__ = (
        "_protocol",
        "_index",
        "_codec",
        "_kernel",
        "_subset_refresh",
        "last_final_configuration",
    )

    #: Default superstep cadence: K synchronous steps executed per kernel
    #: block, and one state-array checkpoint retained per block boundary.
    DEFAULT_SUPERSTEP = 64

    #: Sparse-refresh density threshold: after a firing whose changed rows
    #: plus their neighbourhood ("dirty" rows) cover less than
    #: ``n / _SPARSE_REFRESH`` of the graph, guards are re-evaluated for the
    #: dirty rows only (when the kernel declares ``enabled_rules_for``);
    #: denser firings rescan the whole array, whose per-row constants are
    #: lower.
    _SPARSE_REFRESH = 2

    def __init__(
        self,
        protocol: Protocol,
        codec: Optional[ArrayCodec] = None,
        kernel: Optional[ArrayKernel] = None,
    ) -> None:
        """``codec``/``kernel`` let the caller hand over already-probed
        capability objects instead of having them instantiated twice."""
        self._protocol = protocol
        codec = codec if codec is not None else protocol.array_codec()
        kernel = kernel if kernel is not None else protocol.array_kernel()
        if codec is None or kernel is None:
            raise SimulationError(
                f"protocol {protocol.name!r} declares no array codec/kernel"
            )
        names = tuple(rule.name for rule in protocol.rules())
        if tuple(kernel.rule_names) != names:
            raise SimulationError(
                f"array kernel rule names {tuple(kernel.rule_names)!r} do not "
                f"match protocol rules {names!r}"
            )
        self._index = GraphIndex(protocol.graph)
        self._codec = codec
        self._kernel = kernel
        kernel.prepare(self._index)
        self._subset_refresh = (
            type(kernel).enabled_rules_for is not ArrayKernel.enabled_rules_for
        )
        #: The final configuration of the most recent run (None before the
        #: first).  Mirrors ``IncrementalEngine.last_final_configuration`` so
        #: segment-wise callers never replay a light trace for its endpoint.
        self.last_final_configuration: Optional[Configuration] = None

    def encode_initial(self, initial: Configuration):
        """``initial`` as an ``(n, width)`` array, or None when it does not
        fit the codec's fixed-width integer layout (the caller then falls
        back to the dict-based paths)."""
        if set(initial) != set(self._index.vertices):
            raise SimulationError(
                "initial configuration is not over the protocol's vertex set"
            )
        try:
            return self._codec.encode(initial, self._index.vertices)
        except (TypeError, ValueError, OverflowError):
            return None

    def run(
        self,
        daemon: Daemon,
        rng,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
        initial_array=None,
    ) -> Execution:
        """Run up to ``max_steps`` actions from ``initial``.

        Same contract (and same observable executions) as
        ``IncrementalEngine.run``; ``initial_array`` lets the caller pass a
        pre-encoded state array so backend selection can probe the codec
        without encoding twice.
        """
        import numpy as np

        if trace not in {"full", "light"}:
            raise SimulationError(f"unknown trace mode {trace!r}")
        states = initial_array if initial_array is not None else self.encode_initial(initial)
        if states is None:
            raise SimulationError(
                "initial configuration does not fit the protocol's array codec"
            )
        index = self._index
        codec = self._codec
        kernel = self._kernel
        vertices = index.vertices
        rule_name_list = kernel.rule_names

        light = trace == "light"
        live_view = ArrayStateView(index, states, codec) if light else None
        configurations: List[Configuration] = [initial]
        selections: List[FrozenSet[VertexId]] = []
        actions: List[_VectorAction] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        deltas: List[Dict[VertexId, VertexStateLike]] = []
        truncated = True

        current = initial
        rule_ids = kernel.enabled_rules(states, index)
        mask_cached = None
        enabled_fs: FrozenSet[VertexId] = frozenset()
        enabled_pos = None
        for step_index in range(max_steps + 1):
            mask = rule_ids != -1
            if mask_cached is None or not np.array_equal(mask, mask_cached):
                mask_cached = mask
                enabled_pos = np.flatnonzero(mask)
                if enabled_pos.size == index.n:
                    enabled_fs = frozenset(vertices)
                else:
                    enabled_fs = frozenset(
                        map(vertices.__getitem__, enabled_pos.tolist())
                    )
            enabled_sets.append(enabled_fs)
            observed = live_view if light else current
            if stop_when is not None and stop_when(observed, step_index):
                truncated = True
                break
            if not enabled_fs:
                truncated = False
                break
            if step_index == max_steps:
                truncated = True
                break
            selection = daemon.checked_select(enabled_fs, observed, step_index, rng)

            # A selection the size of the enabled set *is* the enabled set
            # (checked_select guarantees selection ⊆ enabled), so the dense
            # fast path reuses the cached position array.
            if len(selection) == len(enabled_fs):
                selected = enabled_pos
            else:
                position = index.position
                selected = np.fromiter(
                    (position[v] for v in selection),
                    dtype=np.int64,
                    count=len(selection),
                )
            rids = rule_ids[selected]
            old_rows = states[selected]  # fancy indexing copies: the atomic snapshot
            new_rows = kernel.fire(states, selected, rids, index)
            changed_rows = np.any(new_rows != old_rows, axis=1)
            any_change = bool(changed_rows.any())
            if any_change:
                states[selected] = new_rows

            selections.append(selection)
            actions.append(
                _VectorAction(
                    selected, rids, old_rows, new_rows, vertices, rule_name_list, codec
                )
            )
            if light:
                if any_change:
                    if bool(changed_rows.all()):
                        changed, changed_new = selected, new_rows
                    else:
                        changed = selected[changed_rows]
                        changed_new = new_rows[changed_rows]
                    deltas.append(
                        dict(
                            zip(
                                map(vertices.__getitem__, changed.tolist()),
                                codec.decode(changed_new),
                            )
                        )
                    )
                else:
                    deltas.append({})
            else:
                if any_change:
                    current = Configuration._from_trusted_dict(
                        dict(zip(vertices, codec.decode(states)))
                    )
                configurations.append(current)
            if any_change:
                rule_ids = self._refresh_rule_ids(
                    rule_ids, states, selected, changed_rows
                )

        if light:
            self.last_final_configuration = Configuration._from_trusted_dict(
                dict(zip(vertices, codec.decode(states)))
            )
        else:
            self.last_final_configuration = current
        activations = LazyActivations(actions)
        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
                deltas=deltas,
            )
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )

    def _refresh_rule_ids(self, rule_ids, states, selected, changed_rows):
        """Post-firing guard refresh: sparse when the firing was sparse.

        Re-evaluates guards only for the changed rows and their neighbours
        when the kernel declares the subset capability and the dirty set is
        below the :attr:`_SPARSE_REFRESH` density threshold; otherwise (or
        always, for subset-less kernels) rescans the full array.  Patches
        ``rule_ids`` in place and returns it — entry-for-entry identical to
        a full rescan by the ``enabled_rules_for`` exactness contract.
        """
        kernel = self._kernel
        index = self._index
        n = index.n
        # Quick pre-check before building the dirty set: a selection this
        # large cannot have a sub-threshold neighbourhood.
        if not self._subset_refresh or int(selected.size) * 6 >= n:
            return kernel.enabled_rules(states, index)
        changed = selected if bool(changed_rows.all()) else selected[changed_rows]
        dirty = index.dirty_rows(changed)
        if int(dirty.size) * self._SPARSE_REFRESH >= n:
            return kernel.enabled_rules(states, index)
        rule_ids[dirty] = kernel.enabled_rules_for(states, dirty, index)
        return rule_ids

    def run_supersteps(
        self,
        daemon: Daemon,
        rng,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
        initial_array=None,
        superstep: Optional[int] = None,
    ) -> Execution:
        """Run up to ``max_steps`` *synchronous* actions in kernel blocks.

        Same contract — and bit-identical observable executions — as
        :meth:`run` under a synchronous daemon, but executes ``superstep``
        (default :attr:`DEFAULT_SUPERSTEP`) steps per block as pure array
        operations: no daemon call, no per-step trace recording, no per-step
        ``stop_when``.  What makes that sound is ``daemon.synchronous``: the
        selection of every step is the full enabled set, so the schedule is
        deterministic and there is no per-step decision to consult.

        * **Traces** record one state-array checkpoint per block boundary;
          per-step configurations, deltas and activation records are
          reconstructed on demand by replaying the (deterministic) kernel
          from the nearest checkpoint (:class:`_SuperstepReplayer`), so
          memory stays O(n · steps / superstep) instead of O(n · steps).
        * **stop_when** is evaluated in batch at block boundaries: a second
          cursor replays the block's configurations strictly in order,
          handing each to the predicate with its exact step index — so
          stateful in-order observers (``SafetyMonitor``) work unchanged —
          and a trigger at step ``t`` rolls the recorded run back to exactly
          the prefix the single-step engine would have kept.
        * **Terminal detection** stays in-kernel: an empty enabled mask ends
          the block early (``truncated=False``), and a fixed point (enabled
          vertices whose firing changes nothing) fast-forwards the remaining
          budget without further kernel work when no ``stop_when`` needs
          per-index evaluation.
        """
        import numpy as np

        if trace not in {"full", "light"}:
            raise SimulationError(f"unknown trace mode {trace!r}")
        if not daemon.synchronous:
            raise SimulationError(
                "run_supersteps requires a synchronous daemon: batched "
                "superstep execution skips per-step daemon selection"
            )
        if superstep is None:
            superstep = self.DEFAULT_SUPERSTEP
        if superstep < 1:
            raise SimulationError(f"superstep cadence must be >= 1, got {superstep}")
        states = (
            initial_array if initial_array is not None else self.encode_initial(initial)
        )
        if states is None:
            raise SimulationError(
                "initial configuration does not fit the protocol's array codec"
            )
        index = self._index
        codec = self._codec
        kernel = self._kernel
        vertices = index.vertices
        light = trace == "light"

        enabled_sets: List[FrozenSet[VertexId]] = []
        step_counts: List[int] = []
        checkpoints: Dict[int, object] = {0: states.copy()}
        replayer = _SuperstepReplayer(
            codec, kernel, index, checkpoints, self._refresh_rule_ids
        )
        # The boundary stop_when scan keeps its own strictly sequential
        # cursor so the main loop's state array (which runs ahead of the
        # scanned index) is never observed by the predicate.
        scanner = (
            _SuperstepReplayer(codec, kernel, index, checkpoints, self._refresh_rule_ids)
            if stop_when is not None
            else None
        )
        scanned_to = -1

        def scan_until(limit: int) -> Optional[int]:
            """First index in ``scanned_to+1 .. limit`` where ``stop_when``
            fires (observing replayed configurations in order), or None."""
            nonlocal scanned_to
            while scanned_to < limit:
                target = scanned_to + 1
                observed = (
                    scanner.view_at(target)
                    if light
                    else scanner.configuration_at(target)
                )
                if stop_when(observed, target):
                    return target
                scanned_to = target
            return None

        steps = 0
        truncated = True
        rule_ids = kernel.enabled_rules(states, index)
        mask_cached = None
        enabled_fs: FrozenSet[VertexId] = frozenset()
        enabled_pos = None
        stop_at: Optional[int] = None
        while True:
            mask = rule_ids != -1
            if mask_cached is None or not np.array_equal(mask, mask_cached):
                mask_cached = mask
                enabled_pos = np.flatnonzero(mask)
                if enabled_pos.size == index.n:
                    enabled_fs = frozenset(vertices)
                else:
                    enabled_fs = frozenset(
                        map(vertices.__getitem__, enabled_pos.tolist())
                    )
            enabled_sets.append(enabled_fs)
            # Batched stop_when: at each block boundary (and at entry, for
            # index 0) replay the block just executed strictly in order and
            # hand every configuration to the predicate with its exact step
            # index.  Scanning *after* recording the boundary's enabled set
            # keeps rollback prefixes complete.
            if stop_when is not None and steps % superstep == 0:
                stop_at = scan_until(steps)
                if stop_at is not None:
                    break
            if not enabled_fs:
                truncated = False
                break
            if steps == max_steps:
                truncated = True
                break
            rids = rule_ids[enabled_pos]
            old_rows = states[enabled_pos]  # fancy indexing copies: atomic snapshot
            new_rows = kernel.fire(states, enabled_pos, rids, index)
            changed_rows = np.any(new_rows != old_rows, axis=1)
            any_change = bool(changed_rows.any())
            if any_change:
                states[enabled_pos] = new_rows
                rule_ids = self._refresh_rule_ids(
                    rule_ids, states, enabled_pos, changed_rows
                )
            step_counts.append(int(enabled_pos.size))
            steps += 1
            if not any_change and stop_when is None:
                # Fixed point: enabled vertices whose firing changes nothing.
                # Every remaining step is this exact step — record it
                # wholesale instead of spinning the kernel.
                checkpoints[steps] = states.copy()
                remaining = max_steps - steps
                enabled_sets.extend([enabled_fs] * remaining)
                step_counts.extend([step_counts[-1]] * remaining)
                steps = max_steps
                enabled_sets.append(enabled_fs)
                truncated = True
                break
            if steps % superstep == 0:
                checkpoints[steps] = states.copy()
        if stop_when is not None and stop_at is None:
            # Scan the tail block (terminal, budget-exhausted, or partial).
            stop_at = scan_until(steps)
        if stop_at is not None:
            # Roll back to exactly the prefix the single-step engine keeps
            # when stop_when fires at stop_at: stop_at completed steps, the
            # enabled set of stop_at recorded, truncated.
            steps = stop_at
            truncated = True
            del enabled_sets[steps + 1 :]
            del step_counts[steps:]
            for key in [k for k in checkpoints if k > steps]:
                del checkpoints[key]
            # The live state array ran ahead of the rollback point; the
            # replayer reconstructs the kept prefix's endpoint.
            self.last_final_configuration = replayer.configuration_at(steps)
        else:
            self.last_final_configuration = Configuration._from_trusted_dict(
                dict(zip(vertices, codec.decode(states)))
            )

        selections = enabled_sets[:steps]
        action_log = _SuperstepActionLog(
            replayer, step_counts, vertices, kernel.rule_names, codec
        )
        activations = _SuperstepActivations(action_log)
        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
                deltas=_SuperstepDeltaLog(action_log),
            )
        configurations: List[Configuration] = [initial]
        current = initial
        for step_index in range(steps):
            _selected, _rids, old_rows, new_rows = replayer.step_data(step_index)
            if bool(np.any(new_rows != old_rows)):
                current = replayer.configuration_at(step_index + 1)
            configurations.append(current)
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )
