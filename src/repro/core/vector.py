"""The NumPy-vectorized array-state engine backend (the "vector kernel").

The incremental engine of :mod:`repro.core.engine` wins big in the sparse
regime (central-style daemons: O(Δ) per action), but in the *dense* regime —
the synchronous daemon, dense distributed daemons — every action dirties
essentially every vertex, so each step still pays n Python guard calls plus
n Python firing calls.  That per-step cost is exactly what the paper's
headline experiments (Theorem 2 synchronous sweeps, Theorem 3 adversarial
sweeps) are bound by at scale.

This module replaces the whole per-step scan by a handful of array
operations for protocols whose per-vertex state is a fixed small tuple of
machine integers (unison clocks, Dijkstra/SSME token counters):

* :class:`GraphIndex` — the communication graph flattened once into
  CSR-style neighbour index arrays (``indptr``/``indices``/``edge_src``);
* :class:`ArrayCodec` — encodes a configuration into an ``(n, k)`` int64
  array and decodes rows back into exact Python states
  (:class:`IntCodec` for plain-int states, :class:`IntTupleCodec` for
  fixed-width int tuples);
* :class:`ArrayKernel` — the protocol-declared vectorized transition
  relation: ``enabled_rules(states, index)`` returns, per vertex, the
  position of its *first* enabled rule (or -1), and
  ``fire(states, selected, rule_ids, index)`` returns the new state rows of
  the selected vertices — both as whole-array computations;
* :class:`VectorEngine` — a drop-in runner with the exact
  ``IncrementalEngine.run`` contract built on the above.

Protocols opt in through the capability API
:meth:`repro.core.Protocol.array_codec` / :meth:`~repro.core.Protocol.array_kernel`
(both return None by default).  Backend selection is automatic and degrades
gracefully: the vector backend is used only when the protocol declares a
kernel, NumPy is importable (it stays an **optional** dependency — nothing
in this module imports it at module load), and the engine semantics the
kernel encodes (stock transition chain, stock ``choose_rule``, actions that
preserve state validity) actually hold; otherwise the existing sparse/batch
dict paths run unchanged.

Equivalence with the reference engine (same configurations, selections,
enabled sets, activation records, truncation) is pinned by
``tests/test_engine_equivalence.py`` and ``tests/test_vector_kernel.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import SimulationError
from ..graphs import Graph
from ..types import VertexId, VertexStateLike
from .daemons import Daemon
from .execution import Execution, LazyActivations
from .protocol import ActivationRecord, Protocol
from .rules import Rule
from .state import Configuration

__all__ = [
    "ArrayCodec",
    "ArrayKernel",
    "ArrayStateView",
    "GraphIndex",
    "IntCodec",
    "IntTupleCodec",
    "VectorEngine",
    "numpy_available",
    "protocol_supports_vector",
    "vector_eligible",
]


def numpy_available() -> bool:
    """Whether NumPy can be imported *right now*.

    Evaluated dynamically on every call (a successful import of an
    already-loaded module is a dict lookup) so test harnesses can prove the
    graceful degradation path by stubbing ``sys.modules["numpy"]``.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def vector_eligible(protocol: Protocol) -> bool:
    """The cheap (non-instantiating) half of the vector-backend contract.

    True when the *semantics* the kernel encodes hold and NumPy is
    importable:

    * NumPy importable (optional dependency — this is checked first so
      capability hooks may assume it when called);
    * the stock transition semantics (same precondition as the incremental
      engine — the kernel replaces the whole guard/firing chain);
    * the stock ``choose_rule`` (the kernel hard-codes the
      first-enabled-rule arbitration the base class implements);
    * firing re-validation impossible or waived
      (``actions_preserve_validity`` or a stock ``validate_state``) — the
      vector firing path does not call back into Python per vertex.

    Says nothing about the protocol actually *declaring* the capability;
    callers that need the codec/kernel probe them directly afterwards (so
    the objects are built once and used, never built-and-discarded).
    """
    if not numpy_available():
        return False
    if not protocol.has_stock_transitions():
        return False
    if type(protocol).choose_rule is not Protocol.choose_rule:
        return False
    return (
        protocol.actions_preserve_validity
        or type(protocol).validate_state is Protocol.validate_state
    )


def protocol_supports_vector(protocol: Protocol) -> bool:
    """Whether ``protocol`` can run on the vectorized array-state backend.

    :func:`vector_eligible` plus the protocol actually declaring both an
    :meth:`~repro.core.Protocol.array_codec` and an
    :meth:`~repro.core.Protocol.array_kernel`.  Probing instantiates (and
    discards) the capability objects — engine code paths use
    :func:`vector_eligible` + a direct probe instead, keeping exactly one
    construction per engine.
    """
    return (
        vector_eligible(protocol)
        and protocol.array_codec() is not None
        and protocol.array_kernel() is not None
    )


class GraphIndex:
    """CSR-style integer indexing of a (fixed) communication graph.

    Attributes
    ----------
    vertices:
        Row position -> vertex id (same order as ``graph.vertices``).
    position:
        Vertex id -> row position.
    indptr, indices:
        Classic CSR adjacency: the neighbours of row ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` (row positions, not ids).
    edge_src:
        Row position of the *owning* vertex for every directed adjacency
        entry, aligned with ``indices`` — ``(edge_src[e], indices[e])``
        enumerates every (vertex, neighbour) pair once per direction.
    """

    __slots__ = ("vertices", "position", "n", "indptr", "indices", "edge_src")

    def __init__(self, graph: Graph) -> None:
        import numpy as np

        self.vertices: Tuple[VertexId, ...] = tuple(graph.vertices)
        self.position: Dict[VertexId, int] = {
            v: i for i, v in enumerate(self.vertices)
        }
        n = self.n = len(self.vertices)
        degrees = [0] * n
        columns: List[int] = []
        for i, v in enumerate(self.vertices):
            neighbors = [self.position[u] for u in graph.neighbors(v)]
            degrees[i] = len(neighbors)
            columns.extend(neighbors)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(degrees, dtype=np.int64), out=self.indptr[1:])
        self.indices = np.asarray(columns, dtype=np.int64)
        self.edge_src = np.repeat(
            np.arange(n, dtype=np.int64), np.asarray(degrees, dtype=np.int64)
        )

    # Per-vertex reductions over incident adjacency entries.  ``edge_flags``
    # is a boolean array aligned with ``indices``/``edge_src``; vertices
    # without neighbours reduce over the empty set (any -> False,
    # all -> True), matching Python's any()/all().
    def any_over_edges(self, edge_flags) -> "object":
        """Per-vertex ``any`` of a per-adjacency-entry boolean array."""
        import numpy as np

        return np.bincount(self.edge_src[edge_flags], minlength=self.n) > 0

    def all_over_edges(self, edge_flags) -> "object":
        """Per-vertex ``all`` of a per-adjacency-entry boolean array."""
        import numpy as np

        return np.bincount(self.edge_src[~edge_flags], minlength=self.n) == 0


class ArrayCodec(ABC):
    """Fixed-width integer encoding of per-vertex states.

    A protocol whose local state is (isomorphic to) a tuple of ``width``
    machine integers declares a codec; the vector engine keeps the whole
    configuration as one ``(n, width)`` int64 array.  ``decode`` must invert
    ``encode`` *exactly* — the states it returns are compared (and recorded
    in traces) against the Python engines' states.
    """

    #: Number of int64 columns per vertex.
    width: int = 1

    @abstractmethod
    def encode(self, states: Mapping[VertexId, VertexStateLike], order: Sequence[VertexId]):
        """``(len(order), width)`` int64 array of ``states`` in ``order``.

        Raises ``TypeError``/``ValueError``/``OverflowError`` when a state
        does not fit the fixed-width integer layout; the engine treats that
        as "this configuration cannot run vectorized" and falls back.
        """

    @abstractmethod
    def decode(self, rows) -> List[VertexStateLike]:
        """Exact Python states of an ``(m, width)`` array of rows."""


class IntCodec(ArrayCodec):
    """Codec for protocols whose state is a plain Python ``int``."""

    width = 1

    def encode(self, states, order):
        import numpy as np

        array = np.empty((len(order), 1), dtype=np.int64)
        column = array[:, 0]
        for i, vertex in enumerate(order):
            state = states[vertex]
            if not isinstance(state, int) or isinstance(state, bool):
                raise TypeError(f"state {state!r} of {vertex!r} is not a plain int")
            column[i] = state
        return array

    def decode(self, rows):
        return rows[:, 0].tolist()


class IntTupleCodec(ArrayCodec):
    """Codec for states that are fixed-width tuples of ints."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise SimulationError("IntTupleCodec width must be >= 1")
        self.width = width

    def encode(self, states, order):
        import numpy as np

        array = np.empty((len(order), self.width), dtype=np.int64)
        for i, vertex in enumerate(order):
            state = states[vertex]
            if not isinstance(state, tuple) or len(state) != self.width:
                raise TypeError(
                    f"state {state!r} of {vertex!r} is not a {self.width}-int tuple"
                )
            array[i] = state
        return array

    def decode(self, rows):
        return [tuple(row) for row in rows.tolist()]


class ArrayKernel(ABC):
    """A protocol's vectorized transition relation.

    The kernel must implement *exactly* the semantics of the stock engine
    chain on the declared codec's representation:

    * ``enabled_rules`` returns, for every vertex, the position (in
      :attr:`rule_names` order — which must equal ``protocol.rules()``
      order) of its **first** enabled rule, or ``-1`` when disabled.  This
      bakes in the base-class ``choose_rule`` (first enabled rule), which
      is why :func:`protocol_supports_vector` rejects overrides.
    * ``fire`` evaluates the actions of ``rule_ids`` for the ``selected``
      row positions against the *current* ``states`` (atomic-snapshot
      semantics: the engine writes the returned rows back only after the
      call) and returns the ``(len(selected), width)`` new rows.

    Both receive the full ``(n, width)`` state array and the shared
    :class:`GraphIndex`; :meth:`prepare` is called once per engine so
    kernels can precompute index arrays (e.g. Dijkstra's predecessor map).
    """

    #: Rule names in ``protocol.rules()`` order; rule ids index this tuple.
    rule_names: Tuple[str, ...] = ()

    def prepare(self, index: GraphIndex) -> None:
        """One-time hook to precompute kernel-specific index arrays."""

    @abstractmethod
    def enabled_rules(self, states, index: GraphIndex):
        """``(n,)`` int array: first enabled rule id per vertex, -1 if none."""

    @abstractmethod
    def fire(self, states, selected, rule_ids, index: GraphIndex):
        """``(len(selected), width)`` new state rows for ``selected``."""


class ArrayStateView(Mapping[VertexId, VertexStateLike]):
    """A read-only *live* Mapping view of the vector engine's state array.

    The exact analogue of :class:`repro.core.ConfigurationView` for the
    array backend: daemons and ``stop_when`` predicates receive it in
    light-trace mode.  Reads decode through the codec, so callers observe
    ordinary Python states; like every live view it must not be retained
    across steps (call :meth:`snapshot` to pin the current states) and is
    deliberately unhashable.
    """

    __slots__ = ("_index", "_states", "_codec")

    def __init__(self, index: GraphIndex, states, codec: ArrayCodec) -> None:
        self._index = index
        self._states = states
        self._codec = codec

    def __getitem__(self, vertex: VertexId) -> VertexStateLike:
        try:
            row = self._index.position[vertex]
        except KeyError:
            raise SimulationError(
                f"configuration has no state for vertex {vertex!r}"
            ) from None
        return self._codec.decode(self._states[row : row + 1])[0]

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._index.vertices)

    def __len__(self) -> int:
        return self._index.n

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._index.position

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    # Live views change under the caller's feet; hashing one would be a
    # correctness trap (same contract as ConfigurationView).
    __hash__ = None  # type: ignore[assignment]

    def as_dict(self) -> Dict[VertexId, VertexStateLike]:
        """A mutable copy of the current states."""
        return dict(
            zip(self._index.vertices, self._codec.decode(self._states))
        )

    def snapshot(self) -> Configuration:
        """Pin the current states as an immutable :class:`Configuration`."""
        return Configuration._from_trusted_dict(self.as_dict())

    def updated(self, changes: Mapping[VertexId, VertexStateLike]) -> Configuration:
        """An immutable configuration: current states with ``changes`` applied."""
        states = self.as_dict()
        for vertex in changes:
            if vertex not in states:
                raise SimulationError(f"cannot update unknown vertex {vertex!r}")
        states.update(changes)
        return Configuration._from_trusted_dict(states)

    def restrict(self, vertices: Iterable[VertexId]) -> Configuration:
        """The (immutable) restriction of the current states to ``vertices``."""
        return self.snapshot().restrict(vertices)

    def differing_vertices(self, other: Configuration) -> Tuple[VertexId, ...]:
        """Vertices whose current states differ from ``other``'s."""
        return self.snapshot().differing_vertices(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArrayStateView(n={self._index.n})"


class _VectorAction(Sequence):
    """One action's raw firing log, decoded from arrays on demand.

    Behaves as the sequence of raw ``(vertex, rule_name, old, new)`` tuples
    :class:`~repro.core.LazyActivations` consumes, but stores only the four
    compact arrays the engine already produced.  ``len`` never decodes, so
    aggregate walks (``moves()``) stay array-cheap; iterating decodes the
    whole action in bulk (four ``tolist`` calls), which only happens when a
    caller actually inspects that action's records.
    """

    __slots__ = ("_selected", "_rule_ids", "_old", "_new", "_vertices", "_names", "_codec")

    def __init__(self, selected, rule_ids, old, new, vertices, names, codec) -> None:
        self._selected = selected
        self._rule_ids = rule_ids
        self._old = old
        self._new = new
        self._vertices = vertices
        self._names = names
        self._codec = codec

    def __len__(self) -> int:
        return int(self._selected.size)

    def _decoded(self) -> List[tuple]:
        return list(
            zip(
                map(self._vertices.__getitem__, self._selected.tolist()),
                map(self._names.__getitem__, self._rule_ids.tolist()),
                self._codec.decode(self._old),
                self._codec.decode(self._new),
            )
        )

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._decoded())

    def __getitem__(self, position):
        return self._decoded()[position]


class VectorEngine:
    """Array-state runner with the :class:`IncrementalEngine` run contract.

    One instance per protocol; stateless between runs.  Each step is a
    constant number of whole-array operations: guard evaluation through the
    protocol's :class:`ArrayKernel`, firing through vectorized actions, and
    O(Δ)-in-C bookkeeping for the trace.  The enabled frozenset is rebuilt
    only when the enabled *membership* actually changed (in the dense
    steady state — unison under the synchronous daemon — it never does).
    """

    __slots__ = ("_protocol", "_index", "_codec", "_kernel")

    def __init__(
        self,
        protocol: Protocol,
        codec: Optional[ArrayCodec] = None,
        kernel: Optional[ArrayKernel] = None,
    ) -> None:
        """``codec``/``kernel`` let the caller hand over already-probed
        capability objects instead of having them instantiated twice."""
        self._protocol = protocol
        codec = codec if codec is not None else protocol.array_codec()
        kernel = kernel if kernel is not None else protocol.array_kernel()
        if codec is None or kernel is None:
            raise SimulationError(
                f"protocol {protocol.name!r} declares no array codec/kernel"
            )
        names = tuple(rule.name for rule in protocol.rules())
        if tuple(kernel.rule_names) != names:
            raise SimulationError(
                f"array kernel rule names {tuple(kernel.rule_names)!r} do not "
                f"match protocol rules {names!r}"
            )
        self._index = GraphIndex(protocol.graph)
        self._codec = codec
        self._kernel = kernel
        kernel.prepare(self._index)

    def encode_initial(self, initial: Configuration):
        """``initial`` as an ``(n, width)`` array, or None when it does not
        fit the codec's fixed-width integer layout (the caller then falls
        back to the dict-based paths)."""
        if set(initial) != set(self._index.vertices):
            raise SimulationError(
                "initial configuration is not over the protocol's vertex set"
            )
        try:
            return self._codec.encode(initial, self._index.vertices)
        except (TypeError, ValueError, OverflowError):
            return None

    def run(
        self,
        daemon: Daemon,
        rng,
        initial: Configuration,
        max_steps: int,
        stop_when: Optional[Callable[[Configuration, int], bool]] = None,
        trace: str = "full",
        initial_array=None,
    ) -> Execution:
        """Run up to ``max_steps`` actions from ``initial``.

        Same contract (and same observable executions) as
        ``IncrementalEngine.run``; ``initial_array`` lets the caller pass a
        pre-encoded state array so backend selection can probe the codec
        without encoding twice.
        """
        import numpy as np

        if trace not in {"full", "light"}:
            raise SimulationError(f"unknown trace mode {trace!r}")
        states = initial_array if initial_array is not None else self.encode_initial(initial)
        if states is None:
            raise SimulationError(
                "initial configuration does not fit the protocol's array codec"
            )
        index = self._index
        codec = self._codec
        kernel = self._kernel
        vertices = index.vertices
        rule_name_list = kernel.rule_names

        light = trace == "light"
        live_view = ArrayStateView(index, states, codec) if light else None
        configurations: List[Configuration] = [initial]
        selections: List[FrozenSet[VertexId]] = []
        actions: List[_VectorAction] = []
        enabled_sets: List[FrozenSet[VertexId]] = []
        deltas: List[Dict[VertexId, VertexStateLike]] = []
        truncated = True

        current = initial
        rule_ids = kernel.enabled_rules(states, index)
        mask_cached = None
        enabled_fs: FrozenSet[VertexId] = frozenset()
        enabled_pos = None
        for step_index in range(max_steps + 1):
            mask = rule_ids != -1
            if mask_cached is None or not np.array_equal(mask, mask_cached):
                mask_cached = mask
                enabled_pos = np.flatnonzero(mask)
                if enabled_pos.size == index.n:
                    enabled_fs = frozenset(vertices)
                else:
                    enabled_fs = frozenset(
                        map(vertices.__getitem__, enabled_pos.tolist())
                    )
            enabled_sets.append(enabled_fs)
            observed = live_view if light else current
            if stop_when is not None and stop_when(observed, step_index):
                truncated = True
                break
            if not enabled_fs:
                truncated = False
                break
            if step_index == max_steps:
                truncated = True
                break
            selection = daemon.checked_select(enabled_fs, observed, step_index, rng)

            # A selection the size of the enabled set *is* the enabled set
            # (checked_select guarantees selection ⊆ enabled), so the dense
            # fast path reuses the cached position array.
            if len(selection) == len(enabled_fs):
                selected = enabled_pos
            else:
                position = index.position
                selected = np.fromiter(
                    (position[v] for v in selection),
                    dtype=np.int64,
                    count=len(selection),
                )
            rids = rule_ids[selected]
            old_rows = states[selected]  # fancy indexing copies: the atomic snapshot
            new_rows = kernel.fire(states, selected, rids, index)
            changed_rows = np.any(new_rows != old_rows, axis=1)
            any_change = bool(changed_rows.any())
            if any_change:
                states[selected] = new_rows

            selections.append(selection)
            actions.append(
                _VectorAction(
                    selected, rids, old_rows, new_rows, vertices, rule_name_list, codec
                )
            )
            if light:
                if any_change:
                    if bool(changed_rows.all()):
                        changed, changed_new = selected, new_rows
                    else:
                        changed = selected[changed_rows]
                        changed_new = new_rows[changed_rows]
                    deltas.append(
                        dict(
                            zip(
                                map(vertices.__getitem__, changed.tolist()),
                                codec.decode(changed_new),
                            )
                        )
                    )
                else:
                    deltas.append({})
            else:
                if any_change:
                    current = Configuration._from_trusted_dict(
                        dict(zip(vertices, codec.decode(states)))
                    )
                configurations.append(current)
            if any_change:
                rule_ids = kernel.enabled_rules(states, index)

        activations = LazyActivations(actions)
        if light:
            return Execution.from_activations(
                initial=initial,
                selections=selections,
                activations=activations,
                enabled_sets=enabled_sets,
                truncated=truncated,
                deltas=deltas,
            )
        return Execution(
            configurations=configurations,
            selections=selections,
            activations=activations,
            enabled_sets=enabled_sets,
            truncated=truncated,
        )
