"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so that
callers can catch library-specific failures with a single ``except`` clause
while still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class GraphError(ReproError):
    """Raised when a communication graph is malformed or an operation on it
    receives invalid arguments (unknown vertex, self-loop, ...)."""


class ClockError(ReproError):
    """Raised when a bounded-clock value or parameter is invalid (value
    outside ``cherry(alpha, K)``, non-positive ``alpha``, ``K < 2``, ...)."""


class ProtocolError(ReproError):
    """Raised when a protocol is mis-configured (e.g. identifier set is not
    ``{0, ..., n-1}``) or a rule produces an invalid state."""


class DaemonError(ReproError):
    """Raised when a daemon makes an illegal selection (empty set while
    vertices are enabled, selecting a disabled vertex, ...)."""


class SimulationError(ReproError):
    """Raised when an execution cannot be carried out (horizon exhausted
    while a result was required, inconsistent configuration, ...)."""


class SpecificationError(ReproError):
    """Raised when a specification check receives an execution it cannot
    evaluate (e.g. empty trace)."""


class ConstructionError(ReproError):
    """Raised by the lower-bound machinery when the splicing construction of
    Theorem 4 cannot be applied (balls overlap, no privileged step found,
    ...)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on invalid experiment parameters."""


class JobError(ReproError):
    """Raised by the job service layer (:mod:`repro.jobs`): malformed job
    specs, unresolvable runners, or a worker-pool task failure (in which
    case the message carries the task index and a ``repr`` of the task,
    and ``__cause__`` is the original worker exception)."""


class VerificationError(ReproError):
    """Raised by the exact model checker (:mod:`repro.verify`) when an
    instance cannot be verified exactly (missing ``vertex_state_space``
    capability, state space or daemon-class expansion exceeding its caps,
    malformed initial region, ...)."""
