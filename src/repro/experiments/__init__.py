"""Experiment harness: one driver per paper artefact (see DESIGN.md §3)."""

from .runner import ExperimentReport
from .workloads import mutex_workload, perturbed_configurations, random_configurations
from .faults import FAULT_MODELS, FAULT_MODEL_PARAMS, apply_fault
from .parallel import parallel_map
from . import (
    ablation_privilege_spacing,
    adaptive_speculation,
    dijkstra_comparison,
    exact_small_n,
    fault_campaigns,
    figure1_clock,
    table_speculative_examples,
    theorem2_sync_upper,
    theorem3_async_upper,
    theorem4_lower_bound,
)
from .reporting import (
    EXPERIMENT_DRIVERS,
    ExperimentDriver,
    render_experiments_markdown,
    run_all_experiments,
)

__all__ = [
    "EXPERIMENT_DRIVERS",
    "ExperimentDriver",
    "ExperimentReport",
    "FAULT_MODELS",
    "FAULT_MODEL_PARAMS",
    "ablation_privilege_spacing",
    "adaptive_speculation",
    "apply_fault",
    "dijkstra_comparison",
    "exact_small_n",
    "fault_campaigns",
    "figure1_clock",
    "mutex_workload",
    "parallel_map",
    "perturbed_configurations",
    "random_configurations",
    "render_experiments_markdown",
    "run_all_experiments",
    "table_speculative_examples",
    "theorem2_sync_upper",
    "theorem3_async_upper",
    "theorem4_lower_bound",
]
