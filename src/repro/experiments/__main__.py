"""Command-line entry point: regenerate the full paper-vs-measured report.

Usage::

    python -m repro.experiments                 # run every experiment, print the report
    python -m repro.experiments E3 E5           # run a subset
    python -m repro.experiments --write PATH    # also write the Markdown report to PATH
                                                # (use EXPERIMENTS.md at the repo root)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .reporting import EXPERIMENT_DRIVERS, render_experiments_markdown, run_all_experiments


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables, figures and theorem checks.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(EXPERIMENT_DRIVERS) + [[]],
        help="experiment ids to run (default: all of E1..E8)",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="write the Markdown report (EXPERIMENTS.md format) to PATH",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the theorem2/theorem3 trial sweeps across this many "
        "processes (results are identical; default: sequential)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="cap the sweep sizes of the theorem2/theorem3/dijkstra "
        "drivers (e.g. --max-n 100 skips the n >= 1000 superstep rows; "
        "default: run the full sweeps up to n = 10000)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="override the per-graph step budget of the theorem2/theorem3 "
        "drivers (default: per-graph, one clock period for small graphs, "
        "a few Theorem 2 bounds in the large-n safety-only regime)",
    )
    args = parser.parse_args(argv)

    selected: Optional[List[str]] = list(args.experiments) or None
    reports = run_all_experiments(
        only=selected,
        workers=args.workers,
        max_n=args.max_n,
        horizon=args.horizon,
    )
    for report in reports:
        print(report.to_text())
        print()
    if args.write:
        markdown = render_experiments_markdown(reports)
        with open(args.write, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {args.write}")
    return 0 if all(report.passed for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
