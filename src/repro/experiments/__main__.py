"""Command-line entry point: regenerate the full paper-vs-measured report.

Usage::

    python -m repro.experiments                 # run every experiment, print the report
    python -m repro.experiments E3 E5           # run a subset
    python -m repro.experiments --write PATH    # also write the Markdown report to PATH
                                                # (use EXPERIMENTS.md at the repo root)

Caching and resume (job-based drivers E3/E4/E6/E8/E9)::

    python -m repro.experiments --cache .repro-cache   # content-addressed result cache:
                                                       # repeats re-simulate nothing and an
                                                       # interrupted run resumes from its
                                                       # completed jobs — just re-run it
    python -m repro.experiments --no-cache             # escape hatch: run everything fresh
    python -m repro.experiments --refresh              # recompute and rewrite cache entries
    python -m repro.experiments --progress             # stream per-job progress to stderr

Cache inspection::

    python -m repro.experiments jobs list              # cached job results
    python -m repro.experiments jobs status            # per-sweep journal progress
    python -m repro.experiments jobs clear-cache       # drop the cache (and journals)

Fault-campaign scenarios (the E9 registry)::

    python -m repro.experiments scenarios list             # named campaign workloads
    python -m repro.experiments scenarios list --tier smoke
    python -m repro.experiments scenarios run NAME         # run one campaign
    python -m repro.experiments scenarios run NAME --engine reference --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..jobs import Journal, ProgressEvent, ResultStore
from ..jobs.store import DEFAULT_CACHE_DIR
from .reporting import EXPERIMENT_DRIVERS, render_experiments_markdown, run_all_experiments


def _progress_printer(event: ProgressEvent) -> None:
    if event.kind not in ("hit", "done"):
        return
    tag = "cache hit" if event.cached else "computed"
    label = event.spec.describe() if event.spec is not None else ""
    print(
        f"[{event.completed}/{event.total}] {tag}  {label}",
        file=sys.stderr,
    )


def jobs_main(argv: Sequence[str]) -> int:
    """The ``jobs`` subcommand: inspect and manage the result cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments jobs",
        description="Inspect and manage the content-addressed result cache.",
    )
    parser.add_argument(
        "action",
        choices=("list", "status", "clear-cache"),
        help="list cached job results, show per-sweep journal progress, "
        "or drop the whole cache",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    args = parser.parse_args(list(argv))
    store = ResultStore(args.cache)

    if args.action == "list":
        count = 0
        for spec_key in store.keys():
            entry = store.entry(spec_key)
            spec = entry.get("spec", {})
            print(
                f"{spec_key[:16]}  runner={spec.get('runner', '?')}  "
                f"protocol={spec.get('protocol', '?')}  graph={spec.get('graph')}  "
                f"daemon={spec.get('daemon')}  version={spec.get('code_version', '?')}"
            )
            count += 1
        print(f"{count} cached result(s) in {store.root}")
        return 0

    if args.action == "status":
        summaries = Journal(store.root).status()
        if not summaries:
            print(f"no sweep journals in {store.root}")
            return 0
        for summary in summaries:
            state = "complete" if summary["complete"] else "partial"
            label = f" label={summary['label']}" if summary["label"] else ""
            print(
                f"sweep {summary['sweep_key'][:16]}  {summary['done']}/"
                f"{summary['total']} jobs done  [{state}]{label}"
            )
        return 0

    # clear-cache
    count = store.clear()
    print(f"cleared {count} cached result(s) from {store.root}")
    return 0


def scenarios_main(argv: Sequence[str]) -> int:
    """The ``scenarios`` subcommand: list and run named fault campaigns."""
    from ..scenarios import get_scenario, list_scenarios

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments scenarios",
        description="List and run the named fault-campaign scenarios (E9).",
    )
    subcommands = parser.add_subparsers(dest="action", required=True)
    list_parser = subcommands.add_parser(
        "list", help="list registered scenarios (name, tier, shape)"
    )
    list_parser.add_argument(
        "--tier",
        choices=("smoke", "full"),
        default=None,
        help="only scenarios of this tier",
    )
    run_parser = subcommands.add_parser("run", help="run one scenario campaign")
    run_parser.add_argument("name", help="registered scenario name")
    run_parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "adaptive", "reference", "incremental", "vector", "vector-superstep"),
        help="simulation engine backend (default: auto)",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print the full campaign result as JSON instead of a summary",
    )
    args = parser.parse_args(list(argv))

    if args.action == "list":
        scenarios = list_scenarios(args.tier)
        for scenario in scenarios:
            shape = []
            if scenario.schedule is not None:
                shape.append(f"{scenario.schedule.kind} {scenario.fault_model}")
            if scenario.churn:
                shape.append(f"{len(scenario.churn)} churn event(s)")
            print(
                f"{scenario.name:38s} [{scenario.tier:5s}] "
                f"{scenario.protocol}/{scenario.topology}({scenario.n}) "
                f"daemon={scenario.daemon} horizon={scenario.horizon}  "
                f"{'; '.join(shape) or 'no events'}"
            )
        print(f"{len(scenarios)} scenario(s)")
        return 0

    # run
    scenario = get_scenario(args.name)
    result = scenario.run(engine=args.engine)
    data = result.to_dict()
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"scenario {scenario.name}: {scenario.description}")
        print(
            f"  graph {scenario.topology}({scenario.n}) -> n={data['final_n']}, "
            f"daemon={scenario.daemon}, horizon={data['horizon']}, "
            f"engine={args.engine}"
        )
        print(
            f"  availability={data['availability']:.4f}  "
            f"longest_unsafe_window={data['longest_unsafe_window']}  "
            f"max_recovery={data['max_recovery']}  "
            f"final_safe={data['final_safe']}"
        )
        for event in data["events"]:
            recovery = (
                f"recovered in {event['recovery_time']}"
                if event["recovery_time"] is not None
                else f"NOT recovered within window ({event['window']})"
            )
            print(
                f"  step {event['step']:>4}  {event['kind']:5s} "
                f"{event['detail']:40s} {recovery}"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "jobs":
        return jobs_main(argv[1:])
    if argv and argv[0] == "scenarios":
        return scenarios_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables, figures and theorem checks.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(EXPERIMENT_DRIVERS) + [[]],
        help="experiment ids to run (default: all of E1..E10)",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="write the Markdown report (EXPERIMENTS.md format) to PATH",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the job-based sweeps (E3/E4/E6/E8/E9/E10) across this many "
        "processes (results are identical; default: sequential)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="cap the sweep sizes of the theorem2/theorem3/dijkstra "
        "drivers (e.g. --max-n 100 skips the n >= 1000 superstep rows; "
        "default: run the full sweeps up to n = 10000)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="override the per-graph step budget of the theorem2/theorem3 "
        "drivers (default: per-graph, one clock period for small graphs, "
        "a few Theorem 2 bounds in the large-n safety-only regime)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed result cache for the job-based drivers: "
        "repeated runs re-simulate nothing, interrupted runs resume from "
        f"completed jobs (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely (run everything fresh, "
        "persist nothing)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore existing cache entries: recompute every job and "
        "rewrite its entry",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-job progress (cache hit / computed) to stderr",
    )
    args = parser.parse_args(argv)

    selected: Optional[List[str]] = list(args.experiments) or None
    reports = run_all_experiments(
        only=selected,
        workers=args.workers,
        max_n=args.max_n,
        horizon=args.horizon,
        cache=None if args.no_cache else args.cache,
        refresh=args.refresh,
        progress=_progress_printer if args.progress else None,
    )
    for report in reports:
        print(report.to_text())
        print()
    if args.write:
        markdown = render_experiments_markdown(reports)
        with open(args.write, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote {args.write}")
    return 0 if all(report.passed for report in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
