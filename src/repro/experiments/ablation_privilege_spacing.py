"""E7 (ablation) — why SSME spaces privileged values ``2·diam(g)`` apart.

This is not a table of the paper; it ablates the design choice DESIGN.md
singles out.  Algorithm 1 grants the privilege on the clock values
``2n + 2·diam(g)·id_v``.  Safety inside the legitimate set Γ₁ (Theorem 1)
needs any two privileged values to sit further apart on the clock circle
than the graph distance between their owners — and because identities are
*arbitrary* (the protocol cannot choose which process gets which
identifier), two consecutively-numbered processes may be a full diameter
apart.  A spacing of at most ``diam(g)`` therefore admits, for an
adversarial identity assignment, *legitimate* configurations with two
privileges: the protocol is broken forever, not merely slow.  The paper's
``2·diam(g)`` spacing is safe for every identity assignment (and is what
makes the ``⌈diam/2⌉`` synchronous bound of Theorem 2 go through).

The ablation runs on path graphs whose identities are assigned
adversarially (consecutive identifiers on opposite ends of the path), sweeps
the spacing around ``diam(g)``, and reports

* the analytic Γ₁-safety verdict,
* when unsafe, an explicit legitimate configuration with two privileges and
  the number of unsafe configurations observed during one full clock period
  of its synchronous execution — the violation happens *after* the unison
  substrate has fully stabilized, so it is a failure of the protocol itself,
  not a transient that convergence would eventually repair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core import Simulator, SynchronousDaemon
from ..graphs import Graph, diameter, path_graph
from ..mutex import MutualExclusionSpec
from ..mutex.variants import ParametricClockMutex
from ..types import VertexId
from .runner import ExperimentReport

__all__ = ["run_experiment", "adversarial_identity_assignment", "EXPERIMENT_ID", "DEFAULT_PATH_SIZES"]

EXPERIMENT_ID = "E7"

#: Path sizes used for the ablation.
DEFAULT_PATH_SIZES = (7, 11)


def adversarial_identity_assignment(graph: Graph) -> Dict[VertexId, int]:
    """An identity assignment that places consecutive identifiers far apart.

    Vertices are ordered by their distance from one endpoint of a diametral
    pair and identities are then handed out alternately from the two ends of
    that order (``closest, farthest, second-closest, second-farthest, ...``),
    so the owners of identities ``0`` and ``1`` are a full diameter apart.
    Identities being arbitrary in the model, this assignment is perfectly
    legal and a correct protocol must tolerate it.
    """
    from ..graphs import diameter_endpoints

    source, _ = diameter_endpoints(graph)
    distances = graph.bfs_distances(source)
    ordered = sorted(graph.vertices, key=lambda w: (distances[w], repr(w)))
    interleaved: List[VertexId] = []
    low, high = 0, len(ordered) - 1
    while low <= high:
        interleaved.append(ordered[low])
        if low != high:
            interleaved.append(ordered[high])
        low += 1
        high -= 1
    return {vertex: identity for identity, vertex in enumerate(interleaved)}


def _violations_in_one_period(
    protocol: ParametricClockMutex, specification: MutualExclusionSpec
) -> int:
    """Count unsafe configurations during one synchronous clock period
    starting from the unsafe legitimate configuration."""
    gamma = protocol.unsafe_legitimate_configuration()
    execution = Simulator(protocol, SynchronousDaemon()).run(gamma, max_steps=protocol.K + 2)
    return sum(
        1
        for index in range(execution.steps + 1)
        if not specification.is_safe(execution.configuration(index), protocol)
    )


def run_experiment(
    path_sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> ExperimentReport:
    """Sweep the privilege spacing around ``diam(g)`` with adversarial identities."""
    del seed  # the experiment is fully deterministic
    path_sizes = list(path_sizes) if path_sizes is not None else list(DEFAULT_PATH_SIZES)
    rows: List[Dict[str, object]] = []
    passed = True
    for n in path_sizes:
        graph = path_graph(n)
        diam = diameter(graph)
        identities = adversarial_identity_assignment(graph)
        for spacing in (max(1, diam - 1), diam, diam + 1, 2 * diam):
            protocol = ParametricClockMutex(graph, spacing=spacing, identities=identities)
            specification = MutualExclusionSpec(protocol)
            safe = protocol.guarantees_safety_in_gamma1()
            expected_safe = spacing > diam
            violations = None
            if not safe:
                violations = _violations_in_one_period(protocol, specification)
            row_ok = safe == expected_safe and (safe or (violations or 0) > 0)
            passed = passed and row_ok
            rows.append(
                {
                    "n": n,
                    "diam": diam,
                    "spacing": spacing,
                    "paper_choice": spacing == 2 * diam,
                    "K": protocol.K,
                    "safe_in_gamma1": safe,
                    "violations_per_period": violations,
                    "as_expected": row_ok,
                }
            )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Ablation — spacing of the privileged clock values",
        paper_claim=(
            "Algorithm 1 spaces privileged values 2·diam(g) apart; any spacing "
            "<= diam(g) admits (for some identity assignment) legitimate "
            "configurations with two simultaneous privileges"
        ),
        rows=rows,
        summary={
            "safety_boundary_at_diam_plus_1": all(
                row["safe_in_gamma1"] == (row["spacing"] > row["diam"]) for row in rows
            ),
        },
        passed=passed,
        notes=[
            "Identities are assigned adversarially (consecutive identifiers at "
            "the two ends of the path); the model allows any assignment, so a "
            "correct protocol must survive this one.",
            "This experiment is an ablation of a design choice, not a table of "
            "the paper.",
        ],
    )
