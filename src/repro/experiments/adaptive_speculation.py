"""E10 — adaptive speculation: online regime switching vs the static bests.

The paper's speculation story is static: pick the rule set (and, in this
library, the engine backend) once, up front, for the schedule you *expect*.
:mod:`repro.adaptive` makes both choices online.  This experiment pins the
adaptive layer against the static optima it is supposed to match:

* **engine equivalence** — ``Simulator(engine="adaptive")`` on a
  regime-switching workload (alternating synchronous and sparse phases)
  must produce the *bit-identical* trajectory of every fixed backend:
  same step count, same moves, same selection stream, same final
  configuration.  Adaptivity is a pure performance decision; this is the
  correctness half of that claim (the wall-clock half lives in
  ``benchmarks/bench_adaptive.py``).
* **protocol vs certified optimum** — on rings small enough for the exact
  checker, :class:`~repro.adaptive.AdaptiveProtocol` (speculative SSME with
  a conservative clock-mutex fallback) runs under the synchronous daemon
  from the certified workload region.  Its worst observed stabilization
  must stay within a stated factor (1.0) of the certified
  :func:`~repro.verify.exact_speculation_gap` optimum — the exact
  synchronous worst case of pure SSME — because under a dense schedule the
  detector keeps the speculative rule set active and the adaptive run *is*
  the static best.  The same rows re-measure the static
  :func:`~repro.core.measure_speculation` gap so the certified/static/
  adaptive triangle is closed on one instance.
* **protocol under regime switching** — the same adaptive protocol driven
  by a regime-switching daemon must keep its self-stabilization story:
  rule-set switches happen only at configurations valid for both rule
  sets, and the run must end legitimate with safety holding from its
  stabilization point on.

Every row is one declarative :class:`~repro.jobs.JobSpec` executed through
a :class:`~repro.jobs.Dispatcher`, so the expensive exact solves are
cached, resumable after a kill, and byte-identical under ``workers=N``.
All reported numbers are deterministic (no wall-clock anywhere).
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adaptive import AdaptiveProtocol
from ..core import (
    CentralDaemon,
    RegimeSwitchingDaemon,
    Simulator,
    SynchronousDaemon,
    measure_speculation,
)
from ..graphs import ring_graph
from ..jobs import Dispatcher, JobSpec
from ..mutex import SSME, MutualExclusionSpec
from ..verify import exact_speculation_gap
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = [
    "run_experiment",
    "emit_jobs",
    "run_job",
    "EXPERIMENT_ID",
    "CODE_VERSION",
]

EXPERIMENT_ID = "E10"

#: Folded into every emitted spec's ``spec_key``; bump on any change to
#: the adaptive engine/protocol semantics these rows measure.
CODE_VERSION = "adaptive-speculation/1"

_RUNNER = "repro.experiments.adaptive_speculation:run_job"

#: The stated factor of the certified optimum the adaptive protocol must
#: stay within under the dense (synchronous) schedule.  It is 1.0 — not a
#: tolerance band — because a correct detector never abandons the
#: speculative rule set while the schedule it speculates on persists.
STATED_FACTOR = 1.0


def _checksum(items: Any) -> str:
    """Short deterministic digest of any JSON-serializable structure."""
    blob = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]


def _trajectory_facts(execution, simulator: Simulator) -> Dict[str, Any]:
    """The backend-independent identity of one run's trajectory."""
    final = execution.final
    selections = [sorted(execution.selection(i)) for i in range(execution.steps)]
    return {
        "steps": execution.steps,
        "truncated": execution.truncated,
        "moves": execution.moves(),
        "final_checksum": _checksum(sorted(final.as_dict().items())),
        "selections_checksum": _checksum(selections),
        "backend": simulator.last_run_backend,
    }


def _engine_equivalence_row(
    n: int,
    dense_steps: int,
    sparse_steps: int,
    horizon: int,
    initial_seed: int,
    daemon_seed: int,
) -> Dict[str, Any]:
    """Adaptive vs fixed-backend trajectories on a regime-switch workload."""
    protocol = SSME(ring_graph(n))
    initial = protocol.random_configuration(random.Random(initial_seed))
    facts: Dict[str, Dict[str, Any]] = {}
    switch_count = 0
    for engine in ("incremental", "adaptive"):
        simulator = Simulator(
            SSME(ring_graph(n)),
            RegimeSwitchingDaemon(dense_steps, sparse_steps),
            rng=random.Random(daemon_seed),
            engine=engine,
            trace="light",
        )
        execution = simulator.run(initial, max_steps=horizon)
        facts[engine] = _trajectory_facts(execution, simulator)
        if engine == "adaptive":
            switch_count = len(simulator.last_run_switches or ())
    reference, adaptive = facts["incremental"], facts["adaptive"]
    equivalent = all(
        reference[key] == adaptive[key]
        for key in ("steps", "truncated", "moves", "final_checksum", "selections_checksum")
    )
    return {
        "kind": "engine-equivalence",
        "instance": f"ring({n})",
        "daemon": f"regime-switch({dense_steps},{sparse_steps})",
        "horizon": horizon,
        "steps": adaptive["steps"],
        "moves": adaptive["moves"],
        "final_checksum": adaptive["final_checksum"],
        "selections_checksum": adaptive["selections_checksum"],
        "equivalent": equivalent,
        # Environment-dependent (vector backends need NumPy) — reported for
        # context, excluded from the cross-environment bench headline.
        "adaptive_switches": switch_count,
        "certified": equivalent,
    }


def _protocol_gap_row(n: int, random_count: int, workload_seed: int) -> Dict[str, Any]:
    """Certified optimum vs static measurement vs adaptive protocol."""
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(protocol, random.Random(workload_seed), random_count=random_count)

    certificate = exact_speculation_gap(
        protocol, specification, "central", "synchronous", workload
    )
    weak_exact = certificate.weak.exact_worst_case

    static = measure_speculation(
        protocol,
        specification,
        CentralDaemon,
        SynchronousDaemon,
        workload,
        strong_horizon=4 * protocol.graph.n * (protocol.alpha + protocol.diam) + 40,
        weak_horizon=protocol.K + 4 * protocol.alpha + 16,
        rng=random.Random(workload_seed),
        trace="light",
    )

    adaptive = AdaptiveProtocol(ring_graph(n))
    horizon = (weak_exact if weak_exact is not None else protocol.K) + 16
    adaptive_worst: Optional[int] = 0
    adaptive_legitimacy = 0
    for initial in workload:
        run = adaptive.run(
            adaptive.speculative.configuration(initial.as_dict()),
            SynchronousDaemon(),
            max_steps=horizon,
        )
        if not run.final_legitimate:
            adaptive_worst = None
            break
        # The library-wide stabilization metric is safety-based (the
        # SafetyMonitor index the sampler and the exact checker both use);
        # Γ₁ legitimacy is reported alongside for context.
        adaptive_worst = max(adaptive_worst, run.safety_index)
        adaptive_legitimacy = max(adaptive_legitimacy, run.stabilization_index)
    ratio = (
        adaptive_worst / weak_exact
        if adaptive_worst is not None and weak_exact not in (None, 0)
        else (0.0 if adaptive_worst == 0 else None)
    )
    within = ratio is not None and ratio <= STATED_FACTOR
    return {
        "kind": "protocol-gap",
        "instance": f"ring({n})",
        "daemon": "synchronous (dense regime)",
        "exact_strong_steps": certificate.strong.exact_worst_case,
        "exact_weak_steps": weak_exact,
        "exact_gap_factor": certificate.gap_factor,
        "speculation_pays": certificate.speculation_pays,
        "static_factor": static.speculation_factor,
        "adaptive_worst_steps": adaptive_worst,
        "adaptive_legitimacy_steps": adaptive_legitimacy if adaptive_worst is not None else None,
        "ratio_to_certified": ratio,
        "within_stated_factor": within,
        "certified": bool(certificate.speculation_pays and within),
    }


def _protocol_switching_row(
    n: int, dense_steps: int, sparse_steps: int, horizon: int, initial_seed: int, daemon_seed: int
) -> Dict[str, Any]:
    """Adaptive protocol under a regime-switching schedule stays stabilizing."""
    adaptive = AdaptiveProtocol(ring_graph(n))
    initial = adaptive.speculative.random_configuration(random.Random(initial_seed))
    run = adaptive.run(
        initial,
        RegimeSwitchingDaemon(dense_steps, sparse_steps),
        max_steps=horizon,
        rng=random.Random(daemon_seed),
    )
    stabilized = run.final_legitimate and run.stabilization_index <= run.steps
    safety_after_stabilization = run.safety_index <= run.stabilization_index
    return {
        "kind": "protocol-switching",
        "instance": f"ring({n})",
        "daemon": f"regime-switch({dense_steps},{sparse_steps})",
        "horizon": horizon,
        "steps": run.steps,
        "moves": run.moves,
        "rule_set_switches": len(run.switches) - 1,
        "stabilization_index": run.stabilization_index,
        "safety_index": run.safety_index,
        "unsafe_configurations": run.unsafe_configurations,
        "final_legitimate": run.final_legitimate,
        "certified": bool(stabilized and safety_after_stabilization),
    }


def run_job(spec: JobSpec) -> Dict[str, Any]:
    """Execute one emitted row spec — a pure function of the spec."""
    kind = spec.param("kind")
    if kind == "engine-equivalence":
        return _engine_equivalence_row(
            spec.graph_item("n"),
            spec.param("dense_steps"),
            spec.param("sparse_steps"),
            spec.horizon,
            *spec.seeds,
        )
    if kind == "protocol-gap":
        return _protocol_gap_row(
            spec.graph_item("n"), spec.param("random_count"), spec.seeds[0]
        )
    if kind == "protocol-switching":
        return _protocol_switching_row(
            spec.graph_item("n"),
            spec.param("dense_steps"),
            spec.param("sparse_steps"),
            spec.horizon,
            *spec.seeds,
        )
    raise ValueError(f"unknown adaptive_speculation job kind {kind!r}")


def emit_jobs(
    engine_sizes: Sequence[int] = (64, 96),
    gap_sizes: Sequence[int] = (4, 5, 6, 7, 8),
    switching_sizes: Sequence[int] = (8, 12),
    random_configurations_per_graph: int = 4,
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[JobSpec]]:
    """One spec per report row, seeds pre-drawn in sequential draw order."""
    rng = random.Random(seed)
    infos: List[Dict[str, Any]] = []
    specs: List[JobSpec] = []

    def _emit(kind, daemon, graph, seeds, horizon=None, params=(), metrics=()):
        specs.append(
            JobSpec(
                runner=_RUNNER,
                code_version=CODE_VERSION,
                protocol="ssme",
                graph=graph,
                daemon=daemon,
                seeds=seeds,
                horizon=horizon,
                metrics=metrics,
                params=(("kind", kind),) + tuple(params),
            )
        )
        infos.append({"kind": kind, "n": dict(graph)["n"]})

    for n in engine_sizes:
        dense, sparse = 48, 96
        _emit(
            "engine-equivalence",
            f"regime-switch({dense},{sparse})",
            {"topology": "ring", "n": n},
            (rng.randrange(2**63), rng.randrange(2**63)),
            horizon=6 * (dense + sparse),
            params=(("dense_steps", dense), ("sparse_steps", sparse)),
            metrics=("equivalent", "steps", "moves"),
        )
    for n in gap_sizes:
        _emit(
            "protocol-gap",
            "central-vs-synchronous",
            {"topology": "ring", "n": n},
            (rng.randrange(2**63),),
            params=(("random_count", random_configurations_per_graph),),
            metrics=("exact_gap_factor", "adaptive_worst_steps", "ratio_to_certified"),
        )
    for n in switching_sizes:
        dense, sparse = 24, 48
        _emit(
            "protocol-switching",
            f"regime-switch({dense},{sparse})",
            {"topology": "ring", "n": n},
            (rng.randrange(2**63), rng.randrange(2**63)),
            horizon=5 * (dense + sparse),
            params=(("dense_steps", dense), ("sparse_steps", sparse)),
            metrics=("rule_set_switches", "stabilization_index", "final_legitimate"),
        )
    return infos, specs


def _aggregate(rows: Sequence[Dict[str, Any]]) -> ExperimentReport:
    engine_rows = [row for row in rows if row["kind"] == "engine-equivalence"]
    gap_rows = [row for row in rows if row["kind"] == "protocol-gap"]
    switch_rows = [row for row in rows if row["kind"] == "protocol-switching"]
    ratios = [
        row["ratio_to_certified"]
        for row in gap_rows
        if row["ratio_to_certified"] is not None
    ]
    summary = {
        "engine_bit_identical_everywhere": all(r["equivalent"] for r in engine_rows),
        "adaptive_within_stated_factor": all(
            r["within_stated_factor"] for r in gap_rows
        ),
        "stated_factor": STATED_FACTOR,
        "worst_ratio_to_certified": max(ratios) if ratios else None,
        "speculation_pays_on_every_ring": all(
            r["speculation_pays"] for r in gap_rows
        ),
        "switching_runs_stabilize": all(r["certified"] for r in switch_rows),
        "all_certified": all(r["certified"] for r in rows),
    }
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Adaptive speculation — online switching vs the static bests",
        paper_claim=(
            "Speculation resolved online matches the statically chosen "
            "optimum: the adaptive engine reproduces every fixed backend's "
            "trajectory bit-for-bit, and the adaptive protocol stays within "
            "the stated factor of the certified exact speculation optimum "
            "under the dense schedule while remaining self-stabilizing "
            "under regime switching"
        ),
        rows=list(rows),
        summary=summary,
        passed=bool(summary["all_certified"]),
        notes=[
            "Engine rows compare step counts, move counts and selection/"
            "final-configuration checksums between engine='adaptive' and "
            "the incremental reference — the checksums are backend- and "
            "NumPy-independent, so the same numbers reproduce on array-less "
            "builds (where the adaptive engine degrades to dict-only).",
            "'adaptive_switches' is the one environment-dependent column "
            "(promotions need the array kernels); it is excluded from the "
            "committed benchmark headline.",
            "Protocol rows run the adaptive SSME/conservative-mutex pair "
            "under the synchronous daemon from the certified workload "
            "region: the detector keeps the speculative rule set active, "
            "so the worst adaptive stabilization equals the certified "
            "synchronous optimum (ratio <= 1.0 by construction, reported "
            "measured, not assumed).",
            "Switching rows drive the adaptive protocol with a regime-"
            "switching daemon: rule-set switches occur only at mutually "
            "valid configurations, so each run must end legitimate with "
            "safety holding from its stabilization point on.",
        ],
    )


def run_experiment(
    engine_sizes: Sequence[int] = (64, 96),
    gap_sizes: Sequence[int] = (4, 5, 6, 7, 8),
    switching_sizes: Sequence[int] = (8, 12),
    random_configurations_per_graph: int = 4,
    seed: int = 0,
    workers: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Pin the adaptive layer against the static optima it must match.

    Rows are emitted as :class:`~repro.jobs.JobSpec`s and executed through
    ``dispatcher`` (or a throwaway one with ``workers`` processes); the
    exact solves on the larger rings cache and resume like every sweep.
    """
    _, specs = emit_jobs(
        engine_sizes=engine_sizes,
        gap_sizes=gap_sizes,
        switching_sizes=switching_sizes,
        random_configurations_per_graph=random_configurations_per_graph,
        seed=seed,
    )
    if dispatcher is None:
        with Dispatcher(workers=workers) as local:
            rows = local.run(specs, label=EXPERIMENT_ID)
    else:
        rows = dispatcher.run(specs, label=EXPERIMENT_ID)
    return _aggregate(rows)
