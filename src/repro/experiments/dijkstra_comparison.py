"""E6 — SSME vs Dijkstra under the synchronous daemon.

The headline claim of the paper (Sections 1 and 4) is that SSME closes a
40-year-old gap: Dijkstra's protocol stabilizes in ``n`` synchronous steps
on a ring, whereas SSME stabilizes in ``⌈diam(g)/2⌉`` — on a ring,
``⌈⌊n/2⌋/2⌉ ≈ n/4`` — and no protocol can do better.  This experiment runs
the two protocols head-to-head on rings of growing size under the
synchronous daemon and reports the measured worst-case stabilization times
and their ratio.

Both protocols are driven by their own worst-case-oriented workloads:
random configurations for Dijkstra (whose worst case is easily reached from
generic corrupted states) plus the adversarial spliced configuration for
SSME (whose worst case random states essentially never reach).

Each (ring size × protocol) worst-case measurement is emitted as one
declarative :class:`~repro.jobs.JobSpec` (workload and seeds pre-drawn in
sequential order) and executed through a :class:`~repro.jobs.Dispatcher`,
so the head-to-head is cacheable, resumable and process-parallel across
ring sizes without changing a single reported number.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from ..core import SynchronousDaemon, worst_case_stabilization
from ..graphs import diameter, ring_graph
from ..jobs import Dispatcher, JobSpec
from ..lowerbound import (
    default_spliced_delays,
    delayed_double_privilege_configuration,
    immediate_double_privilege_configuration,
)
from ..mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from .runner import ExperimentReport
from .theorem2_sync_upper import LARGE_N
from .workloads import mutex_workload, random_configurations

__all__ = ["run_experiment", "emit_jobs", "run_job", "DEFAULT_RING_SIZES", "EXPERIMENT_ID", "CODE_VERSION"]

EXPERIMENT_ID = "E6"

#: Folded into every emitted spec's ``spec_key``; bump on any change to
#: this driver's workload or measurement semantics.
CODE_VERSION = "dijkstra-comparison/1"

_RUNNER = "repro.experiments.dijkstra_comparison:run_job"

#: Ring sizes for the head-to-head.  The n >= 1000 rows ride the batched
#: superstep backend with the safety-only large-n regime (trusted diameter
#: n//2, analytic witnesses, horizons of a few bounds) — the advantage
#: factor visibly approaches its asymptotic ~4 there.
DEFAULT_RING_SIZES = (8, 12, 16, 20, 64, 1000, 10000)


@lru_cache(maxsize=32)
def _cached_ssme(n: int, diam: int) -> SSME:
    return SSME(ring_graph(n), diam=diam)


@lru_cache(maxsize=32)
def _cached_dijkstra(n: int) -> DijkstraTokenRing:
    return DijkstraTokenRing(ring_graph(n))


def run_job(spec: JobSpec) -> Dict[str, object]:
    """One worst-case measurement over the spec's embedded workload.

    ``spec.protocol`` selects the family; the workload (every initial
    configuration) and the run seed were pre-drawn by the emitting driver,
    so the measured maximum is a pure function of the spec.
    """
    n = spec.graph_item("n")
    if spec.protocol == "ssme":
        protocol = _cached_ssme(n, spec.graph_item("diam"))
    else:
        protocol = _cached_dijkstra(n)
    workload = [
        protocol.configuration(dict(items)) for items in spec.param("workload")
    ]
    result = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=SynchronousDaemon,
        specification=MutualExclusionSpec(protocol),
        initial_configurations=workload,
        horizon=spec.horizon,
        rng=random.Random(spec.seeds[0]),
        engine=spec.param("engine"),
        trace="light",
        count_rounds=False,
    )
    return {"max_steps": result.max_steps, "all_stabilized": result.all_stabilized}


def emit_jobs(
    ring_sizes: Optional[Sequence[int]] = None,
    configurations_per_graph: int = 8,
    seed: int = 0,
    engine: str = "auto",
    max_n: Optional[int] = None,
):
    """Build the head-to-head grid: per-ring info + (ssme, dijkstra) specs."""
    ring_sizes = list(ring_sizes) if ring_sizes is not None else list(DEFAULT_RING_SIZES)
    if max_n is not None:
        ring_sizes = [n for n in ring_sizes if n <= max_n]
    rng = random.Random(seed)
    rings: List[Dict[str, object]] = []
    specs: List[JobSpec] = []
    for n in ring_sizes:
        graph = ring_graph(n)
        large = n > LARGE_N
        diam = n // 2 if large else diameter(graph)

        ssme = _cached_ssme(n, diam)
        workload_rng = random.Random(rng.randrange(2**63))
        if large:
            # All-O(n) workload: random faults, planted double privilege,
            # and the analytic delayed witnesses (which realize the bound).
            u = graph.sorted_vertices()[0]
            distances = graph.bfs_distances(u)
            pair = (u, max(distances, key=distances.get))
            ssme_workload = [
                ssme.random_configuration(workload_rng)
                for _ in range(min(configurations_per_graph, 3))
            ]
            ssme_workload.append(
                immediate_double_privilege_configuration(ssme, pair=pair)
            )
            ssme_workload.extend(
                delayed_double_privilege_configuration(ssme, t, pair=pair)
                for t in sorted(set(default_spliced_delays(diam)), reverse=True)
            )
            ssme_horizon = ssme.synchronous_stabilization_bound() + max(256, n // 8)
        else:
            ssme_workload = mutex_workload(
                ssme, workload_rng, random_count=configurations_per_graph
            )
            ssme_horizon = ssme.K + 4 * ssme.alpha + 16
        specs.append(
            JobSpec(
                runner=_RUNNER,
                code_version=CODE_VERSION,
                protocol="ssme",
                graph={"topology": "ring", "n": n, "diam": diam},
                daemon="synchronous",
                seeds=(rng.randrange(2**63),),
                horizon=ssme_horizon,
                metrics=("max_steps", "all_stabilized"),
                params={
                    "workload": tuple(
                        tuple(initial.items()) for initial in ssme_workload
                    ),
                    "engine": engine,
                },
            )
        )

        dijkstra = _cached_dijkstra(n)
        dijkstra_workload = random_configurations(
            dijkstra,
            min(configurations_per_graph, 3) if large else configurations_per_graph,
            random.Random(rng.randrange(2**63)),
        )
        specs.append(
            JobSpec(
                runner=_RUNNER,
                code_version=CODE_VERSION,
                protocol="dijkstra",
                graph={"topology": "ring", "n": n},
                daemon="synchronous",
                seeds=(rng.randrange(2**63),),
                horizon=2 * n + 200 if large else 8 * n + 80,
                metrics=("max_steps", "all_stabilized"),
                params={
                    "workload": tuple(
                        tuple(initial.items()) for initial in dijkstra_workload
                    ),
                    "engine": engine,
                },
            )
        )
        rings.append(
            {
                "n": n,
                "diam": diam,
                "ssme_bound": ssme.synchronous_stabilization_bound(),
                "tasks": (len(specs) - 2, len(specs)),
            }
        )
    return rings, specs


def _aggregate(
    rings: List[Dict[str, object]], results: Sequence[Dict[str, object]]
) -> ExperimentReport:
    rows: List[Dict[str, object]] = []
    ssme_always_within_bound = True
    ssme_never_slower = True
    for info in rings:
        first, _last = info["tasks"]
        ssme_result = results[first]
        dijkstra_result = results[first + 1]
        n = info["n"]
        ssme_steps = ssme_result["max_steps"]
        dijkstra_steps = dijkstra_result["max_steps"]
        bound = info["ssme_bound"]
        within = (
            ssme_result["all_stabilized"]
            and ssme_steps is not None
            and ssme_steps <= bound
        )
        ssme_always_within_bound = ssme_always_within_bound and within
        if ssme_steps is None or dijkstra_steps is None or ssme_steps > dijkstra_steps:
            ssme_never_slower = False
        rows.append(
            {
                "n": n,
                "diam": info["diam"],
                "ssme_steps": ssme_steps,
                "ssme_bound_ceil_diam_over_2": bound,
                "dijkstra_steps": dijkstra_steps,
                "dijkstra_paper_claim_n": n,
                "advantage_factor": (
                    dijkstra_steps / ssme_steps
                    if ssme_steps not in (None, 0) and dijkstra_steps is not None
                    else None
                ),
            }
        )

    passed = ssme_always_within_bound and ssme_never_slower
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="SSME vs Dijkstra — synchronous stabilization on rings",
        paper_claim=(
            "Dijkstra's ring protocol stabilizes in n synchronous steps; SSME "
            "stabilizes in ceil(diam/2) ~ n/4 on a ring and is optimal"
        ),
        rows=rows,
        summary={
            "ssme_within_ceil_diam_over_2_everywhere": ssme_always_within_bound,
            "ssme_never_slower_than_dijkstra": ssme_never_slower,
        },
        passed=passed,
        notes=[
            "SSME is exercised with its adversarial (spliced) worst-case "
            "workload; Dijkstra with random corrupted configurations, which "
            "already reach its Theta(n) synchronous worst case.",
            "The advantage factor should grow towards ~4 on large rings (n vs "
            "ceil(n/4) up to rounding).",
        ],
    )


def run_experiment(
    ring_sizes: Optional[Sequence[int]] = None,
    configurations_per_graph: int = 8,
    seed: int = 0,
    engine: str = "auto",
    max_n: Optional[int] = None,
    workers: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Head-to-head synchronous stabilization on rings.

    The per-ring measurements are emitted as :class:`~repro.jobs.JobSpec`s
    and executed through ``dispatcher`` (cache/resume-aware) or a throwaway
    uncached dispatcher with ``workers`` processes; reported numbers are
    identical either way.  ``max_n`` drops ring sizes above that value
    (the CLI's ``--max-n``)."""
    rings, specs = emit_jobs(
        ring_sizes=ring_sizes,
        configurations_per_graph=configurations_per_graph,
        seed=seed,
        engine=engine,
        max_n=max_n,
    )
    if dispatcher is None:
        with Dispatcher(workers=workers) as local:
            results = local.run(specs, label=EXPERIMENT_ID)
    else:
        results = dispatcher.run(specs, label=EXPERIMENT_ID)
    return _aggregate(rings, results)
