"""E8 — exact model checking cross-validates the sampled theorem sweeps.

Every theorem driver samples daemon schedules and initial configurations,
so its measured worst cases lower-bound the truth.  This experiment runs
the exact explicit-state checker (:mod:`repro.verify`) on instances small
enough to solve and pins the sampled rows against certified values:

* **SSME / Theorem 2** — on rings the exact synchronous worst case over
  the theorem2 workload region equals the paper bound ``⌈diam(g)/2⌉``
  (the bound is *reached*, not just respected) and dominates the sampled
  measurement on the same initial configurations.
* **SSME / speculation gap** — the exact Definition 4 gap: the central
  daemon class solved against the synchronous class on the same instance
  and region, no sampling on either side; the gap must be > 1.
* **Dijkstra (exhaustive)** — the full ``K^n`` product space under the
  central class: certified stabilization from *every* initial
  configuration, exact worst case dominating sampled runs.
* **Unison closure (exhaustive)** — the certified legitimate attractor of
  spec_AU recomputed from the transition relation alone equals Γ₁
  (`is_legitimate`), under the full distributed (unfair) daemon class.
* **Broken variants** — an under-parameterized Dijkstra ring (``K`` below
  the self-stabilization threshold) and a broken-spacing SSME variant must
  *fail* verification with an extracted lasso counterexample that violates
  safety infinitely often — the checker proves non-stabilization rather
  than timing out.

Each row is one declarative :class:`~repro.jobs.JobSpec` (seeds pre-drawn
in the sequential draw order), so exact verification results are cached,
resumable and process-parallel like every other sweep — the expensive
explicit-state solves re-run only when this driver's :data:`CODE_VERSION`
or the instance parameters change.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import CentralDaemon, SynchronousDaemon, worst_case_stabilization
from ..graphs import path_graph, ring_graph
from ..jobs import Dispatcher, JobSpec
from ..mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from ..mutex.variants import ParametricClockMutex
from ..unison import AsynchronousUnison, AsynchronousUnisonSpec
from ..verify import StateSpace, exact_speculation_gap, verify_stabilization
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = ["run_experiment", "emit_jobs", "run_job", "EXPERIMENT_ID", "CODE_VERSION"]

EXPERIMENT_ID = "E8"

#: Folded into every emitted spec's ``spec_key``; bump on any change to
#: the row semantics below (or to the checker behaviour they pin).
#: ``/2``: the vectorized checker extends the default synchronous rows to
#: rings n <= 14 (the region closures stay tiny), and extending the size
#: lists shifts the sequential seed draws of every later row.
CODE_VERSION = "exact-small-n/2"

_RUNNER = "repro.experiments.exact_small_n:run_job"


def _sync_horizon(protocol: SSME) -> int:
    # Same shape as the theorem2 driver: one clock period plus slack.
    return protocol.K + 4 * protocol.alpha + 16


def _ssme_sync_row(
    n: int, random_count: int, workload_seed: int, sample_seed: int
) -> Dict[str, object]:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(
        protocol, random.Random(workload_seed), random_count=random_count
    )
    result = verify_stabilization(protocol, specification, "synchronous", workload)
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=SynchronousDaemon,
        specification=specification,
        initial_configurations=workload,
        horizon=_sync_horizon(protocol),
        rng=random.Random(sample_seed),
        trace="light",
    ).max_steps
    bound = protocol.synchronous_stabilization_bound()
    exact = result.exact_worst_case
    ok = (
        result.stabilizes
        and exact == bound
        and sampled is not None
        and exact >= sampled
    )
    return {
        "kind": "ssme-sd-exact",
        "instance": f"ring({n})",
        "daemon_class": "synchronous",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": exact,
        "sampled_worst_steps": sampled,
        "paper_bound": bound,
        "exact_equals_bound": exact == bound,
        "exact_dominates_sampled": sampled is not None and exact is not None and exact >= sampled,
        "certified": ok,
    }


def _ssme_gap_row(
    n: int, random_count: int, workload_seed: int, sample_seed: int
) -> Dict[str, object]:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(
        protocol, random.Random(workload_seed), random_count=random_count
    )
    certificate = exact_speculation_gap(
        protocol, specification, "central", "synchronous", workload
    )
    sampled_strong = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=CentralDaemon,
        specification=specification,
        initial_configurations=workload,
        horizon=4 * protocol.graph.n * (protocol.alpha + protocol.diam) + 40,
        rng=random.Random(sample_seed),
        runs_per_configuration=2,
        trace="light",
    ).max_steps
    strong = certificate.strong.exact_worst_case
    weak = certificate.weak.exact_worst_case
    dominates = (
        strong is not None and sampled_strong is not None and strong >= sampled_strong
    )
    ok = certificate.speculation_pays and dominates
    return {
        "kind": "ssme-exact-gap",
        "instance": f"ring({n})",
        "daemon_class": "central vs synchronous",
        "states": certificate.strong.state_count,
        "exhaustive": certificate.strong.exhaustive,
        "exact_worst_steps": strong,
        "sampled_worst_steps": sampled_strong,
        "paper_bound": None,
        "exact_weak_steps": weak,
        "exact_gap_factor": certificate.gap_factor,
        "exact_dominates_sampled": dominates,
        "certified": ok,
    }


def _dijkstra_row(
    n: int, initial_seeds: Sequence[int], sample_seed: int
) -> Dict[str, object]:
    protocol = DijkstraTokenRing.on_ring(n)
    specification = MutualExclusionSpec(protocol)
    result = verify_stabilization(protocol, specification, "central")
    initials = [
        protocol.random_configuration(random.Random(seed)) for seed in initial_seeds
    ]
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=CentralDaemon,
        specification=specification,
        initial_configurations=initials,
        horizon=4 * protocol.graph.n * protocol.K + 40,
        rng=random.Random(sample_seed),
        runs_per_configuration=2,
        trace="light",
    ).max_steps
    exact = result.exact_worst_case
    ok = (
        result.stabilizes
        and result.legitimate_count > 0
        and sampled is not None
        and exact is not None
        and exact >= sampled
    )
    return {
        "kind": "dijkstra-exhaustive",
        "instance": f"ring({n}), K={protocol.K}",
        "daemon_class": "central",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": exact,
        "sampled_worst_steps": sampled,
        "paper_bound": None,
        "legitimate_states": result.legitimate_count,
        "exact_dominates_sampled": sampled is not None and exact is not None and exact >= sampled,
        "certified": ok,
    }


def _unison_closure_row() -> Dict[str, object]:
    protocol = AsynchronousUnison(ring_graph(4), alpha=2, K=5)
    specification = AsynchronousUnisonSpec(protocol)
    result = verify_stabilization(protocol, specification, "distributed")
    space = StateSpace(protocol)
    gamma1 = [c for c in space.configurations() if protocol.is_legitimate(c)]
    closure_matches = len(gamma1) == result.legitimate_count and all(
        result.is_certified_legitimate(configuration) for configuration in gamma1
    )
    ok = result.stabilizes and closure_matches
    return {
        "kind": "unison-closure",
        "instance": "ring(4), cherry(2, 5)",
        "daemon_class": "distributed",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": result.exact_worst_case,
        "sampled_worst_steps": None,
        "paper_bound": None,
        "legitimate_states": result.legitimate_count,
        "closure_equals_gamma1": closure_matches,
        "certified": ok,
    }


def _broken_dijkstra_row() -> Dict[str, object]:
    # Dijkstra with K below the self-stabilization threshold: the central
    # adversary can keep two tokens alive forever.
    protocol = DijkstraTokenRing.on_ring(4, K=2)
    result = verify_stabilization(protocol, MutualExclusionSpec(protocol), "central")
    lasso = result.counterexample
    return {
        "kind": "broken-dijkstra",
        "instance": "ring(4), K=2",
        "daemon_class": "central",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": None,
        "sampled_worst_steps": None,
        "paper_bound": None,
        "diverging_states": result.diverging_count,
        "lasso_cycle": len(lasso.cycle) if lasso else None,
        "certified": (
            not result.stabilizes and lasso is not None and lasso.violates_safety
        ),
    }


def _broken_spacing_row() -> Dict[str, object]:
    # SSME with the privilege spacing collapsed below the drift bound: Γ₁
    # contains double privileges, and the unfair adversary revisits them
    # forever.
    protocol = ParametricClockMutex(path_graph(2), spacing=1)
    result = verify_stabilization(protocol, MutualExclusionSpec(protocol), "distributed")
    lasso = result.counterexample
    return {
        "kind": "broken-spacing-mutex",
        "instance": "path(2), spacing=1",
        "daemon_class": "distributed",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": None,
        "sampled_worst_steps": None,
        "paper_bound": None,
        "diverging_states": result.diverging_count,
        "lasso_cycle": len(lasso.cycle) if lasso else None,
        "certified": (
            not result.stabilizes and lasso is not None and lasso.violates_safety
        ),
    }


def run_job(spec: JobSpec) -> Dict[str, object]:
    """Execute one emitted row spec (runs inside worker processes)."""
    kind = spec.param("kind")
    if kind == "ssme-sd-exact":
        return _ssme_sync_row(
            spec.graph_item("n"), spec.param("random_count"), *spec.seeds
        )
    if kind == "ssme-exact-gap":
        return _ssme_gap_row(
            spec.graph_item("n"), spec.param("random_count"), *spec.seeds
        )
    if kind == "dijkstra-exhaustive":
        return _dijkstra_row(spec.graph_item("n"), spec.seeds[:-1], spec.seeds[-1])
    if kind == "unison-closure":
        return _unison_closure_row()
    if kind == "broken-dijkstra":
        return _broken_dijkstra_row()
    if kind == "broken-spacing-mutex":
        return _broken_spacing_row()
    raise ValueError(f"unknown exact_small_n job kind {kind!r}")


def emit_jobs(
    ssme_sizes: Sequence[int] = (4, 6, 8, 10, 12, 14),
    gap_sizes: Sequence[int] = (4,),
    dijkstra_sizes: Sequence[int] = (4, 5),
    random_configurations_per_graph: int = 6,
    seed: int = 0,
    include_exhaustive: bool = True,
    include_broken: bool = True,
) -> List[JobSpec]:
    """One spec per report row, seeds pre-drawn in sequential draw order."""
    rng = random.Random(seed)

    def _spec(kind: str, protocol: str, daemon: str, graph, seeds: Tuple[int, ...], params=()):
        return JobSpec(
            runner=_RUNNER,
            code_version=CODE_VERSION,
            protocol=protocol,
            graph=graph,
            daemon=daemon,
            seeds=seeds,
            metrics=("exact_worst_steps", "sampled_worst_steps", "certified"),
            params=(("kind", kind),) + tuple(params),
        )

    specs: List[JobSpec] = []
    for n in ssme_sizes:
        specs.append(
            _spec(
                "ssme-sd-exact",
                "ssme",
                "synchronous",
                {"topology": "ring", "n": n},
                (rng.randrange(2**63), rng.randrange(2**63)),
                params=(("random_count", random_configurations_per_graph),),
            )
        )
    for n in gap_sizes:
        specs.append(
            _spec(
                "ssme-exact-gap",
                "ssme",
                "central-vs-synchronous",
                {"topology": "ring", "n": n},
                (rng.randrange(2**63), rng.randrange(2**63)),
                params=(("random_count", random_configurations_per_graph),),
            )
        )
    if include_exhaustive:
        for n in dijkstra_sizes:
            initial_seeds = tuple(
                rng.randrange(2**63) for _ in range(random_configurations_per_graph)
            )
            specs.append(
                _spec(
                    "dijkstra-exhaustive",
                    "dijkstra",
                    "central",
                    {"topology": "ring", "n": n},
                    initial_seeds + (rng.randrange(2**63),),
                )
            )
        specs.append(
            _spec(
                "unison-closure",
                "unison",
                "distributed",
                {"topology": "ring", "n": 4, "alpha": 2, "K": 5},
                (),
            )
        )
    if include_broken:
        specs.append(
            _spec(
                "broken-dijkstra",
                "dijkstra",
                "central",
                {"topology": "ring", "n": 4, "K": 2},
                (),
            )
        )
        specs.append(
            _spec(
                "broken-spacing-mutex",
                "parametric-clock-mutex",
                "distributed",
                {"topology": "path", "n": 2, "spacing": 1},
                (),
            )
        )
    return specs


def _aggregate(rows: List[Dict[str, object]]) -> ExperimentReport:
    sync_rows = [row for row in rows if row["kind"] == "ssme-sd-exact"]
    summary = {
        "exact_equals_theorem2_bound_on_every_ring": all(
            row["exact_equals_bound"] for row in sync_rows
        ),
        "exact_dominates_sampled_everywhere": all(
            row["exact_dominates_sampled"]
            for row in rows
            if "exact_dominates_sampled" in row
        ),
        "broken_variants_yield_lasso": all(
            row["certified"] for row in rows if row["kind"].startswith("broken")
        ),
        "all_certified": all(row["certified"] for row in rows),
    }
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Exact model checking of small instances (repro.verify)",
        paper_claim=(
            "On instances small enough to solve exactly, the certified "
            "worst cases confirm the sampled sweeps: conv_time(SSME, sd) "
            "equals ceil(diam/2) exactly, the exact values dominate every "
            "sampled value, and the speculation gap is certified > 1"
        ),
        rows=rows,
        summary=summary,
        passed=bool(summary["all_certified"]),
        notes=[
            "'exhaustive' rows solve the full product state space (every "
            "initial configuration); the SSME rows solve the reachable "
            "closure of the theorem2/theorem3 workload region, which is "
            "exact for every daemon schedule from those initials.",
            "Broken rows are expected to fail stabilization: the checker "
            "must extract a lasso counterexample whose cycle violates "
            "safety infinitely often.",
            "Sampled values come from worst_case_stabilization on the same "
            "initial configurations, so 'exact >= sampled' cross-validates "
            "sampler and solver against each other.",
        ],
    )


def run_experiment(
    ssme_sizes: Sequence[int] = (4, 6, 8, 10, 12, 14),
    gap_sizes: Sequence[int] = (4,),
    dijkstra_sizes: Sequence[int] = (4, 5),
    random_configurations_per_graph: int = 6,
    seed: int = 0,
    include_exhaustive: bool = True,
    include_broken: bool = True,
    workers: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Cross-validate the sampled theorem sweeps against exact values.

    Pure-Python end to end (NumPy stays optional; with it present the
    checker picks the batched array engine automatically); the default
    sweep solves every instance in a few seconds — the synchronous rows
    stay cheap out to ring(14) because the theorem2 workload region closes
    in a few hundred states.  The heavyweight frontier rows (exact
    speculation gaps on rings n >= 10, millions of central-class states)
    live in ``benchmarks/bench_verify.py``, not in these defaults.  Rows
    are emitted as
    :class:`~repro.jobs.JobSpec`s and executed through ``dispatcher`` (or a
    throwaway uncached dispatcher with ``workers`` processes), so the
    explicit-state solves cache and resume like every sampled sweep.
    """
    specs = emit_jobs(
        ssme_sizes=ssme_sizes,
        gap_sizes=gap_sizes,
        dijkstra_sizes=dijkstra_sizes,
        random_configurations_per_graph=random_configurations_per_graph,
        seed=seed,
        include_exhaustive=include_exhaustive,
        include_broken=include_broken,
    )
    if dispatcher is None:
        with Dispatcher(workers=workers) as local:
            rows = local.run(specs, label=EXPERIMENT_ID)
    else:
        rows = dispatcher.run(specs, label=EXPERIMENT_ID)
    return _aggregate(rows)
