"""E8 — exact model checking cross-validates the sampled theorem sweeps.

Every theorem driver samples daemon schedules and initial configurations,
so its measured worst cases lower-bound the truth.  This experiment runs
the exact explicit-state checker (:mod:`repro.verify`) on instances small
enough to solve and pins the sampled rows against certified values:

* **SSME / Theorem 2** — on rings the exact synchronous worst case over
  the theorem2 workload region equals the paper bound ``⌈diam(g)/2⌉``
  (the bound is *reached*, not just respected) and dominates the sampled
  measurement on the same initial configurations.
* **SSME / speculation gap** — the exact Definition 4 gap: the central
  daemon class solved against the synchronous class on the same instance
  and region, no sampling on either side; the gap must be > 1.
* **Dijkstra (exhaustive)** — the full ``K^n`` product space under the
  central class: certified stabilization from *every* initial
  configuration, exact worst case dominating sampled runs.
* **Unison closure (exhaustive)** — the certified legitimate attractor of
  spec_AU recomputed from the transition relation alone equals Γ₁
  (`is_legitimate`), under the full distributed (unfair) daemon class.
* **Broken variants** — an under-parameterized Dijkstra ring (``K`` below
  the self-stabilization threshold) and a broken-spacing SSME variant must
  *fail* verification with an extracted lasso counterexample that violates
  safety infinitely often — the checker proves non-stabilization rather
  than timing out.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from ..core import CentralDaemon, SynchronousDaemon, worst_case_stabilization
from ..graphs import path_graph, ring_graph
from ..mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from ..mutex.variants import ParametricClockMutex
from ..unison import AsynchronousUnison, AsynchronousUnisonSpec
from ..verify import StateSpace, exact_speculation_gap, verify_stabilization
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = ["run_experiment", "EXPERIMENT_ID"]

EXPERIMENT_ID = "E8"


def _sync_horizon(protocol: SSME) -> int:
    # Same shape as the theorem2 driver: one clock period plus slack.
    return protocol.K + 4 * protocol.alpha + 16


def _ssme_sync_row(n: int, random_count: int, rng: random.Random) -> Dict[str, object]:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(
        protocol, random.Random(rng.randrange(2**63)), random_count=random_count
    )
    result = verify_stabilization(protocol, specification, "synchronous", workload)
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=SynchronousDaemon,
        specification=specification,
        initial_configurations=workload,
        horizon=_sync_horizon(protocol),
        rng=random.Random(rng.randrange(2**63)),
        trace="light",
    ).max_steps
    bound = protocol.synchronous_stabilization_bound()
    exact = result.exact_worst_case
    ok = (
        result.stabilizes
        and exact == bound
        and sampled is not None
        and exact >= sampled
    )
    return {
        "kind": "ssme-sd-exact",
        "instance": f"ring({n})",
        "daemon_class": "synchronous",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": exact,
        "sampled_worst_steps": sampled,
        "paper_bound": bound,
        "exact_equals_bound": exact == bound,
        "exact_dominates_sampled": sampled is not None and exact is not None and exact >= sampled,
        "certified": ok,
    }


def _ssme_gap_row(n: int, random_count: int, rng: random.Random) -> Dict[str, object]:
    protocol = SSME(ring_graph(n))
    specification = MutualExclusionSpec(protocol)
    workload = mutex_workload(
        protocol, random.Random(rng.randrange(2**63)), random_count=random_count
    )
    certificate = exact_speculation_gap(
        protocol, specification, "central", "synchronous", workload
    )
    sampled_strong = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=CentralDaemon,
        specification=specification,
        initial_configurations=workload,
        horizon=4 * protocol.graph.n * (protocol.alpha + protocol.diam) + 40,
        rng=random.Random(rng.randrange(2**63)),
        runs_per_configuration=2,
        trace="light",
    ).max_steps
    strong = certificate.strong.exact_worst_case
    weak = certificate.weak.exact_worst_case
    dominates = (
        strong is not None and sampled_strong is not None and strong >= sampled_strong
    )
    ok = certificate.speculation_pays and dominates
    return {
        "kind": "ssme-exact-gap",
        "instance": f"ring({n})",
        "daemon_class": "central vs synchronous",
        "states": certificate.strong.state_count,
        "exhaustive": certificate.strong.exhaustive,
        "exact_worst_steps": strong,
        "sampled_worst_steps": sampled_strong,
        "paper_bound": None,
        "exact_weak_steps": weak,
        "exact_gap_factor": certificate.gap_factor,
        "exact_dominates_sampled": dominates,
        "certified": ok,
    }


def _dijkstra_row(n: int, random_count: int, rng: random.Random) -> Dict[str, object]:
    protocol = DijkstraTokenRing.on_ring(n)
    specification = MutualExclusionSpec(protocol)
    result = verify_stabilization(protocol, specification, "central")
    initials = [
        protocol.random_configuration(random.Random(rng.randrange(2**63)))
        for _ in range(random_count)
    ]
    sampled = worst_case_stabilization(
        protocol=protocol,
        daemon_factory=CentralDaemon,
        specification=specification,
        initial_configurations=initials,
        horizon=4 * protocol.graph.n * protocol.K + 40,
        rng=random.Random(rng.randrange(2**63)),
        runs_per_configuration=2,
        trace="light",
    ).max_steps
    exact = result.exact_worst_case
    ok = (
        result.stabilizes
        and result.legitimate_count > 0
        and sampled is not None
        and exact is not None
        and exact >= sampled
    )
    return {
        "kind": "dijkstra-exhaustive",
        "instance": f"ring({n}), K={protocol.K}",
        "daemon_class": "central",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": exact,
        "sampled_worst_steps": sampled,
        "paper_bound": None,
        "legitimate_states": result.legitimate_count,
        "exact_dominates_sampled": sampled is not None and exact is not None and exact >= sampled,
        "certified": ok,
    }


def _unison_closure_row() -> Dict[str, object]:
    protocol = AsynchronousUnison(ring_graph(4), alpha=2, K=5)
    specification = AsynchronousUnisonSpec(protocol)
    result = verify_stabilization(protocol, specification, "distributed")
    space = StateSpace(protocol)
    gamma1 = [c for c in space.configurations() if protocol.is_legitimate(c)]
    closure_matches = len(gamma1) == result.legitimate_count and all(
        result.is_certified_legitimate(configuration) for configuration in gamma1
    )
    ok = result.stabilizes and closure_matches
    return {
        "kind": "unison-closure",
        "instance": "ring(4), cherry(2, 5)",
        "daemon_class": "distributed",
        "states": result.state_count,
        "exhaustive": result.exhaustive,
        "exact_worst_steps": result.exact_worst_case,
        "sampled_worst_steps": None,
        "paper_bound": None,
        "legitimate_states": result.legitimate_count,
        "closure_equals_gamma1": closure_matches,
        "certified": ok,
    }


def _broken_rows() -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    # Dijkstra with K below the self-stabilization threshold: the central
    # adversary can keep two tokens alive forever.
    protocol = DijkstraTokenRing.on_ring(4, K=2)
    result = verify_stabilization(protocol, MutualExclusionSpec(protocol), "central")
    lasso = result.counterexample
    rows.append(
        {
            "kind": "broken-dijkstra",
            "instance": "ring(4), K=2",
            "daemon_class": "central",
            "states": result.state_count,
            "exhaustive": result.exhaustive,
            "exact_worst_steps": None,
            "sampled_worst_steps": None,
            "paper_bound": None,
            "diverging_states": result.diverging_count,
            "lasso_cycle": len(lasso.cycle) if lasso else None,
            "certified": (
                not result.stabilizes and lasso is not None and lasso.violates_safety
            ),
        }
    )
    # SSME with the privilege spacing collapsed below the drift bound: Γ₁
    # contains double privileges, and the unfair adversary revisits them
    # forever.
    protocol = ParametricClockMutex(path_graph(2), spacing=1)
    result = verify_stabilization(protocol, MutualExclusionSpec(protocol), "distributed")
    lasso = result.counterexample
    rows.append(
        {
            "kind": "broken-spacing-mutex",
            "instance": "path(2), spacing=1",
            "daemon_class": "distributed",
            "states": result.state_count,
            "exhaustive": result.exhaustive,
            "exact_worst_steps": None,
            "sampled_worst_steps": None,
            "paper_bound": None,
            "diverging_states": result.diverging_count,
            "lasso_cycle": len(lasso.cycle) if lasso else None,
            "certified": (
                not result.stabilizes and lasso is not None and lasso.violates_safety
            ),
        }
    )
    return rows


def run_experiment(
    ssme_sizes: Sequence[int] = (4, 6, 8),
    gap_sizes: Sequence[int] = (4,),
    dijkstra_sizes: Sequence[int] = (4, 5),
    random_configurations_per_graph: int = 6,
    seed: int = 0,
    include_exhaustive: bool = True,
    include_broken: bool = True,
) -> ExperimentReport:
    """Cross-validate the sampled theorem sweeps against exact values.

    Pure-Python end to end (NumPy stays optional); the default sweep solves
    every instance in a few seconds.
    """
    rng = random.Random(seed)
    rows: List[Dict[str, object]] = []
    for n in ssme_sizes:
        rows.append(_ssme_sync_row(n, random_configurations_per_graph, rng))
    for n in gap_sizes:
        rows.append(_ssme_gap_row(n, random_configurations_per_graph, rng))
    if include_exhaustive:
        for n in dijkstra_sizes:
            rows.append(_dijkstra_row(n, random_configurations_per_graph, rng))
        rows.append(_unison_closure_row())
    if include_broken:
        rows.extend(_broken_rows())

    sync_rows = [row for row in rows if row["kind"] == "ssme-sd-exact"]
    summary = {
        "exact_equals_theorem2_bound_on_every_ring": all(
            row["exact_equals_bound"] for row in sync_rows
        ),
        "exact_dominates_sampled_everywhere": all(
            row["exact_dominates_sampled"]
            for row in rows
            if "exact_dominates_sampled" in row
        ),
        "broken_variants_yield_lasso": all(
            row["certified"] for row in rows if row["kind"].startswith("broken")
        ),
        "all_certified": all(row["certified"] for row in rows),
    }
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Exact model checking of small instances (repro.verify)",
        paper_claim=(
            "On instances small enough to solve exactly, the certified "
            "worst cases confirm the sampled sweeps: conv_time(SSME, sd) "
            "equals ceil(diam/2) exactly, the exact values dominate every "
            "sampled value, and the speculation gap is certified > 1"
        ),
        rows=rows,
        summary=summary,
        passed=bool(summary["all_certified"]),
        notes=[
            "'exhaustive' rows solve the full product state space (every "
            "initial configuration); the SSME rows solve the reachable "
            "closure of the theorem2/theorem3 workload region, which is "
            "exact for every daemon schedule from those initials.",
            "Broken rows are expected to fail stabilization: the checker "
            "must extract a lasso counterexample whose cycle violates "
            "safety infinitely often.",
            "Sampled values come from worst_case_stabilization on the same "
            "initial configurations, so 'exact >= sampled' cross-validates "
            "sampler and solver against each other.",
        ],
    )
