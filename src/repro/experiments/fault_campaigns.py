"""E9 — fault campaigns: recovery under recurring faults and churn.

The paper's guarantee is *convergence from any single transient fault*;
this experiment measures the production-shaped extension: named scenarios
(:mod:`repro.scenarios.registry`) where faults recur on a schedule
(periodic, bursty, Poisson, adversarially timed against the stabilization
bound) and the topology churns mid-run, reporting per-scenario
``availability``, ``recovery_time`` and longest-unsafe-window headlines.

Every scenario is one declarative :class:`~repro.jobs.JobSpec` whose
params embed the *entire* campaign definition (schedule, churn, fault
parameters, seed — no registry lookup at run time), executed through a
:class:`~repro.jobs.Dispatcher`: campaigns are cached, resumable after a
kill, and byte-identical under ``workers=N``.

The pass criterion is deliberately about *recovery*, not about staying
safe throughout (recurring faults are supposed to break safety): every
scenario must end safe and must have recovered from its last disruption
within the remaining observation window.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..graphs import make_topology
from ..jobs import Dispatcher, JobSpec
from ..scenarios import (
    ChurnEvent,
    FaultSchedule,
    Scenario,
    get_scenario,
    list_scenarios,
    run_campaign,
)
from .runner import ExperimentReport

__all__ = [
    "run_experiment",
    "emit_jobs",
    "run_job",
    "EXPERIMENT_ID",
    "CODE_VERSION",
]

EXPERIMENT_ID = "E9"

#: Folded into every emitted spec's ``spec_key``; bump on any change to
#: campaign semantics (segmenting, state transfer, recovery definitions)
#: or to the scenario registry the campaign grid is built from.
CODE_VERSION = "fault-campaigns/2"

_RUNNER = "repro.experiments.fault_campaigns:run_job"

_METRICS = (
    "availability",
    "longest_unsafe_window",
    "max_recovery",
    "recovered_all",
    "final_safe",
)


def run_job(spec: JobSpec) -> Dict[str, Any]:
    """Execute one scenario campaign — a pure function of the spec.

    The schedule, churn list and fault parameters are embedded in the
    spec's params (frozen to sorted pair-tuples by :class:`JobSpec`), so a
    registry edit changes the spec key and transparently invalidates any
    cached result.
    """
    schedule_pairs = spec.param("schedule")
    result = run_campaign(
        protocol_family=spec.protocol,
        graph=make_topology(spec.graph_item("topology"), spec.graph_item("n")),
        daemon=spec.daemon,
        horizon=spec.horizon,
        seed=spec.seeds[0],
        schedule=(
            FaultSchedule.from_dict(dict(schedule_pairs)) if schedule_pairs else None
        ),
        fault_model=spec.param("fault_model"),
        fault_params=dict(spec.param("fault_params") or ()),
        churn=tuple(
            ChurnEvent.from_dict(dict(pairs))
            for pairs in (spec.param("churn") or ())
        ),
        initial=spec.param("initial", "default"),
        engine=spec.param("engine", "auto"),
    )
    return result.to_dict()


def emit_jobs(
    scenarios: Optional[Sequence[Union[str, Scenario]]] = None,
    tier: Optional[str] = None,
    engine: str = "auto",
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[JobSpec]]:
    """One spec per scenario (name order — the registry's presentation).

    ``seed`` is accepted for harness uniformity but unused: each scenario
    carries its own pinned seed — that is the reproducibility contract.
    """
    del seed
    if scenarios is None:
        selected = list_scenarios(tier)
    else:
        selected = [
            get_scenario(item) if isinstance(item, str) else item
            for item in scenarios
        ]
    infos: List[Dict[str, Any]] = []
    specs: List[JobSpec] = []
    for scenario in selected:
        params = scenario.job_params(engine=engine)
        specs.append(
            JobSpec(
                runner=_RUNNER,
                code_version=CODE_VERSION,
                protocol=scenario.protocol,
                graph={"topology": scenario.topology, "n": scenario.n},
                daemon=scenario.daemon,
                seeds=(scenario.seed,),
                horizon=scenario.horizon,
                metrics=_METRICS,
                params={
                    key: value
                    for key, value in params.items()
                    # Already first-class JobSpec fields above.
                    if key not in ("protocol", "topology", "n", "daemon", "horizon", "seed")
                },
            )
        )
        infos.append(
            {
                "name": scenario.name,
                "tier": scenario.tier,
                "protocol": scenario.protocol,
                "topology": scenario.topology,
                "n": scenario.n,
                "daemon": scenario.daemon,
                "horizon": scenario.horizon,
                "description": scenario.description,
            }
        )
    return infos, specs


def scenario_passed(result: Dict[str, Any]) -> bool:
    """Did the campaign end safe and recover from its last disruption?"""
    if not result["final_safe"]:
        return False
    events = result.get("events") or []
    if not events:
        return True
    return events[-1]["recovery_time"] is not None


def _aggregate(
    infos: List[Dict[str, Any]], results: Sequence[Dict[str, Any]]
) -> ExperimentReport:
    rows: List[Dict[str, Any]] = []
    all_passed = True
    for info, result in zip(infos, results):
        passed = scenario_passed(result)
        all_passed = all_passed and passed
        events = result.get("events") or []
        rows.append(
            {
                "scenario": info["name"],
                "tier": info["tier"],
                "protocol": info["protocol"],
                "graph": f"{info['topology']}({info['n']})",
                "daemon": info["daemon"],
                "horizon": info["horizon"],
                "events": len(events),
                "availability": round(result["availability"], 4),
                "longest_unsafe_window": result["longest_unsafe_window"],
                "max_recovery": result["max_recovery"],
                "last_recovery": (
                    events[-1]["recovery_time"] if events else 0
                ),
                "final_n": result["final_n"],
                "final_safe": result["final_safe"],
                "recovered_last": passed,
            }
        )
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Fault campaigns — recovery under recurring faults and churn",
        paper_claim=(
            "Self-stabilization extends beyond one-shot faults: the protocols "
            "re-converge after every disruption of a recurring fault schedule "
            "and after topology churn, within their stabilization bounds"
        ),
        rows=rows,
        summary={
            "scenarios": len(rows),
            "all_recovered_after_last_disruption": all_passed,
            "mean_availability": (
                round(sum(row["availability"] for row in rows) / len(rows), 4)
                if rows
                else None
            ),
        },
        passed=all_passed,
        notes=[
            "Availability is the fraction of observed step indices whose "
            "configuration satisfied the safety specification; recurring "
            "faults are *supposed* to dent it — the pass criterion is "
            "recovery, not uninterrupted safety.",
            "SSME campaigns stay safe even under recurring global random "
            "corruption (random states essentially never plant two "
            "privileges); unsafe SSME windows require the adversarial "
            "double-privilege initial (scenario ssme-ring24-adversarial).",
            "Churn rebuilds the protocol on the mutated graph (clock "
            "parameters re-derived); registers still valid under the new "
            "parameters survive, the rest are redrawn from the event seed.",
        ],
    )


def run_experiment(
    scenarios: Optional[Sequence[Union[str, Scenario]]] = None,
    tier: Optional[str] = None,
    engine: str = "auto",
    workers: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Run the campaign grid (default: every registered scenario).

    Each scenario's campaign is one cached job; ``dispatcher`` (or a
    throwaway one with ``workers`` processes) executes the grid with
    byte-identical reported numbers for any worker count or cache state.
    """
    infos, specs = emit_jobs(scenarios=scenarios, tier=tier, engine=engine)
    if dispatcher is None:
        with Dispatcher(workers=workers) as local:
            results = local.run(specs, label=EXPERIMENT_ID)
    else:
        results = dispatcher.run(specs, label=EXPERIMENT_ID)
    return _aggregate(infos, results)
