"""Structured transient-fault models.

Self-stabilization quantifies over *arbitrary* initial configurations, but
real deployments care about specific fault shapes: how fast does the system
recover from one corrupted node, from a localized burst (a rack losing
power), or from a bounded clock skew?  These helpers derive faulted
configurations from a base configuration under named fault models, so the
examples and experiments can report recovery times per fault class rather
than only for the fully adversarial case.

Every model is a pure function ``(protocol, base, rng) -> Configuration``
and registered in :data:`FAULT_MODELS`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..core import Protocol
from ..core.state import Configuration
from ..exceptions import ExperimentError
from ..graphs import diameter
from ..types import VertexId

__all__ = [
    "single_vertex_fault",
    "localized_burst_fault",
    "global_fault",
    "clock_skew_fault",
    "FAULT_MODELS",
    "apply_fault",
]


def single_vertex_fault(
    protocol: Protocol, base: Configuration, rng: random.Random
) -> Configuration:
    """Corrupt the state of one uniformly chosen vertex."""
    vertex = rng.choice(sorted(protocol.graph.vertices, key=repr))
    return base.updated({vertex: protocol.random_state(vertex, rng)})


def localized_burst_fault(
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    radius: Optional[int] = None,
) -> Configuration:
    """Corrupt every vertex within ``radius`` hops of a random epicentre.

    Models a rack/region failure: the corruption is spatially correlated.
    The default radius is a quarter of the diameter (at least 1).
    """
    graph = protocol.graph
    if radius is None:
        radius = max(1, diameter(graph) // 4)
    epicentre = rng.choice(sorted(graph.vertices, key=repr))
    ball = graph.ball(epicentre, radius)
    return base.updated({v: protocol.random_state(v, rng) for v in ball})


def global_fault(
    protocol: Protocol, base: Configuration, rng: random.Random
) -> Configuration:
    """Corrupt every vertex: the fully adversarial transient fault."""
    del base
    return protocol.random_configuration(rng)


def clock_skew_fault(
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    max_skew: int = 3,
) -> Configuration:
    """Advance each register by a random number of ``phi`` applications.

    Only meaningful for clock-based protocols (unison, SSME): it models
    nodes that kept running while disconnected and drifted ahead.  For
    protocols without a ``clock`` attribute the model degrades to a
    :func:`single_vertex_fault`.
    """
    clock = getattr(protocol, "clock", None)
    if clock is None:
        return single_vertex_fault(protocol, base, rng)
    if max_skew < 0:
        raise ExperimentError("max_skew must be non-negative")
    changes = {
        v: clock.increment(base[v], rng.randrange(max_skew + 1))
        for v in protocol.graph.vertices
    }
    return base.updated(changes)


#: Named fault models usable by experiments and examples.
FAULT_MODELS: Dict[str, Callable[[Protocol, Configuration, random.Random], Configuration]] = {
    "single-vertex": single_vertex_fault,
    "localized-burst": localized_burst_fault,
    "global": global_fault,
    "clock-skew": clock_skew_fault,
}


def apply_fault(
    name: str,
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
) -> Configuration:
    """Apply the named fault model to ``base``."""
    try:
        model = FAULT_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_MODELS))
        raise ExperimentError(f"unknown fault model {name!r}; known: {known}") from None
    return model(protocol, base, rng)
