"""Structured transient-fault models.

Self-stabilization quantifies over *arbitrary* initial configurations, but
real deployments care about specific fault shapes: how fast does the system
recover from one corrupted node, from a localized burst (a rack losing
power), or from a bounded clock skew?  These helpers derive faulted
configurations from a base configuration under named fault models, so the
examples and experiments can report recovery times per fault class rather
than only for the fully adversarial case.

Every model is a pure function ``(protocol, base, rng, **params) ->
Configuration`` and registered in :data:`FAULT_MODELS`;
:data:`FAULT_MODEL_PARAMS` names the keyword parameters each model accepts,
so scenario definitions (see :mod:`repro.scenarios`) can thread explicit
parameter mappings through :func:`apply_fault` and get a clear error for a
misspelled key.  Recurring fault *schedules* — the same models fired
repeatedly over a run, interleaved with topology churn — live in
:mod:`repro.scenarios.events`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional

from ..core import Protocol
from ..core.state import Configuration
from ..exceptions import ExperimentError
from ..graphs import diameter
from ..types import VertexId

__all__ = [
    "single_vertex_fault",
    "localized_burst_fault",
    "global_fault",
    "clock_skew_fault",
    "FAULT_MODELS",
    "FAULT_MODEL_PARAMS",
    "apply_fault",
]


def single_vertex_fault(
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    count: int = 1,
) -> Configuration:
    """Corrupt the state of ``count`` uniformly chosen distinct vertices.

    The default (``count=1``) is the classic single-node transient fault;
    larger counts model independent (spatially uncorrelated) multi-node
    faults — contrast :func:`localized_burst_fault` for correlated ones.
    """
    if count < 1:
        raise ExperimentError("count must be >= 1")
    vertices = sorted(protocol.graph.vertices, key=repr)
    chosen = rng.sample(vertices, min(count, len(vertices)))
    return base.updated({v: protocol.random_state(v, rng) for v in chosen})


def localized_burst_fault(
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    radius: Optional[int] = None,
    diam: Optional[int] = None,
) -> Configuration:
    """Corrupt every vertex within ``radius`` hops of a random epicentre.

    Models a rack/region failure: the corruption is spatially correlated.
    The default radius is a quarter of the diameter (at least 1); callers
    that already know the diameter — fault campaigns firing many bursts on
    one large graph — pass it as ``diam`` so the O(n²) BFS sweep is not
    recomputed per fault event (it is only consulted when ``radius`` is
    defaulted).
    """
    graph = protocol.graph
    if radius is None:
        if diam is None:
            diam = diameter(graph)
        radius = max(1, diam // 4)
    epicentre = rng.choice(sorted(graph.vertices, key=repr))
    ball = graph.ball(epicentre, radius)
    return base.updated({v: protocol.random_state(v, rng) for v in ball})


def global_fault(
    protocol: Protocol, base: Configuration, rng: random.Random
) -> Configuration:
    """Corrupt every vertex: the fully adversarial transient fault."""
    del base
    return protocol.random_configuration(rng)


def clock_skew_fault(
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    max_skew: int = 3,
) -> Configuration:
    """Advance each register by a random number of ``phi`` applications.

    Only meaningful for clock-based protocols (unison, SSME): it models
    nodes that kept running while disconnected and drifted ahead.  Applying
    it to a protocol without a bounded-clock (``phi``) structure raises a
    clear :class:`~repro.exceptions.ExperimentError` naming the protocol —
    there is no sensible skew semantics to degrade to, and a silent
    substitute would misreport what a campaign actually injected.
    """
    clock = getattr(protocol, "clock", None)
    if clock is None:
        raise ExperimentError(
            f"clock-skew fault requires a clock-based protocol with a "
            f"phi structure (unison/SSME); protocol {protocol.name!r} "
            f"({type(protocol).__name__}) declares no clock"
        )
    if max_skew < 0:
        raise ExperimentError("max_skew must be non-negative")
    changes = {
        v: clock.increment(base[v], rng.randrange(max_skew + 1))
        for v in protocol.graph.vertices
    }
    return base.updated(changes)


#: Named fault models usable by experiments and examples.
FAULT_MODELS: Dict[str, Callable[..., Configuration]] = {
    "single-vertex": single_vertex_fault,
    "localized-burst": localized_burst_fault,
    "global": global_fault,
    "clock-skew": clock_skew_fault,
}

#: The keyword parameters each model accepts beyond ``(protocol, base,
#: rng)``.  :func:`apply_fault` validates explicit parameter mappings
#: against this table so scenario definitions fail fast on a typo.
FAULT_MODEL_PARAMS: Dict[str, FrozenSet[str]] = {
    "single-vertex": frozenset({"count"}),
    "localized-burst": frozenset({"radius", "diam"}),
    "global": frozenset(),
    "clock-skew": frozenset({"max_skew"}),
}


def apply_fault(
    name: str,
    protocol: Protocol,
    base: Configuration,
    rng: random.Random,
    params: Optional[Mapping[str, Any]] = None,
) -> Configuration:
    """Apply the named fault model to ``base``.

    ``params`` is an explicit keyword mapping threaded from scenario
    definitions (fault radius, clock skew, burst size ...).  Unknown keys
    raise an :class:`~repro.exceptions.ExperimentError` listing the valid
    parameters of the model, so a misconfigured campaign fails at its first
    fault event instead of silently running a different fault shape.
    """
    try:
        model = FAULT_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_MODELS))
        raise ExperimentError(f"unknown fault model {name!r}; known: {known}") from None
    kwargs = dict(params or {})
    valid = FAULT_MODEL_PARAMS[name]
    unknown = sorted(set(kwargs) - valid)
    if unknown:
        accepted = ", ".join(sorted(valid)) if valid else "none"
        raise ExperimentError(
            f"unknown parameter(s) {', '.join(repr(k) for k in unknown)} for "
            f"fault model {name!r}; valid parameters: {accepted}"
        )
    return model(protocol, base, rng, **kwargs)
