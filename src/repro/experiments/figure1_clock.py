"""E1 — Figure 1: the bounded clock ``cherry(alpha, K)``.

Figure 1 of the paper depicts the bounded clock ``cherry(5, 12)``: a tail of
initial values ``-5 .. -1`` feeding into a cycle of correct values
``0 .. 11``.  There is nothing to *measure* in a figure, but there is plenty
to *check*: the partition into initial and correct values, the behaviour of
the increment function ``phi`` on the tail and on the cycle, the reset
target, and the circular distance ``d_K``.  This experiment validates all of
them on the exact parameters of the figure and on the parameters SSME
actually uses for a few graph sizes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..clocks import BoundedClock, phi_orbit_partition, render_cherry_ascii
from ..graphs import ring_graph
from ..mutex import SSME
from .runner import ExperimentReport

__all__ = ["run_experiment", "EXPERIMENT_ID"]

EXPERIMENT_ID = "E1"


def _clock_row(label: str, clock: BoundedClock) -> dict:
    transient, recurrent = phi_orbit_partition(clock)
    # Walk the tail: -alpha must reach 0 in exactly alpha increments.
    tail_steps = clock.steps_to_reach(-clock.alpha, 0)
    # Walk the cycle: 0 must return to 0 in exactly K increments.
    cycle_steps = clock.steps_to_reach(clock.phi(0), 0) + 1
    return {
        "clock": label,
        "alpha": clock.alpha,
        "K": clock.K,
        "values": clock.size,
        "initial_values": len(clock.initial_values()),
        "correct_values": len(clock.correct_values()),
        "tail_length_by_phi": tail_steps,
        "cycle_length_by_phi": cycle_steps,
        "reset_target": clock.reset_value(),
        "max_dK": max(clock.distance(0, c) for c in clock.correct_values()),
    }


def run_experiment(ssme_sizes: Optional[Sequence[int]] = None) -> ExperimentReport:
    """Validate the Figure 1 clock and the clocks SSME instantiates.

    Parameters
    ----------
    ssme_sizes:
        Ring sizes whose SSME clock is also profiled (defaults to 4, 8, 16).
    """
    ssme_sizes = list(ssme_sizes) if ssme_sizes is not None else [4, 8, 16]
    figure_clock = BoundedClock(alpha=5, K=12)
    rows: List[dict] = [_clock_row("figure1 cherry(5,12)", figure_clock)]
    for n in ssme_sizes:
        protocol = SSME(ring_graph(n))
        rows.append(_clock_row(f"SSME ring n={n}", protocol.clock))

    checks = []
    for row in rows:
        checks.append(row["tail_length_by_phi"] == row["alpha"])
        checks.append(row["cycle_length_by_phi"] == row["K"])
        checks.append(row["values"] == row["alpha"] + row["K"])
        checks.append(row["max_dK"] == row["K"] // 2)
    passed = all(checks)

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Figure 1 — structure of the bounded clock cherry(alpha, K)",
        paper_claim=(
            "cherry(alpha, K) = {-alpha..-1} ∪ {0..K-1}; phi walks the tail in "
            "alpha steps and the cycle in K steps; resets send every value to "
            "-alpha (illustrated for alpha=5, K=12)"
        ),
        rows=rows,
        summary={
            "figure_rendering": "\n" + render_cherry_ascii(figure_clock),
            "all_structure_checks": passed,
        },
        passed=passed,
        notes=[
            "The figure is structural, not quantitative: the experiment checks "
            "the clock algebra (tail/cycle lengths, reset, d_K range) instead of "
            "reading values off a plot."
        ],
    )
