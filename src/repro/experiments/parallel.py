"""Opt-in process-level parallelism for embarrassingly parallel sweeps.

The theorem2/theorem3 drivers maximize over many *independent* trials
(daemon × initial configuration × seed); each trial is pure CPU work on its
own protocol instance, so fanning them across processes is safe and — for
the larger sweeps — near-linear.  This module provides the one primitive
they need: an order-preserving :func:`parallel_map` that degrades to a
plain sequential loop when no workers are requested (the default), so the
sequential and parallel paths execute the *same* task list with the *same*
precomputed seeds and produce identical reports.

Design constraints baked into the helper:

* **Tasks are plain picklable tuples** and workers are **module-level
  functions** — protocol objects hold closures (rule lambdas) and must be
  rebuilt inside the worker from primitive parameters.
* **Seeds are drawn by the caller before dispatch**, in the exact order the
  sequential code would draw them, so ``workers=`` never changes results.
* The ``fork`` start method is preferred when the platform offers it
  (cheap, inherits ``sys.path``); otherwise the default context is used.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def _pool_context():
    """The multiprocessing context to run pools under."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """``[worker(t) for t in tasks]``, optionally fanned across processes.

    ``workers`` of ``None``, ``0`` or ``1`` (the default everywhere) runs
    the plain sequential loop in-process — no pool, no pickling.  Larger
    values run a process pool of at most ``min(workers, len(tasks))``
    processes; results come back in task order, so callers aggregate
    identically either way.  ``worker`` must be a module-level (picklable)
    function and every task a picklable value.
    """
    tasks = list(tasks)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if not workers or workers == 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)), mp_context=_pool_context()
    ) as pool:
        return list(pool.map(worker, tasks))
