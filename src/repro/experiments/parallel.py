"""Opt-in process-level parallelism for embarrassingly parallel sweeps.

The theorem2/theorem3 drivers maximize over many *independent* trials
(daemon × initial configuration × seed); each trial is pure CPU work on its
own protocol instance, so fanning them across processes is safe and — for
the larger sweeps — near-linear.  This module provides the one primitive
they need: an order-preserving :func:`parallel_map` that degrades to a
plain sequential loop when no workers are requested (the default), so the
sequential and parallel paths execute the *same* task list with the *same*
precomputed seeds and produce identical reports.

Since the job service layer landed, :func:`parallel_map` is a thin wrapper
over :class:`repro.jobs.WorkerPool` (one throwaway pool per call); the
dispatcher-driven sweeps hold a *persistent* pool instead.  Both surfaces
share the pool's guarantees:

* **Tasks are plain picklable tuples** and workers are **module-level
  functions** — protocol objects hold closures (rule lambdas) and must be
  rebuilt inside the worker from primitive parameters.
* **Seeds are drawn by the caller before dispatch**, in the exact order the
  sequential code would draw them, so ``workers=`` never changes results.
* The ``fork`` start method is preferred when the platform offers it
  (cheap, inherits ``sys.path``); otherwise the default context is used.
* A failing task aborts the map with a :class:`~repro.exceptions.JobError`
  carrying the task index and a ``repr`` of the task tuple (the original
  worker exception is chained as ``__cause__``) — not an opaque pickled
  traceback with no indication of which task died.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from ..jobs.pool import WorkerPool

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    worker: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """``[worker(t) for t in tasks]``, optionally fanned across processes.

    ``workers`` of ``None``, ``0`` or ``1`` (the default everywhere) runs
    the plain sequential loop in-process — no pool, no pickling.  Larger
    values run a process pool of at most ``min(workers, len(tasks))``
    processes; results come back in task order, so callers aggregate
    identically either way.  ``worker`` must be a module-level (picklable)
    function and every task a picklable value.  A worker exception
    surfaces as :class:`~repro.exceptions.JobError` naming the failing
    task's index and ``repr``.
    """
    tasks = list(tasks)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    width = min(workers, len(tasks)) if workers else workers
    with WorkerPool(width) as pool:
        return pool.run(worker, tasks)
