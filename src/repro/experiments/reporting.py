"""Assembling the full paper-vs-measured report.

``run_all_experiments`` executes every experiment driver (E1–E6) and
``render_experiments_markdown`` turns the reports into the Markdown document
stored as ``EXPERIMENTS.md`` at the repository root.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Sequence

from . import (
    ablation_privilege_spacing,
    dijkstra_comparison,
    exact_small_n,
    figure1_clock,
    table_speculative_examples,
    theorem2_sync_upper,
    theorem3_async_upper,
    theorem4_lower_bound,
)
from .runner import ExperimentReport

__all__ = ["EXPERIMENT_DRIVERS", "run_all_experiments", "render_experiments_markdown"]

#: The experiment drivers in presentation order.  E1–E6 reproduce paper
#: artefacts; E7 is the ablation of the clock-size design choice; E8
#: cross-validates the sampled sweeps against the exact model checker.
EXPERIMENT_DRIVERS: Dict[str, Callable[[], ExperimentReport]] = {
    "E1": figure1_clock.run_experiment,
    "E2": table_speculative_examples.run_experiment,
    "E3": theorem2_sync_upper.run_experiment,
    "E4": theorem3_async_upper.run_experiment,
    "E5": theorem4_lower_bound.run_experiment,
    "E6": dijkstra_comparison.run_experiment,
    "E7": ablation_privilege_spacing.run_experiment,
    "E8": exact_small_n.run_experiment,
}


def run_all_experiments(
    only: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
) -> List[ExperimentReport]:
    """Run every experiment driver (or the subset named in ``only``).

    ``workers`` is forwarded to the drivers that support process-parallel
    sweeps (theorem2/theorem3); the others ignore it.  Reported numbers
    are identical for any value.  ``max_n`` caps the sweep sizes of the
    drivers that accept it (theorem2/theorem3/dijkstra — the CLI's
    ``--max-n``, e.g. ``--max-n 100`` to skip the large superstep rows)
    and ``horizon`` overrides their per-graph step budgets; each is
    forwarded by signature inspection like ``workers``.
    """
    selected = list(only) if only is not None else list(EXPERIMENT_DRIVERS)
    reports = []
    for experiment_id in selected:
        driver = EXPERIMENT_DRIVERS[experiment_id]
        parameters = inspect.signature(driver).parameters
        kwargs = {}
        if workers and "workers" in parameters:
            kwargs["workers"] = workers
        if max_n is not None and "max_n" in parameters:
            kwargs["max_n"] = max_n
        if horizon is not None and "horizon" in parameters:
            kwargs["horizon"] = horizon
        reports.append(driver(**kwargs))
    return reports


def render_experiments_markdown(reports: Sequence[ExperimentReport]) -> str:
    """Render reports as the EXPERIMENTS.md document."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of *Introducing Speculation in Self-Stabilization: An "
        "Application to Mutual Exclusion* (Dubois & Guerraoui, PODC 2013).",
        "",
        "Each section reproduces one artefact of the paper (see DESIGN.md §3 "
        "for the experiment index).  Regenerate any section with the matching "
        "benchmark under `benchmarks/`, e.g. "
        "`pytest benchmarks/bench_theorem2_sync_upper.py --benchmark-only -s`.",
        "",
    ]
    for report in reports:
        lines.append(report.to_markdown())
        lines.append("")
    overall = all(report.passed for report in reports)
    lines.append(f"**Overall:** {'all experiments PASS' if overall else 'some experiments FAIL'}")
    lines.append("")
    return "\n".join(lines)
