"""Assembling the full paper-vs-measured report.

``run_all_experiments`` executes every experiment driver (E1–E10) and
``render_experiments_markdown`` turns the reports into the Markdown document
stored as ``EXPERIMENTS.md`` at the repository root.

Each driver is registered as an :class:`ExperimentDriver` with an explicit
**capability declaration** — the set of service-layer options it accepts
(``dispatcher``, ``workers``, ``max_n``, ``horizon``) — instead of the old
signature-inspection kwarg forwarding.  ``run_all_experiments`` builds one
shared :class:`~repro.jobs.Dispatcher` (result cache, persistent worker
pool, progress stream) and hands it to every driver that declares the
``dispatcher`` capability, so repeated and overlapping sweeps are served
incrementally from the content-addressed cache and interrupted sweeps
resume from their completed jobs.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Union

from ..exceptions import ExperimentError
from ..jobs import Dispatcher, ProgressEvent, ResultStore
from . import (
    ablation_privilege_spacing,
    adaptive_speculation,
    dijkstra_comparison,
    exact_small_n,
    fault_campaigns,
    figure1_clock,
    table_speculative_examples,
    theorem2_sync_upper,
    theorem3_async_upper,
    theorem4_lower_bound,
)
from .runner import ExperimentReport

__all__ = [
    "EXPERIMENT_DRIVERS",
    "ExperimentDriver",
    "run_all_experiments",
    "render_experiments_markdown",
]


class ExperimentDriver:
    """A registered experiment driver with its declared capabilities.

    Calling the instance forwards to the underlying ``run_experiment``
    function, so existing ``EXPERIMENT_DRIVERS["E3"]()`` call sites keep
    working.  ``capabilities`` names exactly the service-layer keyword
    arguments the driver accepts; ``run_all_experiments`` forwards an
    option if and only if it is declared here — no signature inspection.
    """

    __slots__ = ("experiment_id", "run", "capabilities")

    def __init__(
        self,
        experiment_id: str,
        run: Callable[..., ExperimentReport],
        capabilities: Sequence[str] = (),
    ) -> None:
        self.experiment_id = experiment_id
        self.run = run
        self.capabilities: FrozenSet[str] = frozenset(capabilities)

    def __call__(self, **kwargs) -> ExperimentReport:
        return self.run(**kwargs)

    def __repr__(self) -> str:
        return (
            f"ExperimentDriver({self.experiment_id!r}, "
            f"capabilities={sorted(self.capabilities)})"
        )


#: The experiment drivers in presentation order.  E1–E6 reproduce paper
#: artefacts; E7 is the ablation of the clock-size design choice; E8
#: cross-validates the sampled sweeps against the exact model checker; E9
#: runs the named fault-campaign scenarios (recurring faults + churn);
#: E10 pins the adaptive layer (online engine/rule-set switching) against
#: its static optima.
#: Drivers declaring ``dispatcher`` emit their trial grids as job specs
#: and ride the shared cache/worker-pool service layer.
EXPERIMENT_DRIVERS: Dict[str, ExperimentDriver] = {
    "E1": ExperimentDriver("E1", figure1_clock.run_experiment),
    "E2": ExperimentDriver("E2", table_speculative_examples.run_experiment),
    "E3": ExperimentDriver(
        "E3",
        theorem2_sync_upper.run_experiment,
        capabilities=("dispatcher", "workers", "max_n", "horizon"),
    ),
    "E4": ExperimentDriver(
        "E4",
        theorem3_async_upper.run_experiment,
        capabilities=("dispatcher", "workers", "max_n", "horizon"),
    ),
    "E5": ExperimentDriver("E5", theorem4_lower_bound.run_experiment),
    "E6": ExperimentDriver(
        "E6",
        dijkstra_comparison.run_experiment,
        capabilities=("dispatcher", "workers", "max_n"),
    ),
    "E7": ExperimentDriver("E7", ablation_privilege_spacing.run_experiment),
    "E8": ExperimentDriver(
        "E8",
        exact_small_n.run_experiment,
        capabilities=("dispatcher", "workers"),
    ),
    "E9": ExperimentDriver(
        "E9",
        fault_campaigns.run_experiment,
        capabilities=("dispatcher", "workers"),
    ),
    "E10": ExperimentDriver(
        "E10",
        adaptive_speculation.run_experiment,
        capabilities=("dispatcher", "workers"),
    ),
}


def run_all_experiments(
    only: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
    cache: Union[None, str, ResultStore] = None,
    refresh: bool = False,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> List[ExperimentReport]:
    """Run every experiment driver (or the subset named in ``only``).

    Options are forwarded per driver according to its declared
    capabilities; reported numbers are identical for any combination:

    ``workers``
        Width of the shared worker pool fanning independent jobs across
        processes (default sequential).
    ``max_n`` / ``horizon``
        Cap the sweep sizes / override the per-graph step budgets of the
        drivers that declare them (the CLI's ``--max-n``/``--horizon``).
    ``cache``
        A cache directory (or prebuilt :class:`~repro.jobs.ResultStore`):
        job results are content-addressed on their ``spec_key``, so a
        repeated run re-simulates nothing and an interrupted run resumes
        from its completed jobs.  ``None`` (default) disables caching.
    ``refresh``
        Ignore (and rewrite) existing cache entries.
    ``progress``
        Callable streamed one :class:`~repro.jobs.ProgressEvent` per
        completed job.
    ``dispatcher``
        A prebuilt dispatcher (overrides ``cache``/``refresh``/
        ``progress``/``workers`` wiring — useful for tests and services
        embedding the experiment layer).
    """
    selected = list(only) if only is not None else list(EXPERIMENT_DRIVERS)
    unknown = [experiment_id for experiment_id in selected if experiment_id not in EXPERIMENT_DRIVERS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment id(s) {', '.join(repr(e) for e in unknown)}; "
            f"valid ids: {', '.join(EXPERIMENT_DRIVERS)}"
        )
    owns_dispatcher = dispatcher is None
    if owns_dispatcher:
        store = None
        if cache is not None:
            store = cache if isinstance(cache, ResultStore) else ResultStore(cache)
        dispatcher = Dispatcher(
            store=store, workers=workers, refresh=refresh, progress=progress
        )
    reports = []
    try:
        for experiment_id in selected:
            driver = EXPERIMENT_DRIVERS[experiment_id]
            kwargs = {}
            if "dispatcher" in driver.capabilities:
                kwargs["dispatcher"] = dispatcher
            elif workers and "workers" in driver.capabilities:
                kwargs["workers"] = workers
            if max_n is not None and "max_n" in driver.capabilities:
                kwargs["max_n"] = max_n
            if horizon is not None and "horizon" in driver.capabilities:
                kwargs["horizon"] = horizon
            reports.append(driver(**kwargs))
    finally:
        if owns_dispatcher:
            dispatcher.close()
    return reports


def render_experiments_markdown(reports: Sequence[ExperimentReport]) -> str:
    """Render reports as the EXPERIMENTS.md document."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of *Introducing Speculation in Self-Stabilization: An "
        "Application to Mutual Exclusion* (Dubois & Guerraoui, PODC 2013).",
        "",
        "Each section reproduces one artefact of the paper (see DESIGN.md §3 "
        "for the experiment index).  Regenerate any section with the matching "
        "benchmark under `benchmarks/`, e.g. "
        "`pytest benchmarks/bench_theorem2_sync_upper.py --benchmark-only -s`.",
        "",
    ]
    for report in reports:
        lines.append(report.to_markdown())
        lines.append("")
    overall = all(report.passed for report in reports)
    lines.append(f"**Overall:** {'all experiments PASS' if overall else 'some experiments FAIL'}")
    lines.append("")
    return "\n".join(lines)
