"""Experiment report containers and small shared helpers.

Every experiment driver (one per paper artefact, see DESIGN.md §3) returns
an :class:`ExperimentReport`: the rows it measured, the paper's stated
claim, and a verdict.  Benchmarks print the report; EXPERIMENTS.md records
the paper-vs-measured comparison produced from the same objects.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..analysis import format_markdown_table, format_table
from ..exceptions import ExperimentError

__all__ = ["ExperimentReport"]


class ExperimentReport:
    """Outcome of one experiment (one table/figure/theorem of the paper).

    Attributes
    ----------
    experiment_id:
        Short identifier ("E1" ... "E6") matching DESIGN.md.
    title:
        Human-readable title.
    paper_claim:
        The quantitative statement of the paper being reproduced.
    rows:
        Measured rows (list of dicts), the unit of comparison.
    summary:
        Aggregate key/value pairs (growth exponents, verdicts, ...).
    passed:
        Overall verdict: True when the measured data is consistent with the
        paper's claim (upper bounds respected, lower-bound witnesses found,
        expected ordering of protocols observed).
    notes:
        Free-text caveats (substitutions, horizons, workload details).
    """

    def __init__(
        self,
        experiment_id: str,
        title: str,
        paper_claim: str,
        rows: Sequence[Mapping[str, object]],
        summary: Optional[Mapping[str, object]] = None,
        passed: bool = True,
        notes: Optional[Sequence[str]] = None,
    ) -> None:
        if not experiment_id:
            raise ExperimentError("experiment_id must be non-empty")
        self.experiment_id = experiment_id
        self.title = title
        self.paper_claim = paper_claim
        self.rows: List[Dict[str, object]] = [dict(row) for row in rows]
        self.summary: Dict[str, object] = dict(summary or {})
        self.passed = passed
        self.notes: List[str] = list(notes or [])

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def table(self, columns: Optional[Sequence[str]] = None) -> str:
        """The measured rows as an aligned text table."""
        return format_table(self.rows, columns=columns, title=None)

    def to_text(self) -> str:
        """A full text report: header, claim, table, summary, verdict."""
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"paper claim : {self.paper_claim}",
            "",
            self.table(),
            "",
        ]
        for key, value in self.summary.items():
            lines.append(f"{key}: {value}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A Markdown rendering used to build EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            format_markdown_table(self.rows),
            "",
        ]
        if self.summary:
            lines.append("**Summary.**")
            for key, value in self.summary.items():
                lines.append(f"- {key}: {value}")
            lines.append("")
        if self.notes:
            lines.append("**Notes.**")
            for note in self.notes:
                lines.append(f"- {note}")
            lines.append("")
        lines.append(f"**Verdict:** {'PASS' if self.passed else 'FAIL'}")
        lines.append("")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialization (reports as cacheable artifacts)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The report as plain JSON data.

        ``from_dict(to_dict())`` round-trips exactly (rows keep their key
        order), so reports can be persisted next to the job results they
        aggregate and re-rendered without re-running anything.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "rows": [dict(row) for row in self.rows],
            "summary": dict(self.summary),
            "passed": self.passed,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentReport":
        """Rebuild a report from :meth:`to_dict` data."""
        try:
            return cls(
                experiment_id=data["experiment_id"],
                title=data["title"],
                paper_claim=data["paper_claim"],
                rows=data["rows"],
                summary=data.get("summary"),
                passed=data.get("passed", True),
                notes=data.get("notes"),
            )
        except KeyError as exc:
            raise ExperimentError(f"report data is missing field {exc}") from None

    def __repr__(self) -> str:
        return (
            f"ExperimentReport({self.experiment_id!r}, rows={len(self.rows)}, "
            f"passed={self.passed})"
        )
