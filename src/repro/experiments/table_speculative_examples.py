"""E2 — the Section 3 catalogue of accidentally speculative protocols.

Section 3 of the paper observes that several classical self-stabilizing
protocols already satisfy Definition 4 without having been designed for it:

* Dijkstra's token ring: ``Θ(n²)`` steps under the unfair distributed
  daemon vs ``n`` steps under the synchronous daemon;
* the min+1 BFS spanning tree (Huang & Chen): ``Θ(n²)`` vs ``Θ(diam(g))``;
* the Manne et al. maximal matching: ``4n + 2m`` vs ``2n + 1``.

This experiment measures each protocol's stabilization time under an
unfair-style scheduler (the greedy convergence-delaying central daemon,
whose executions the unfair distributed daemon allows) and under the
synchronous daemon, over a shared workload of random initial
configurations, and reports the speculation factor.  The paper's statements
are asymptotic, so the check is on *shape*: the synchronous time never
exceeds the unfair time, and on the largest instance the speculation factor
is substantial.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines import BfsSpanningTree, BfsTreeSpec, MaximalMatching, MaximalMatchingSpec
from ..core import (
    AdversarialCentralDaemon,
    Protocol,
    Specification,
    SynchronousDaemon,
    run_speculation_study,
)
from ..graphs import Graph, diameter, path_graph, random_connected_graph, ring_graph
from ..mutex import DijkstraTokenRing, MutualExclusionSpec
from .runner import ExperimentReport
from .workloads import random_configurations

__all__ = ["run_experiment", "EXPERIMENT_ID", "MIN_SPECULATION_FACTOR"]

EXPERIMENT_ID = "E2"

#: The speculation factor (unfair steps / synchronous steps) the largest
#: instance of each family must reach for the experiment to pass.
MIN_SPECULATION_FACTOR = 1.2


def _dijkstra_family(sizes: Sequence[int]) -> Dict[str, object]:
    return {
        "name": "Dijkstra token ring",
        "paper_unfair": "Theta(n^2)",
        "paper_sync": "n",
        "graphs": [ring_graph(n) for n in sizes],
        "protocol_factory": DijkstraTokenRing,
        "spec_factory": MutualExclusionSpec,
        "strong_horizon": lambda p: 8 * p.graph.n * p.graph.n + 200,
        "weak_horizon": lambda p: 6 * p.graph.n + 60,
        "reference_unfair": lambda p: float(p.graph.n**2),
        "reference_sync": lambda p: float(p.graph.n),
    }


def _bfs_family(sizes: Sequence[int]) -> Dict[str, object]:
    return {
        "name": "min+1 BFS tree",
        "paper_unfair": "Theta(n^2)",
        "paper_sync": "Theta(diam(g))",
        "graphs": [path_graph(n) for n in sizes],
        "protocol_factory": BfsSpanningTree,
        "spec_factory": BfsTreeSpec,
        "strong_horizon": lambda p: 8 * p.graph.n * p.graph.n + 200,
        "weak_horizon": lambda p: 4 * p.graph.n + 40,
        "reference_unfair": lambda p: float(p.graph.n**2),
        "reference_sync": lambda p: float(diameter(p.graph)),
    }


def _matching_family(sizes: Sequence[int], seed: int) -> Dict[str, object]:
    graphs = [random_connected_graph(n, 0.25, random.Random(seed + n)) for n in sizes]
    return {
        "name": "maximal matching",
        "paper_unfair": "4n + 2m",
        "paper_sync": "2n + 1",
        "graphs": graphs,
        "protocol_factory": MaximalMatching,
        "spec_factory": MaximalMatchingSpec,
        "strong_horizon": lambda p: 10 * (p.graph.n + p.graph.m) + 200,
        "weak_horizon": lambda p: 4 * p.graph.n + 40,
        "reference_unfair": lambda p: float(4 * p.graph.n + 2 * p.graph.m),
        "reference_sync": lambda p: float(2 * p.graph.n + 1),
    }


def run_experiment(
    dijkstra_sizes: Optional[Sequence[int]] = None,
    bfs_sizes: Optional[Sequence[int]] = None,
    matching_sizes: Optional[Sequence[int]] = None,
    configurations_per_graph: int = 5,
    seed: int = 0,
) -> ExperimentReport:
    """Measure the three Section 3 protocol families."""
    dijkstra_sizes = list(dijkstra_sizes) if dijkstra_sizes is not None else [5, 7, 9, 11]
    bfs_sizes = list(bfs_sizes) if bfs_sizes is not None else [6, 9, 12, 15]
    matching_sizes = list(matching_sizes) if matching_sizes is not None else [6, 9, 12]
    families = [
        _dijkstra_family(dijkstra_sizes),
        _bfs_family(bfs_sizes),
        _matching_family(matching_sizes, seed),
    ]
    rng = random.Random(seed)
    rows: List[Dict[str, object]] = []
    passed = True

    for family in families:
        def workload(protocol: Protocol, workload_rng: random.Random) -> List:
            return random_configurations(protocol, configurations_per_graph, workload_rng)

        study = run_speculation_study(
            protocol_factory=family["protocol_factory"],
            specification_factory=family["spec_factory"],
            graphs=family["graphs"],
            strong_daemon_factory=AdversarialCentralDaemon,
            weak_daemon_factory=SynchronousDaemon,
            workload=workload,
            strong_horizon=family["strong_horizon"],
            weak_horizon=family["weak_horizon"],
            rng=random.Random(rng.randrange(2**63)),
        )
        family_ok = study.weak_never_slower and study.satisfies_definition4(
            min_final_factor=MIN_SPECULATION_FACTOR
        )
        passed = passed and family_ok
        for measurement, graph in zip(study.measurements, family["graphs"]):
            protocol = family["protocol_factory"](graph)
            rows.append(
                {
                    "protocol": family["name"],
                    "n": graph.n,
                    "m": graph.m,
                    "diam": diameter(graph),
                    "unfair_steps": measurement.strong.max_steps,
                    "sync_steps": measurement.weak.max_steps,
                    "speculation_factor": measurement.speculation_factor,
                    "paper_unfair": family["paper_unfair"],
                    "paper_sync": family["paper_sync"],
                    "reference_unfair": family["reference_unfair"](protocol),
                    "reference_sync": family["reference_sync"](protocol),
                }
            )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Section 3 — accidentally speculative protocols",
        paper_claim=(
            "Dijkstra: Theta(n^2) unfair vs n synchronous; min+1 BFS: Theta(n^2) "
            "vs Theta(diam); maximal matching: 4n+2m vs 2n+1"
        ),
        rows=rows,
        summary={
            "sync_never_slower_than_unfair": all(
                (row["sync_steps"] or 0) <= (row["unfair_steps"] or 0) for row in rows
            ),
            "min_required_final_factor": MIN_SPECULATION_FACTOR,
        },
        passed=passed,
        notes=[
            "The unfair distributed daemon is approximated by the greedy "
            "convergence-delaying central daemon (its executions are allowed by "
            "ud); measured values therefore lower-bound the true worst case.",
            "The paper's figures are asymptotic; the reproduction checks the "
            "ordering (synchronous never slower, substantial factor on the "
            "largest instance) rather than the constants.",
        ],
    )
