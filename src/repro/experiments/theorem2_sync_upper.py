"""E3 — Theorem 2: ``conv_time(SSME, sd) <= ⌈diam(g)/2⌉``.

For every topology/size in the sweep we measure the worst synchronous
stabilization time of SSME over a workload of random + adversarial initial
configurations and compare it to the paper's bound ``⌈diam(g)/2⌉``.  Two
facts are checked:

* **upper bound** — no measured stabilization time exceeds the bound (this
  must hold for *every* initial configuration, so a single violation would
  falsify the reproduction);
* **tightness** — on every graph with ``diam >= 1`` the adversarial
  workload (built from the Theorem 4 splicing construction) actually
  reaches the bound, i.e. the measured worst case equals ``⌈diam/2⌉``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import SynchronousDaemon, worst_case_stabilization
from ..graphs import diameter, make_topology
from ..mutex import SSME, MutualExclusionSpec
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = ["run_experiment", "DEFAULT_SWEEP", "EXPERIMENT_ID"]

EXPERIMENT_ID = "E3"

#: Default (topology, size) sweep.  Sizes are kept moderate because the
#: synchronous horizon must cover a full clock period K = Θ(n·diam).
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("ring", 6),
    ("ring", 10),
    ("ring", 14),
    ("path", 7),
    ("path", 11),
    ("grid", 9),
    ("grid", 16),
    ("star", 9),
    ("binary_tree", 11),
    ("random", 12),
    ("complete", 8),
)


def run_experiment(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    random_configurations_per_graph: int = 8,
    seed: int = 0,
    check_liveness: bool = True,
    engine: str = "incremental",
) -> ExperimentReport:
    """Measure SSME's synchronous stabilization across topologies."""
    sweep = list(sweep) if sweep is not None else list(DEFAULT_SWEEP)
    rng = random.Random(seed)
    rows: List[Dict[str, object]] = []
    upper_ok = True
    tight_ok = True
    for topology, size in sweep:
        graph = make_topology(topology, size)
        protocol = SSME(graph)
        specification = MutualExclusionSpec(protocol)
        bound = protocol.synchronous_stabilization_bound()
        workload = mutex_workload(
            protocol,
            random.Random(rng.randrange(2**63)),
            random_count=random_configurations_per_graph,
        )
        # Horizon: reaching Γ₁ takes at most alpha + lcp + diam <= 3n synchronous
        # steps and passing every privileged value takes at most K + diam more,
        # so one clock period plus a 4n slack covers the liveness check.
        horizon = protocol.K + 4 * protocol.alpha + 16
        # Light traces end to end: the safety monitor streams the
        # stabilization index during the run and the liveness window
        # reconstructs configurations on demand with bounded retention.
        result = worst_case_stabilization(
            protocol=protocol,
            daemon_factory=SynchronousDaemon,
            specification=specification,
            initial_configurations=workload,
            horizon=horizon,
            rng=random.Random(rng.randrange(2**63)),
            check_liveness=check_liveness,
            engine=engine,
            trace="light",
        )
        measured = result.max_steps
        row_upper = result.all_stabilized and measured is not None and measured <= bound
        row_tight = protocol.diam < 1 or measured == bound
        upper_ok = upper_ok and row_upper
        tight_ok = tight_ok and row_tight
        rows.append(
            {
                "topology": topology,
                "n": graph.n,
                "diam": protocol.diam,
                "K": protocol.K,
                "configs": len(workload),
                "measured_worst_steps": measured,
                "bound_ceil_diam_over_2": bound,
                "within_bound": row_upper,
                "reaches_bound": measured == bound,
                "liveness_ok": result.all_live,
            }
        )
    passed = upper_ok and tight_ok
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Theorem 2 — synchronous stabilization time of SSME",
        paper_claim="conv_time(SSME, sd) <= ceil(diam(g)/2) on every communication graph",
        rows=rows,
        summary={
            "all_within_bound": upper_ok,
            "bound_reached_on_every_graph": tight_ok,
        },
        passed=passed,
        notes=[
            "Workload: random configurations plus the adversarial spliced "
            "configuration of Theorem 4 (which realizes the worst case).",
            "Under the synchronous daemon executions are deterministic, so the "
            "measured value is exact for the horizon (one clock period).",
        ],
    )
