"""E3 — Theorem 2: ``conv_time(SSME, sd) <= ⌈diam(g)/2⌉``.

For every topology/size in the sweep we measure the worst synchronous
stabilization time of SSME over a workload of random + adversarial initial
configurations and compare it to the paper's bound ``⌈diam(g)/2⌉``.  Two
facts are checked:

* **upper bound** — no measured stabilization time exceeds the bound (this
  must hold for *every* initial configuration, so a single violation would
  falsify the reproduction);
* **tightness** — on every graph with ``diam >= 1`` the adversarial
  workload (built from the Theorem 4 splicing construction) actually
  reaches the bound, i.e. the measured worst case equals ``⌈diam/2⌉``.

The sweep is embarrassingly parallel: every (graph, initial configuration)
trial is independent, so the driver builds one task list — with all seeds
pre-drawn in the sequential order — and executes it through
:func:`repro.experiments.parallel.parallel_map`.  ``workers=`` (opt-in)
fans the trials across processes; results are identical either way.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    SynchronousDaemon,
    WorstCaseStabilization,
    measure_stabilization,
)
from ..graphs import make_topology
from ..lowerbound import default_spliced_delays
from ..mutex import SSME, MutualExclusionSpec
from .parallel import parallel_map
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = ["run_experiment", "DEFAULT_SWEEP", "EXPERIMENT_ID"]

EXPERIMENT_ID = "E3"

#: Default (topology, size) sweep.  Sizes are kept moderate because the
#: synchronous horizon must cover a full clock period K = Θ(n·diam).
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("ring", 6),
    ("ring", 10),
    ("ring", 14),
    ("path", 7),
    ("path", 11),
    ("grid", 9),
    ("grid", 16),
    ("star", 9),
    ("binary_tree", 11),
    ("random", 12),
    ("complete", 8),
)


def _sync_horizon(protocol: SSME) -> int:
    # Horizon: reaching Γ₁ takes at most alpha + lcp + diam <= 3n synchronous
    # steps and passing every privileged value takes at most K + diam more,
    # so one clock period plus a 4n slack covers the liveness check.
    return protocol.K + 4 * protocol.alpha + 16


def _run_sync_trial(protocol, specification, items, seed, check_liveness, engine):
    """One (graph, initial configuration) trial against a built protocol."""
    # Light traces end to end: the safety monitor streams the stabilization
    # index during the run and the liveness window reconstructs
    # configurations on demand with bounded retention.
    return measure_stabilization(
        protocol=protocol,
        daemon=SynchronousDaemon(),
        initial=protocol.configuration(dict(items)),
        specification=specification,
        horizon=_sync_horizon(protocol),
        rng=random.Random(seed),
        check_liveness=check_liveness,
        engine=engine,
        trace="light",
    )


def _measure_sync_trial(task):
    """Picklable process worker wrapping :func:`_run_sync_trial`.

    The protocol is rebuilt from primitive parameters inside the worker
    (protocol objects hold rule closures and cannot cross process
    boundaries); the task seed was pre-drawn by the driver in sequential
    order, so results do not depend on how trials are scheduled.
    """
    topology, size, items, seed, check_liveness, engine = task
    protocol = SSME(make_topology(topology, size))
    return _run_sync_trial(
        protocol, MutualExclusionSpec(protocol), items, seed, check_liveness, engine
    )


def run_experiment(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    random_configurations_per_graph: int = 8,
    seed: int = 0,
    check_liveness: bool = True,
    engine: str = "auto",
    workers: Optional[int] = None,
) -> ExperimentReport:
    """Measure SSME's synchronous stabilization across topologies.

    ``workers`` (opt-in, default sequential) fans the independent trials
    across that many processes; the report is identical for any value.
    """
    sweep = list(sweep) if sweep is not None else list(DEFAULT_SWEEP)
    rng = random.Random(seed)
    graphs: List[Dict[str, object]] = []
    tasks: List[tuple] = []
    for topology, size in sweep:
        graph = make_topology(topology, size)
        protocol = SSME(graph)
        # Beyond the plain random faults the workload seeds the lower-bound
        # witnesses: double privileges on the diametral pair plus two more
        # far pairs, and spliced Theorem 4 configurations at the latest and
        # midpoint delays — random initials almost never exercise the bound.
        workload = mutex_workload(
            protocol,
            random.Random(rng.randrange(2**63)),
            random_count=random_configurations_per_graph,
            extra_pairs=2,
            spliced_delays=default_spliced_delays(protocol.diam),
        )
        trial_rng = random.Random(rng.randrange(2**63))
        first_task = len(tasks)
        for initial in workload:
            tasks.append(
                (
                    topology,
                    size,
                    tuple(initial.items()),
                    trial_rng.randrange(2**63),
                    check_liveness,
                    engine,
                )
            )
        graphs.append(
            {
                "topology": topology,
                "n": graph.n,
                "diam": protocol.diam,
                "K": protocol.K,
                "bound": protocol.synchronous_stabilization_bound(),
                "configs": len(workload),
                "tasks": (first_task, len(tasks)),
                "protocol": protocol,
            }
        )

    if workers and workers > 1:
        measurements = parallel_map(_measure_sync_trial, tasks, workers=workers)
    else:
        # Sequential: reuse the protocol (and its diameter computation)
        # already built per graph instead of rebuilding it per trial.
        measurements = []
        for info in graphs:
            protocol = info["protocol"]
            specification = MutualExclusionSpec(protocol)
            first, last = info["tasks"]
            for _t, _s, items, task_seed, live, task_engine in tasks[first:last]:
                measurements.append(
                    _run_sync_trial(
                        protocol, specification, items, task_seed, live, task_engine
                    )
                )

    rows: List[Dict[str, object]] = []
    upper_ok = True
    tight_ok = True
    for info in graphs:
        first, last = info["tasks"]
        result = WorstCaseStabilization(measurements[first:last])
        measured = result.max_steps
        bound = info["bound"]
        row_upper = result.all_stabilized and measured is not None and measured <= bound
        row_tight = info["diam"] < 1 or measured == bound
        upper_ok = upper_ok and row_upper
        tight_ok = tight_ok and row_tight
        rows.append(
            {
                "topology": info["topology"],
                "n": info["n"],
                "diam": info["diam"],
                "K": info["K"],
                "configs": info["configs"],
                "measured_worst_steps": measured,
                "bound_ceil_diam_over_2": bound,
                "within_bound": row_upper,
                "reaches_bound": measured == bound,
                "liveness_ok": result.all_live,
            }
        )
    passed = upper_ok and tight_ok
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Theorem 2 — synchronous stabilization time of SSME",
        paper_claim="conv_time(SSME, sd) <= ceil(diam(g)/2) on every communication graph",
        rows=rows,
        summary={
            "all_within_bound": upper_ok,
            "bound_reached_on_every_graph": tight_ok,
        },
        passed=passed,
        notes=[
            "Workload: random configurations plus the adversarial spliced "
            "configuration of Theorem 4 (which realizes the worst case).",
            "Under the synchronous daemon executions are deterministic, so the "
            "measured value is exact for the horizon (one clock period).",
        ],
    )
