"""E3 — Theorem 2: ``conv_time(SSME, sd) <= ⌈diam(g)/2⌉``.

For every topology/size in the sweep we measure the worst synchronous
stabilization time of SSME over a workload of random + adversarial initial
configurations and compare it to the paper's bound ``⌈diam(g)/2⌉``.  Two
facts are checked:

* **upper bound** — no measured stabilization time exceeds the bound (this
  must hold for *every* initial configuration, so a single violation would
  falsify the reproduction);
* **tightness** — on every graph with ``diam >= 1`` the adversarial
  workload (built from the Theorem 4 splicing construction) actually
  reaches the bound, i.e. the measured worst case equals ``⌈diam/2⌉``.

The sweep is embarrassingly parallel: every (graph, initial configuration)
trial is independent.  The driver *emits* its trial grid as a list of
declarative :class:`~repro.jobs.JobSpec`s — with all seeds pre-drawn in
the sequential draw order — and executes it through a
:class:`~repro.jobs.Dispatcher`: sequential, process-parallel
(``workers=``), cached and resumed executions all aggregate the same
results.  :data:`CODE_VERSION` is folded into every spec's ``spec_key``;
bump it whenever this driver's measured semantics change.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    StabilizationMeasurement,
    SynchronousDaemon,
    WorstCaseStabilization,
    measure_stabilization,
)
from ..graphs import make_topology
from ..jobs import Dispatcher, JobSpec
from ..lowerbound import (
    default_spliced_delays,
    delayed_double_privilege_configuration,
    immediate_double_privilege_configuration,
)
from ..mutex import SSME, MutualExclusionSpec
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = ["run_experiment", "emit_jobs", "run_job", "DEFAULT_SWEEP", "EXPERIMENT_ID", "CODE_VERSION"]

EXPERIMENT_ID = "E3"

#: Folded into every emitted spec's ``spec_key``: bump on any change to
#: this driver's trial semantics (workload construction, horizons, the
#: measurement call) so stale cached results become misses.
CODE_VERSION = "theorem2/1"

#: Runner reference resolved inside worker processes.
_RUNNER = "repro.experiments.theorem2_sync_upper:run_job"

#: Above this size the driver switches to the large-n regime: trusted
#: closed-form diameters, the analytic (ball-planting) witness instead of
#: the spliced/far-pair constructions (all super-linear), a safety-only
#: horizon of a few bounds instead of a full clock period, and no liveness
#: window.  Matches the SSME constructor's diameter-validation cutoff.
LARGE_N = 512

#: Default (topology, size) sweep.  Small sizes keep the full workload and
#: a liveness horizon covering one clock period K = Θ(n·diam); the large
#: ring rows ride the batched superstep backend through the safety-only
#: regime (the Theorem 2 bound n/4 is still met exactly by the analytic
#: witness).
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("ring", 6),
    ("ring", 10),
    ("ring", 14),
    ("path", 7),
    ("path", 11),
    ("grid", 9),
    ("grid", 16),
    ("star", 9),
    ("binary_tree", 11),
    ("random", 12),
    ("complete", 8),
    ("ring", 1000),
    ("ring", 10000),
)

#: Closed-form diameters of the generated topologies (as functions of the
#: generated graph's n) — O(1) instead of the O(n²) BFS sweep, used above
#: LARGE_N where the paper's "diam(g) is a known system constant" stance
#: is the only feasible one.
_TRUSTED_DIAMETERS = {
    "ring": lambda n: n // 2,
    "path": lambda n: n - 1,
    "complete": lambda n: 1,
    "star": lambda n: 2,
}


def _build_protocol(topology: str, size: int) -> SSME:
    graph = make_topology(topology, size)
    if graph.n > LARGE_N:
        trusted = _TRUSTED_DIAMETERS.get(topology)
        if trusted is not None:
            return SSME(graph, diam=trusted(graph.n))
    return SSME(graph)


@lru_cache(maxsize=32)
def _cached_protocol(topology: str, size: int) -> SSME:
    # Protocols are immutable rule templates, so both the emitting driver
    # and the job runner (sequential or forked worker) share one instance
    # per (topology, size) instead of re-deriving graph + diameter per trial.
    return _build_protocol(topology, size)


def _sync_horizon(protocol: SSME) -> int:
    # Horizon: reaching Γ₁ takes at most alpha + lcp + diam <= 3n synchronous
    # steps and passing every privileged value takes at most K + diam more,
    # so one clock period plus a 4n slack covers the liveness check.
    return protocol.K + 4 * protocol.alpha + 16


def _safety_horizon(protocol: SSME) -> int:
    # Large-n regime: Theorem 2 guarantees every violation happens within
    # ceil(diam/2) synchronous steps, so a few bounds of slack suffice to
    # certify the measured stabilization index — no clock period needed
    # when the liveness window is skipped.
    bound = protocol.synchronous_stabilization_bound()
    return bound + max(256, protocol.graph.n // 8)


def _large_n_workload(protocol: SSME, rng: random.Random, random_count: int):
    """The adversarial workload of the large-n regime, all O(n) to build:
    random faults, an immediate double privilege on an antipodal-ish pair,
    and the analytic delayed witnesses at the latest admissible violation
    delay (which realizes the Theorem 2 bound exactly) and its midpoint."""
    u = protocol.graph.sorted_vertices()[0]
    distances = protocol.graph.bfs_distances(u)
    pair = (u, max(distances, key=distances.get))
    workload = [protocol.random_configuration(rng) for _ in range(random_count)]
    workload.append(immediate_double_privilege_configuration(protocol, pair=pair))
    for t in sorted(set(default_spliced_delays(protocol.diam)), reverse=True):
        workload.append(
            delayed_double_privilege_configuration(protocol, t, pair=pair)
        )
    return workload


def _run_sync_trial(
    protocol, specification, items, seed, check_liveness, engine, horizon
):
    """One (graph, initial configuration) trial against a built protocol."""
    # Light traces end to end: the safety monitor streams the stabilization
    # index during the run and the liveness window reconstructs
    # configurations on demand with bounded retention.
    return measure_stabilization(
        protocol=protocol,
        daemon=SynchronousDaemon(),
        initial=protocol.configuration(dict(items)),
        specification=specification,
        horizon=horizon,
        rng=random.Random(seed),
        check_liveness=check_liveness,
        engine=engine,
        trace="light",
        count_rounds=False,
    )


def _measurement_result(measurement: StabilizationMeasurement) -> Dict[str, object]:
    """A measurement as the JSON result the cache stores."""
    return {
        "stabilization_steps": measurement.stabilization_steps,
        "stabilized": measurement.stabilized,
        "liveness_checked": measurement.liveness_checked,
        "liveness_ok": measurement.liveness_ok,
        "execution_steps": measurement.execution_steps,
        "terminal": measurement.terminal,
        "rounds": measurement.rounds,
    }


def _measurement_from_result(result) -> StabilizationMeasurement:
    return StabilizationMeasurement(
        stabilization_steps=result["stabilization_steps"],
        stabilized=result["stabilized"],
        liveness_checked=result["liveness_checked"],
        liveness_ok=result["liveness_ok"],
        execution_steps=result["execution_steps"],
        terminal=result["terminal"],
        rounds=result["rounds"],
    )


def run_job(spec: JobSpec) -> Dict[str, object]:
    """Execute one emitted trial spec (runs inside worker processes).

    The protocol is rebuilt (cached per process) from the spec's graph
    parameters — protocol objects hold rule closures and never cross
    process or cache boundaries; the seed was pre-drawn by the driver in
    sequential order, so results do not depend on scheduling.
    """
    protocol = _cached_protocol(spec.graph_item("topology"), spec.graph_item("size"))
    measurement = _run_sync_trial(
        protocol,
        MutualExclusionSpec(protocol),
        spec.param("initial"),
        spec.seeds[0],
        spec.param("check_liveness"),
        spec.param("engine"),
        spec.horizon,
    )
    return _measurement_result(measurement)


def emit_jobs(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    random_configurations_per_graph: int = 8,
    seed: int = 0,
    check_liveness: bool = True,
    engine: str = "auto",
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
) -> Tuple[List[Dict[str, object]], List[JobSpec]]:
    """Build the trial grid: per-graph aggregation info + one spec per trial.

    Every RNG draw happens here, in the exact order the original inline
    loop drew them, and lands in a spec's ``seeds`` — executing the specs
    is then order-independent.
    """
    sweep = list(sweep) if sweep is not None else list(DEFAULT_SWEEP)
    if max_n is not None:
        sweep = [(topology, size) for topology, size in sweep if size <= max_n]
    rng = random.Random(seed)
    graphs: List[Dict[str, object]] = []
    specs: List[JobSpec] = []
    for topology, size in sweep:
        protocol = _cached_protocol(topology, size)
        graph = protocol.graph
        large = graph.n > LARGE_N
        if large:
            workload = _large_n_workload(
                protocol,
                random.Random(rng.randrange(2**63)),
                random_count=min(random_configurations_per_graph, 3),
            )
        else:
            # Beyond the plain random faults the workload seeds the
            # lower-bound witnesses: double privileges on the diametral pair
            # plus two more far pairs, and spliced Theorem 4 configurations
            # at the latest and midpoint delays — random initials almost
            # never exercise the bound.
            workload = mutex_workload(
                protocol,
                random.Random(rng.randrange(2**63)),
                random_count=random_configurations_per_graph,
                extra_pairs=2,
                spliced_delays=default_spliced_delays(protocol.diam),
            )
        trial_horizon = horizon
        if trial_horizon is None:
            trial_horizon = (
                _safety_horizon(protocol) if large else _sync_horizon(protocol)
            )
        trial_liveness = check_liveness and not large
        trial_rng = random.Random(rng.randrange(2**63))
        first_task = len(specs)
        for initial in workload:
            specs.append(
                JobSpec(
                    runner=_RUNNER,
                    code_version=CODE_VERSION,
                    protocol="ssme",
                    graph={"topology": topology, "size": size},
                    daemon="synchronous",
                    seeds=(trial_rng.randrange(2**63),),
                    horizon=trial_horizon,
                    metrics=("stabilization_steps", "stabilized", "liveness_ok"),
                    params={
                        "initial": tuple(initial.items()),
                        "check_liveness": trial_liveness,
                        "engine": engine,
                    },
                )
            )
        graphs.append(
            {
                "topology": topology,
                "n": graph.n,
                "diam": protocol.diam,
                "K": protocol.K,
                "bound": protocol.synchronous_stabilization_bound(),
                "configs": len(workload),
                "horizon": trial_horizon,
                "liveness": trial_liveness,
                "tasks": (first_task, len(specs)),
            }
        )
    return graphs, specs


def _aggregate(
    graphs: List[Dict[str, object]], results: Sequence[object]
) -> ExperimentReport:
    rows: List[Dict[str, object]] = []
    upper_ok = True
    tight_ok = True
    for info in graphs:
        first, last = info["tasks"]
        result = WorstCaseStabilization(
            [_measurement_from_result(r) for r in results[first:last]]
        )
        measured = result.max_steps
        bound = info["bound"]
        row_upper = result.all_stabilized and measured is not None and measured <= bound
        row_tight = info["diam"] < 1 or measured == bound
        upper_ok = upper_ok and row_upper
        tight_ok = tight_ok and row_tight
        rows.append(
            {
                "topology": info["topology"],
                "n": info["n"],
                "diam": info["diam"],
                "K": info["K"],
                "configs": info["configs"],
                "horizon": info["horizon"],
                "measured_worst_steps": measured,
                "bound_ceil_diam_over_2": bound,
                "within_bound": row_upper,
                "reaches_bound": measured == bound,
                "liveness_ok": result.all_live,
            }
        )
    passed = upper_ok and tight_ok
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Theorem 2 — synchronous stabilization time of SSME",
        paper_claim="conv_time(SSME, sd) <= ceil(diam(g)/2) on every communication graph",
        rows=rows,
        summary={
            "all_within_bound": upper_ok,
            "bound_reached_on_every_graph": tight_ok,
        },
        passed=passed,
        notes=[
            "Workload: random configurations plus the adversarial spliced "
            "configuration of Theorem 4 (which realizes the worst case).",
            "Under the synchronous daemon executions are deterministic, so the "
            "measured value is exact for the horizon (one clock period).",
            f"Rows with n > {LARGE_N} run the safety-only large-n regime on "
            "the batched superstep backend: trusted closed-form diameter, "
            "analytic ball-planting witnesses (same measured tightness as "
            "the spliced construction), horizon of a few Theorem 2 bounds, "
            "liveness window skipped.",
        ],
    )


def run_experiment(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    random_configurations_per_graph: int = 8,
    seed: int = 0,
    check_liveness: bool = True,
    engine: str = "auto",
    workers: Optional[int] = None,
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Measure SSME's synchronous stabilization across topologies.

    The trial grid is emitted as :class:`~repro.jobs.JobSpec`s and executed
    through ``dispatcher`` (one with a result cache makes repeated and
    overlapping sweeps incremental and interrupted sweeps resumable); when
    ``dispatcher`` is None a throwaway uncached dispatcher with ``workers``
    processes runs the grid.  The report is bit-for-bit identical for any
    ``workers`` value, with or without cache, fresh or resumed.  ``max_n``
    drops every sweep entry larger than that size (the CLI's ``--max-n``,
    e.g. to skip the n >= 1000 superstep rows on a slow machine);
    ``horizon`` overrides the per-graph step budget outright.  Above
    :data:`LARGE_N` vertices a row automatically switches to the
    safety-only regime: trusted closed-form diameter, analytic witnesses,
    a horizon of a few Theorem 2 bounds, and no liveness window.
    """
    graphs, specs = emit_jobs(
        sweep=sweep,
        random_configurations_per_graph=random_configurations_per_graph,
        seed=seed,
        check_liveness=check_liveness,
        engine=engine,
        max_n=max_n,
        horizon=horizon,
    )
    if dispatcher is None:
        with Dispatcher(workers=workers) as local:
            results = local.run(specs, label=EXPERIMENT_ID)
    else:
        results = dispatcher.run(specs, label=EXPERIMENT_ID)
    return _aggregate(graphs, results)
