"""E4 — Theorem 3: ``conv_time(SSME, ud) ∈ O(diam(g)·n³)``.

The unfair distributed daemon allows *any* non-empty selection at every
step, so its worst case cannot be enumerated; we estimate it from below by
maximizing the observed stabilization time over several adversarial
schedulers (greedy convergence-delaying central daemon, starvation daemon,
random distributed daemon and plain central daemon) and over a workload of
random + adversarial initial configurations.  Every observation must stay
below the closed-form bound of Theorem 3,
``2·diam·n³ + (alpha+1)·n² + (alpha − 2·diam)·n`` with ``alpha = n`` —
which also dominates the unfair-daemon stabilization time of the protocol —
and the measured values are reported next to the bound so the (large) slack
of the ``O(diam·n³)`` analysis is visible, as well as next to the
synchronous bound to show the speculation gap.

Every (daemon × initial × run) trial is independent, so the driver emits
one declarative :class:`~repro.jobs.JobSpec` per trial — with all seeds
pre-drawn in the sequential draw order — and executes the grid through a
:class:`~repro.jobs.Dispatcher` (``workers=`` fans trials across
processes, a result cache makes repeats incremental) without changing any
reported number.  Custom ``daemon_factories`` hold closures and cannot be
described by data, so they bypass the job layer and run inline.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import (
    AdversarialCentralDaemon,
    CentralDaemon,
    Daemon,
    DistributedDaemon,
    SafetyMonitor,
    Simulator,
    StarvationDaemon,
)
from ..graphs import make_topology
from ..jobs import Dispatcher, JobSpec
from ..mutex import SSME, MutualExclusionSpec
from ..unison import AsynchronousUnisonSpec
from .runner import ExperimentReport
from .workloads import mutex_workload

__all__ = [
    "run_experiment",
    "emit_jobs",
    "run_job",
    "DEFAULT_SWEEP",
    "DEFAULT_DAEMON_FACTORIES",
    "EXPERIMENT_ID",
    "CODE_VERSION",
]

EXPERIMENT_ID = "E4"

#: Folded into every emitted spec's ``spec_key``; bump on any change to
#: this driver's trial semantics.
CODE_VERSION = "theorem3/1"

_RUNNER = "repro.experiments.theorem3_async_upper:run_job"

#: Default (topology, size) sweep — smaller than E3 because the
#: adversarial schedulers are sequential (one vertex per action), so each
#: execution takes Θ(n·(alpha+diam)) Python-side steps regardless of the
#: array backends.  Raised to n=12 now that the mid-density distributed
#: daemon rides the vectorized sparse refresh.
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("ring", 5),
    ("ring", 7),
    ("path", 6),
    ("star", 6),
    ("grid", 9),
    ("ring", 12),
)

#: The adversarial schedulers whose maximum stands in for the unfair daemon.
DEFAULT_DAEMON_FACTORIES: Tuple[Tuple[str, Callable[[], Daemon]], ...] = (
    ("cd-adv", AdversarialCentralDaemon),
    ("ud-starve", StarvationDaemon),
    ("dd", lambda: DistributedDaemon(activation_probability=0.3)),
    ("cd", CentralDaemon),
)

_DEFAULT_FACTORY_MAP: Dict[str, Callable[[], Daemon]] = dict(DEFAULT_DAEMON_FACTORIES)


@lru_cache(maxsize=32)
def _cached_protocol(topology: str, size: int) -> SSME:
    return SSME(make_topology(topology, size))


def _unfair_horizon(protocol: SSME) -> int:
    # Central-style daemons advance one vertex per step, so converging to
    # Γ₁ needs on the order of n·(alpha + diam) steps; keep a generous
    # horizon while staying far below the (cubic) theoretical bound.
    bound = protocol.unfair_stabilization_bound()
    return min(bound, 40 * protocol.graph.n * (protocol.alpha + protocol.diam) + 200)


def _run_unfair_trial(
    protocol: SSME,
    mutex_specification: MutualExclusionSpec,
    unison_specification: AsynchronousUnisonSpec,
    daemon: Daemon,
    items: tuple,
    seed: int,
    engine: str,
    horizon: Optional[int] = None,
) -> Tuple[Optional[int], Optional[int]]:
    """One (daemon, initial, seed) trial: ``(unison_steps, mutex_steps)``."""
    simulator = Simulator(
        protocol,
        daemon,
        rng=random.Random(seed),
        engine=engine,
        trace="light",
    )
    # Both specifications are monitored online in one pass (no post-hoc
    # trace walks).  Γ₁ is closed under every daemon (closure of spec_AU)
    # and Theorem 1 shows no spec_ME violation can occur from a Γ₁
    # configuration, so the run can stop as soon as Γ₁ is reached — and Γ₁
    # membership *is* spec_AU safety, which the monitor has just evaluated
    # for the configuration under decision.
    monitor = SafetyMonitor(
        (unison_specification, mutex_specification),
        protocol,
        stop_when=lambda config, index: monitor.is_currently_safe(
            unison_specification
        ),
    )
    simulator.run(
        protocol.configuration(dict(items)),
        max_steps=horizon if horizon is not None else _unfair_horizon(protocol),
        stop_when=monitor.observe,
    )
    return (
        monitor.stabilization_index(unison_specification),
        monitor.stabilization_index(mutex_specification),
    )


def run_job(spec: JobSpec) -> List[Optional[int]]:
    """Execute one emitted trial spec: ``[unison_steps, mutex_steps]``.

    Protocol and daemon are rebuilt from primitive parameters (cached per
    process) — neither can cross a process or cache boundary.  The Theorem
    3 bound is inherited from the unison's step complexity (Devismes &
    Petit), so the underlying spec_AU convergence is the quantity that
    actually grows with the graph; spec_ME stabilizes no later than
    spec_AU and is reported alongside it.
    """
    protocol = _cached_protocol(spec.graph_item("topology"), spec.graph_item("size"))
    unison_steps, mutex_steps = _run_unfair_trial(
        protocol,
        MutualExclusionSpec(protocol),
        AsynchronousUnisonSpec(protocol),
        _DEFAULT_FACTORY_MAP[spec.daemon](),
        spec.param("initial"),
        spec.seeds[0],
        spec.param("engine"),
        spec.horizon,
    )
    return [unison_steps, mutex_steps]


def emit_jobs(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    daemon_factories: Optional[Sequence[Tuple[str, Callable[[], Daemon]]]] = None,
    random_configurations_per_graph: int = 3,
    runs_per_configuration: int = 1,
    seed: int = 0,
    engine: str = "auto",
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
) -> Tuple[List[Dict[str, object]], List[JobSpec], List[Tuple[str, Callable[[], Daemon]]]]:
    """Build the trial grid: per-graph info + one spec per trial.

    Returns ``(graphs, specs, daemon_factories)``.  When custom (non-default)
    factories are supplied the specs cannot describe them; callers must
    detect that via :func:`uses_default_factories` and run inline.
    """
    sweep = list(sweep) if sweep is not None else list(DEFAULT_SWEEP)
    if max_n is not None:
        sweep = [(topology, size) for topology, size in sweep if size <= max_n]
    daemon_factories = (
        list(daemon_factories)
        if daemon_factories is not None
        else list(DEFAULT_DAEMON_FACTORIES)
    )
    rng = random.Random(seed)
    graphs: List[Dict[str, object]] = []
    specs: List[JobSpec] = []
    for topology, size in sweep:
        protocol = _cached_protocol(topology, size)
        graph = protocol.graph
        # Seed the sweep with an extra far-pair double-privilege witness on
        # top of the diametral one: unfair schedulers then start from
        # configurations that actually exercise the mutual-exclusion bound.
        workload = mutex_workload(
            protocol,
            random.Random(rng.randrange(2**63)),
            random_count=random_configurations_per_graph,
            extra_pairs=1,
        )
        first_task = len(specs)
        for daemon_name, _factory in daemon_factories:
            for initial in workload:
                for _ in range(runs_per_configuration):
                    specs.append(
                        JobSpec(
                            runner=_RUNNER,
                            code_version=CODE_VERSION,
                            protocol="ssme",
                            graph={"topology": topology, "size": size},
                            daemon=daemon_name,
                            seeds=(rng.randrange(2**63),),
                            horizon=horizon,
                            metrics=("unison_steps", "mutex_steps"),
                            params={
                                "initial": tuple(initial.items()),
                                "engine": engine,
                            },
                        )
                    )
        graphs.append(
            {
                "topology": topology,
                "size": size,
                "n": graph.n,
                "diam": protocol.diam,
                "bound": protocol.unfair_stabilization_bound(),
                "sync_bound": protocol.synchronous_stabilization_bound(),
                "trials_per_daemon": len(workload) * runs_per_configuration,
                "tasks": (first_task, len(specs)),
            }
        )
    return graphs, specs, daemon_factories


def uses_default_factories(
    daemon_factories: Sequence[Tuple[str, Callable[[], Daemon]]]
) -> bool:
    """Whether every factory is the stock one its name maps to (only then
    can worker processes and cached specs rebuild the daemons by name)."""
    return all(
        _DEFAULT_FACTORY_MAP.get(name) is factory for name, factory in daemon_factories
    )


def _aggregate(
    graphs: List[Dict[str, object]],
    results: Sequence[Sequence[Optional[int]]],
    daemon_factories: Sequence[Tuple[str, Callable[[], Daemon]]],
) -> ExperimentReport:
    rows: List[Dict[str, object]] = []
    all_within = True
    for info in graphs:
        first, last = info["tasks"]
        per_graph = results[first:last]
        trials_per_daemon = info["trials_per_daemon"]
        bound = info["bound"]
        worst_mutex = 0
        worst_unison = 0
        worst_daemon = None
        per_daemon: Dict[str, Optional[int]] = {}
        stabilized_everywhere = True
        for position, (daemon_name, _factory) in enumerate(daemon_factories):
            # None until a run actually stabilized: a daemon whose every
            # run failed must be reported as None, not as an (impossible)
            # instant stabilization at 0.
            daemon_worst_unison: Optional[int] = None
            block = per_graph[
                position * trials_per_daemon : (position + 1) * trials_per_daemon
            ]
            for unison_steps, mutex_steps in block:
                if unison_steps is None or mutex_steps is None:
                    stabilized_everywhere = False
                    continue
                worst_mutex = max(worst_mutex, mutex_steps)
                daemon_worst_unison = (
                    unison_steps
                    if daemon_worst_unison is None
                    else max(daemon_worst_unison, unison_steps)
                )
                if unison_steps >= worst_unison:
                    worst_unison = unison_steps
                    worst_daemon = daemon_name
            per_daemon[daemon_name] = daemon_worst_unison
        within = (
            stabilized_everywhere and worst_mutex <= bound and worst_unison <= bound
        )
        all_within = all_within and within
        row: Dict[str, object] = {
            "topology": info["topology"],
            "n": info["n"],
            "diam": info["diam"],
            "mutex_worst_steps": worst_mutex,
            "unison_worst_steps": worst_unison,
            "worst_daemon": worst_daemon,
            "theorem3_bound": bound,
            "bound_ratio": worst_unison / bound if bound else None,
            "sync_bound_ceil_diam_over_2": info["sync_bound"],
            "within_bound": within,
        }
        for daemon_name, value in per_daemon.items():
            row[f"unison_steps[{daemon_name}]"] = value
        rows.append(row)
    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Theorem 3 — stabilization of SSME under unfair scheduling",
        paper_claim=(
            "conv_time(SSME, ud) <= 2·diam·n³ + (n+1)·n² + (n − 2·diam)·n "
            "(O(diam·n³)), while the synchronous time is only ceil(diam/2)"
        ),
        rows=rows,
        summary={"all_within_theorem3_bound": all_within},
        passed=all_within,
        notes=[
            "The unfair distributed daemon is approximated by the maximum over "
            "adversarial central, starvation, random distributed and central "
            "schedulers — a lower bound on the true worst case, which the "
            "theorem's upper bound must (and does) dominate.",
            "Step counts are daemon steps (actions); central-style daemons "
            "activate one vertex per action.",
            "'unison_worst_steps' is the stabilization of the underlying "
            "asynchronous unison to Γ₁ (the quantity the diam·n³ analysis "
            "bounds); 'mutex_worst_steps' — the spec_ME stabilization — is "
            "always no larger.",
        ],
    )


def run_experiment(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    daemon_factories: Optional[Sequence[Tuple[str, Callable[[], Daemon]]]] = None,
    random_configurations_per_graph: int = 3,
    runs_per_configuration: int = 1,
    seed: int = 0,
    engine: str = "auto",
    workers: Optional[int] = None,
    max_n: Optional[int] = None,
    horizon: Optional[int] = None,
    dispatcher: Optional[Dispatcher] = None,
) -> ExperimentReport:
    """Measure SSME's stabilization under unfair-style schedulers.

    The trial grid is emitted as :class:`~repro.jobs.JobSpec`s and executed
    through ``dispatcher`` (cache/resume-aware) or a throwaway uncached
    dispatcher with ``workers`` processes.  Worker processes and cached
    jobs rebuild daemons by name from :data:`DEFAULT_DAEMON_FACTORIES`;
    when custom ``daemon_factories`` are supplied the sweep therefore runs
    inline and sequentially (factories hold closures that neither pickle
    nor hash).  Reported numbers are identical for any ``workers`` value,
    with or without cache.  ``max_n`` drops sweep entries larger than that
    size; ``horizon`` overrides the per-graph step budget (the default is
    Θ(n·(alpha+diam)), far below the cubic bound).
    """
    graphs, specs, daemon_factories = emit_jobs(
        sweep=sweep,
        daemon_factories=daemon_factories,
        random_configurations_per_graph=random_configurations_per_graph,
        runs_per_configuration=runs_per_configuration,
        seed=seed,
        engine=engine,
        max_n=max_n,
        horizon=horizon,
    )
    if uses_default_factories(daemon_factories):
        if dispatcher is None:
            with Dispatcher(workers=workers) as local:
                results = local.run(specs, label=EXPERIMENT_ID)
        else:
            results = dispatcher.run(specs, label=EXPERIMENT_ID)
    else:
        # Inline path for closure-holding factories: same trial order, same
        # pre-drawn seeds, protocol/spec objects reused per graph.
        factories = dict(daemon_factories)
        results = []
        for info in graphs:
            protocol = _cached_protocol(info["topology"], info["size"])
            mutex_specification = MutualExclusionSpec(protocol)
            unison_specification = AsynchronousUnisonSpec(protocol)
            first, last = info["tasks"]
            for spec in specs[first:last]:
                results.append(
                    list(
                        _run_unfair_trial(
                            protocol,
                            mutex_specification,
                            unison_specification,
                            factories[spec.daemon](),
                            spec.param("initial"),
                            spec.seeds[0],
                            spec.param("engine"),
                            spec.horizon,
                        )
                    )
                )
    return _aggregate(graphs, results, daemon_factories)
