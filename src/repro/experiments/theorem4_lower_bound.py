"""E5 — Theorem 4: the ``⌈diam(g)/2⌉`` synchronous lower bound.

Theorem 4 is a negative result, so it cannot be "measured" by running a
protocol; instead we *execute its proof*.  For every delay
``t < ⌈diam(g)/2⌉`` the splicing construction
(:func:`repro.lowerbound.construct_double_privilege_witness`) builds an
initial configuration from which the synchronous execution still has two
simultaneously privileged vertices at step ``t``.  A successful witness at
delay ``t`` certifies that no execution-prefix shorter than ``t + 1`` steps
can be safe for every initial configuration — i.e. the stabilization time is
at least ``t + 1``.  Witnesses at every ``t`` up to ``⌈diam/2⌉ - 1``
therefore certify the full lower bound, and combined with E3 they show the
bound is *exactly* ``⌈diam/2⌉`` for SSME (optimality).

The construction is applied to SSME on several topologies and, as a sanity
check that it is protocol-agnostic, to Dijkstra's token ring.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs import diameter, make_topology, ring_graph
from ..lowerbound import lower_bound_profile
from ..mutex import SSME, DijkstraTokenRing
from .runner import ExperimentReport

__all__ = ["run_experiment", "DEFAULT_SWEEP", "EXPERIMENT_ID"]

EXPERIMENT_ID = "E5"

#: Default (topology, size) sweep for the SSME witnesses.
DEFAULT_SWEEP: Tuple[Tuple[str, int], ...] = (
    ("ring", 8),
    ("ring", 12),
    ("path", 9),
    ("path", 13),
    ("grid", 16),
    ("binary_tree", 15),
    ("random", 14),
)

#: Ring sizes for the Dijkstra cross-check (privilege radius 1 shrinks the
#: admissible delays, so use rings with a comfortable diameter).
DEFAULT_DIJKSTRA_RINGS: Tuple[int, ...] = (10, 14)


def run_experiment(
    sweep: Optional[Sequence[Tuple[str, int]]] = None,
    dijkstra_rings: Optional[Sequence[int]] = None,
) -> ExperimentReport:
    """Execute the Theorem 4 construction across topologies and protocols."""
    sweep = list(sweep) if sweep is not None else list(DEFAULT_SWEEP)
    dijkstra_rings = (
        list(dijkstra_rings) if dijkstra_rings is not None else list(DEFAULT_DIJKSTRA_RINGS)
    )
    rows: List[Dict[str, object]] = []
    all_certified = True

    for topology, size in sweep:
        graph = make_topology(topology, size)
        protocol = SSME(graph)
        bound = math.ceil(protocol.diam / 2)
        witnesses = lower_bound_profile(protocol)
        successes = sum(1 for w in witnesses if w.success)
        certified = successes == len(witnesses) == bound
        all_certified = all_certified and certified
        rows.append(
            {
                "protocol": "SSME",
                "topology": topology,
                "n": graph.n,
                "diam": protocol.diam,
                "bound_ceil_diam_over_2": bound,
                "delays_tested": len(witnesses),
                "witnesses_found": successes,
                "certified_lower_bound": successes,
                "lower_bound_certified": certified,
            }
        )

    for size in dijkstra_rings:
        graph = ring_graph(size)
        protocol = DijkstraTokenRing(graph)
        diam = diameter(graph)
        bound = math.ceil(diam / 2)
        # Dijkstra's privilege predicate also reads the predecessor, so the
        # patched balls are one hop larger and the largest admissible delay
        # is capped by 2(t + 1) < diam as well as by the bound itself.
        max_delay = min(bound - 1, (diam - 1) // 2 - 1)
        delays = list(range(max_delay + 1)) if max_delay >= 0 else []
        witnesses = lower_bound_profile(protocol, ts=delays, privilege_radius=1)
        successes = sum(1 for w in witnesses if w.success)
        certified = successes == len(witnesses) and bool(witnesses)
        all_certified = all_certified and certified
        rows.append(
            {
                "protocol": "Dijkstra",
                "topology": "ring",
                "n": graph.n,
                "diam": diam,
                "bound_ceil_diam_over_2": bound,
                "delays_tested": len(witnesses),
                "witnesses_found": successes,
                "certified_lower_bound": successes,
                "lower_bound_certified": certified,
            }
        )

    return ExperimentReport(
        experiment_id=EXPERIMENT_ID,
        title="Theorem 4 — synchronous lower bound via the splicing construction",
        paper_claim=(
            "every self-stabilizing mutual-exclusion protocol has "
            "conv_time(π, sd) >= ceil(diam(g)/2); with Theorem 2 this makes "
            "SSME optimal"
        ),
        rows=rows,
        summary={"lower_bound_certified_everywhere": all_certified},
        passed=all_certified,
        notes=[
            "Each witness is the explicit spliced configuration of the proof; "
            "'witnesses_found' counts delays t for which two vertices are "
            "simultaneously privileged after exactly t synchronous steps.",
            "For SSME the certified delay range covers every t < ceil(diam/2), "
            "matching the E3 measurement and establishing optimality.",
            "For Dijkstra's ring the privilege predicate reads the ring "
            "predecessor, so witnesses are built with one extra hop of patched "
            "state and cover a slightly smaller delay range.",
        ],
    )
