"""Workloads: initial-configuration generators for the experiments.

Self-stabilization experiments need *initial configurations that matter*.
Transient faults can leave the system in any configuration, so the paper's
worst-case bounds quantify over all of them; purely random configurations,
however, almost never realize the worst case of the mutual-exclusion bounds
(they essentially never plant two privileged clock values).  The experiment
harness therefore mixes three families:

* arbitrary random configurations (the plain fault model),
* perturbations of a legitimate configuration (small-scale faults),
* adversarial configurations produced by the Theorem 4 splicing
  construction (the worst configurations the theory allows).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..core import Protocol
from ..core.state import Configuration
from ..exceptions import ExperimentError
from ..lowerbound import adversarial_mutex_configurations

__all__ = [
    "random_configurations",
    "perturbed_configurations",
    "mutex_workload",
]


def random_configurations(
    protocol: Protocol, count: int, rng: random.Random
) -> List[Configuration]:
    """``count`` arbitrary configurations of the protocol."""
    if count < 0:
        raise ExperimentError("count must be non-negative")
    return [protocol.random_configuration(rng) for _ in range(count)]


def perturbed_configurations(
    protocol: Protocol,
    base: Configuration,
    count: int,
    rng: random.Random,
    corrupted_vertices: int = 1,
) -> List[Configuration]:
    """Configurations obtained from ``base`` by corrupting a few vertices.

    Each configuration redraws the state of ``corrupted_vertices`` randomly
    chosen vertices through the protocol's ``random_state`` — the classic
    "small transient fault" workload.
    """
    if count < 0:
        raise ExperimentError("count must be non-negative")
    if corrupted_vertices < 0:
        raise ExperimentError("corrupted_vertices must be non-negative")
    vertices = list(protocol.graph.vertices)
    corrupted_vertices = min(corrupted_vertices, len(vertices))
    result: List[Configuration] = []
    for _ in range(count):
        targets = rng.sample(vertices, corrupted_vertices) if corrupted_vertices else []
        changes = {v: protocol.random_state(v, rng) for v in targets}
        result.append(base.updated(changes) if changes else base)
    return result


def mutex_workload(
    protocol: Protocol,
    rng: random.Random,
    random_count: int = 10,
    include_spliced: bool = True,
    extra_pairs: int = 0,
    spliced_delays: Optional[Sequence[int]] = None,
) -> List[Configuration]:
    """The standard mutual-exclusion workload: random + adversarial
    configurations (see :func:`repro.lowerbound.adversarial_mutex_configurations`).

    ``extra_pairs`` plants double privileges on additional far-apart vertex
    pairs and ``spliced_delays`` selects the Theorem 4 splicing delays —
    the theorem2/theorem3 sweeps use both to make sure the bounds are
    exercised from several directions, not only the diametral one.
    """
    return adversarial_mutex_configurations(
        protocol,
        rng,
        random_count=random_count,
        include_spliced=include_spliced,
        extra_pairs=extra_pairs,
        spliced_delays=spliced_delays,
    )
