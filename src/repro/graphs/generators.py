"""Generators for the communication topologies used in the experiments.

The paper's protocol SSME runs on *any* communication graph (unlike
Dijkstra's protocol which requires a ring), so the experiment harness sweeps
a family of topologies: rings, paths, stars, complete graphs, grids, tori,
hypercubes, random trees, Erdős–Rényi graphs, and a few named graphs with
interesting hole structure (Petersen, lollipop, caterpillar).

All generators return :class:`~repro.graphs.graph.Graph` instances whose
vertices are the integers ``0 .. n-1`` — exactly the identifier set
``ID = {0, ..., n-1}`` assumed by the paper (Section 4.1), so graphs can be
fed directly to the mutual-exclusion protocols.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import GraphError
from .graph import Graph

__all__ = [
    "ring_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree_graph",
    "random_tree_graph",
    "erdos_renyi_graph",
    "random_connected_graph",
    "petersen_graph",
    "lollipop_graph",
    "caterpillar_graph",
    "wheel_graph",
    "single_vertex_graph",
    "TOPOLOGY_GENERATORS",
    "make_topology",
]


def _check_n(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise GraphError(f"need at least {minimum} vertices, got {n}")


def single_vertex_graph() -> Graph:
    """The graph with a single vertex ``0`` and no edge."""
    return Graph([0], [])


def ring_graph(n: int) -> Graph:
    """A cycle on ``n >= 3`` vertices (``n = 1`` and ``n = 2`` degenerate to
    a single vertex and a single edge respectively)."""
    _check_n(n)
    if n == 1:
        return single_vertex_graph()
    if n == 2:
        return Graph([0, 1], [(0, 1)])
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(range(n), edges)


def path_graph(n: int) -> Graph:
    """A simple path ``0 - 1 - ... - (n-1)``."""
    _check_n(n)
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph(range(n), edges)


def star_graph(n: int) -> Graph:
    """A star: vertex ``0`` is the centre, vertices ``1 .. n-1`` are leaves."""
    _check_n(n)
    edges = [(0, i) for i in range(1, n)]
    return Graph(range(n), edges)


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    _check_n(n)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Graph(range(n), edges)


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """The complete bipartite graph ``K_{a,b}`` with parts ``0..a-1`` and
    ``a..a+b-1``."""
    _check_n(a)
    _check_n(b)
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Graph(range(a + b), edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` grid (4-neighbourhood, no wrap-around)."""
    _check_n(rows)
    _check_n(cols)
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(range(rows * cols), edges)


def torus_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` grid with wrap-around in both dimensions."""
    if rows < 3 or cols < 3:
        raise GraphError("torus requires rows >= 3 and cols >= 3")
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            edges.append((vid(r, c), vid(r, (c + 1) % cols)))
            edges.append((vid(r, c), vid((r + 1) % rows, c)))
    return Graph(range(rows * cols), edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2**dimension`` vertices."""
    if dimension < 0:
        raise GraphError("dimension must be non-negative")
    n = 1 << dimension
    edges = []
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                edges.append((v, u))
    return Graph(range(n), edges)


def binary_tree_graph(n: int) -> Graph:
    """A complete binary tree layout on ``n`` vertices (heap numbering)."""
    _check_n(n)
    edges = []
    for child in range(1, n):
        parent = (child - 1) // 2
        edges.append((parent, child))
    return Graph(range(n), edges)


def random_tree_graph(n: int, rng: Optional[random.Random] = None) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (random attachment).

    Each vertex ``i >= 1`` attaches to a uniformly chosen earlier vertex; the
    result is always a tree (hence ``hole(g) = 2`` and ``diam`` up to ``n-1``).
    """
    _check_n(n)
    rng = rng or random.Random(0)
    edges = []
    for child in range(1, n):
        parent = rng.randrange(child)
        edges.append((parent, child))
    return Graph(range(n), edges)


def erdos_renyi_graph(n: int, p: float, rng: Optional[random.Random] = None) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` graph (possibly disconnected)."""
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = rng or random.Random(0)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return Graph(range(n), edges)


def random_connected_graph(n: int, p: float, rng: Optional[random.Random] = None) -> Graph:
    """A connected random graph: a random tree backbone plus ``G(n, p)`` edges.

    The protocols of the paper assume a connected communication graph; this
    generator guarantees connectivity while still producing non-trivial holes
    and cycles for the unison substrate to cope with.
    """
    _check_n(n)
    rng = rng or random.Random(0)
    backbone = random_tree_graph(n, rng)
    edges = set(backbone.edges)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.add((i, j))
    return Graph(range(n), edges)


def petersen_graph() -> Graph:
    """The Petersen graph (10 vertices, girth 5, diameter 2)."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(range(10), outer + inner + spokes)


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique on ``clique_size`` vertices with a path of ``path_length``
    extra vertices attached — large diameter with a dense core."""
    _check_n(clique_size, 2)
    if path_length < 0:
        raise GraphError("path_length must be non-negative")
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    prev = clique_size - 1
    for k in range(path_length):
        nxt = clique_size + k
        edges.append((prev, nxt))
        prev = nxt
    return Graph(range(clique_size + path_length), edges)


def caterpillar_graph(spine_length: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a path spine with ``legs_per_vertex`` leaves per spine
    vertex.  Trees of this shape exercise the BFS-tree baseline."""
    _check_n(spine_length)
    if legs_per_vertex < 0:
        raise GraphError("legs_per_vertex must be non-negative")
    edges = [(i, i + 1) for i in range(spine_length - 1)]
    next_id = spine_length
    for s in range(spine_length):
        for _ in range(legs_per_vertex):
            edges.append((s, next_id))
            next_id += 1
    return Graph(range(next_id), edges)


def wheel_graph(n: int) -> Graph:
    """A wheel: a cycle on ``n-1`` vertices all connected to hub ``0``."""
    _check_n(n, 4)
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    for idx, v in enumerate(rim):
        edges.append((v, rim[(idx + 1) % len(rim)]))
    return Graph(range(n), edges)


#: Named topology factories used by the experiment harness.  Each maps a
#: target size ``n`` to a connected graph with (approximately) ``n`` vertices.
TOPOLOGY_GENERATORS = {
    "ring": lambda n: ring_graph(n),
    "path": lambda n: path_graph(n),
    "star": lambda n: star_graph(n),
    "complete": lambda n: complete_graph(n),
    "grid": lambda n: grid_graph(max(1, int(round(n ** 0.5))), max(1, int(round(n ** 0.5)))),
    "binary_tree": lambda n: binary_tree_graph(n),
    "hypercube": lambda n: hypercube_graph(max(1, (n - 1).bit_length())),
    "random": lambda n: random_connected_graph(n, 0.15, random.Random(n)),
}


def make_topology(name: str, n: int) -> Graph:
    """Build the named topology at (approximately) ``n`` vertices.

    Raises :class:`~repro.exceptions.GraphError` for unknown names.
    """
    try:
        factory = TOPOLOGY_GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_GENERATORS))
        raise GraphError(f"unknown topology {name!r}; known: {known}") from None
    return factory(n)
