"""Immutable undirected communication graphs.

The paper models the distributed system as a communication graph
``g = (V, E)`` whose vertices are processes and whose edges are pairs of
processes that can atomically read each other's state (Section 2).  This
module provides the :class:`Graph` value type used by every other package:
it is immutable, hashable on demand, and exposes the handful of structural
queries the protocols need (neighbourhoods, distances, connectivity).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import GraphError
from ..types import Edge, VertexId

__all__ = ["Graph"]


def _normalize_edge(u: VertexId, v: VertexId) -> Edge:
    """Return a canonical representation of the undirected edge ``{u, v}``."""
    a, b = sorted((u, v), key=repr)
    return (a, b)


class Graph:
    """A finite, simple, undirected communication graph.

    Instances are immutable: all mutating "operations" return new graphs.
    Vertices may be any hashable objects; edges are unordered pairs of
    distinct vertices.  Self-loops and parallel edges are rejected, matching
    the model of the paper.

    Parameters
    ----------
    vertices:
        Iterable of vertex identifiers.  Duplicates are ignored.
    edges:
        Iterable of 2-tuples ``(u, v)``.  Both endpoints must appear in
        ``vertices``; ``u != v`` is required.

    Examples
    --------
    >>> g = Graph([0, 1, 2], [(0, 1), (1, 2)])
    >>> g.n, g.m
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_vertices", "_adjacency", "_edges", "_hash")

    def __init__(self, vertices: Iterable[VertexId], edges: Iterable[Tuple[VertexId, VertexId]]):
        vertex_list: List[VertexId] = []
        seen = set()
        for v in vertices:
            if v not in seen:
                seen.add(v)
                vertex_list.append(v)
        self._vertices: Tuple[VertexId, ...] = tuple(vertex_list)
        adjacency: Dict[VertexId, set] = {v: set() for v in self._vertices}
        edge_set = set()
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on vertex {u!r} is not allowed")
            if u not in adjacency or v not in adjacency:
                raise GraphError(f"edge ({u!r}, {v!r}) references an unknown vertex")
            edge_set.add(_normalize_edge(u, v))
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: Dict[VertexId, FrozenSet[VertexId]] = {
            v: frozenset(neigh) for v, neigh in adjacency.items()
        }
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> Tuple[VertexId, ...]:
        """The vertices, in insertion order."""
        return self._vertices

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The set of undirected edges (each as a canonical ordered pair)."""
        return self._edges

    @property
    def n(self) -> int:
        """Number of vertices (``n`` in the paper)."""
        return len(self._vertices)

    @property
    def m(self) -> int:
        """Number of edges (``m`` in the paper)."""
        return len(self._edges)

    def neighbors(self, v: VertexId) -> FrozenSet[VertexId]:
        """The open neighbourhood ``neig(v)``."""
        try:
            return self._adjacency[v]
        except KeyError:
            raise GraphError(f"unknown vertex {v!r}") from None

    def degree(self, v: VertexId) -> int:
        """Number of neighbours of ``v``."""
        return len(self.neighbors(v))

    def has_vertex(self, v: VertexId) -> bool:
        """Whether ``v`` is a vertex of the graph."""
        return v in self._adjacency

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Whether ``{u, v}`` is an edge of the graph."""
        if u not in self._adjacency or v not in self._adjacency:
            return False
        return v in self._adjacency[u]

    def adjacency(self) -> Mapping[VertexId, FrozenSet[VertexId]]:
        """The adjacency map (read-only)."""
        return dict(self._adjacency)

    def __contains__(self, v: object) -> bool:
        try:
            return v in self._adjacency
        except TypeError:
            return False

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return set(self._vertices) == set(other._vertices) and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((frozenset(self._vertices), self._edges))
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------ #
    # Traversal / distances
    # ------------------------------------------------------------------ #
    def bfs_distances(self, source: VertexId) -> Dict[VertexId, int]:
        """Shortest-path distances (hop count) from ``source``.

        Vertices unreachable from ``source`` are absent from the result.
        """
        if source not in self._adjacency:
            raise GraphError(f"unknown vertex {source!r}")
        dist: Dict[VertexId, int] = {source: 0}
        frontier: List[VertexId] = [source]
        while frontier:
            nxt: List[VertexId] = []
            for u in frontier:
                for w in self._adjacency[u]:
                    if w not in dist:
                        dist[w] = dist[u] + 1
                        nxt.append(w)
            frontier = nxt
        return dist

    def distance(self, u: VertexId, v: VertexId) -> int:
        """``dist(g, u, v)``: length of a shortest path between ``u`` and ``v``.

        Raises :class:`~repro.exceptions.GraphError` if the vertices are not
        connected.
        """
        dist = self.bfs_distances(u)
        if v not in dist:
            raise GraphError(f"vertices {u!r} and {v!r} are not connected")
        return dist[v]

    def ball(self, center: VertexId, radius: int) -> FrozenSet[VertexId]:
        """Vertices at distance at most ``radius`` from ``center``.

        This is the vertex set of the ``radius``-local state of Definition 7.
        """
        if radius < 0:
            raise GraphError("radius must be non-negative")
        dist = self.bfs_distances(center)
        return frozenset(v for v, d in dist.items() if d <= radius)

    def is_connected(self) -> bool:
        """Whether the graph is connected (true for the empty graph)."""
        if self.n == 0:
            return True
        return len(self.bfs_distances(self._vertices[0])) == self.n

    def connected_components(self) -> List[FrozenSet[VertexId]]:
        """The connected components, as frozensets of vertices."""
        remaining = set(self._vertices)
        components: List[FrozenSet[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            comp = frozenset(self.bfs_distances(start))
            components.append(comp)
            remaining -= comp
        return components

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, vertices: Iterable[VertexId]) -> "Graph":
        """The subgraph induced by ``vertices``.

        ``vertices`` may be any iterable (including a one-shot generator —
        it is materialized exactly once).
        """
        keep_set = set(vertices)
        for v in keep_set:
            if v not in self._adjacency:
                raise GraphError(f"unknown vertex {v!r}")
        keep = [v for v in self._vertices if v in keep_set]
        edges = [(u, v) for (u, v) in self._edges if u in keep_set and v in keep_set]
        return Graph(keep, edges)

    def with_edge(self, u: VertexId, v: VertexId) -> "Graph":
        """A copy of the graph with the edge ``{u, v}`` added."""
        return Graph(self._vertices, list(self._edges) + [(u, v)])

    def without_edge(self, u: VertexId, v: VertexId) -> "Graph":
        """A copy of the graph with the edge ``{u, v}`` removed."""
        target = _normalize_edge(u, v)
        if target not in self._edges:
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        return Graph(self._vertices, [e for e in self._edges if e != target])

    def relabel(self, mapping: Mapping[VertexId, VertexId]) -> "Graph":
        """Relabel vertices according to ``mapping`` (must be injective and
        cover every vertex)."""
        if set(mapping.keys()) != set(self._vertices):
            raise GraphError("relabelling must cover every vertex exactly")
        new_labels = list(mapping.values())
        if len(set(new_labels)) != len(new_labels):
            raise GraphError("relabelling must be injective")
        vertices = [mapping[v] for v in self._vertices]
        edges = [(mapping[u], mapping[v]) for (u, v) in self._edges]
        return Graph(vertices, edges)

    def sorted_vertices(self) -> Sequence[VertexId]:
        """Vertices sorted by ``repr`` — a deterministic order independent of
        insertion order, used by daemons and workload generators."""
        return sorted(self._vertices, key=repr)

    def automorphisms(self, limit: int = 100_000) -> List[Dict[VertexId, VertexId]]:
        """Every graph automorphism, as vertex -> image mappings.

        Generic backtracking over the ``repr``-sorted vertex order with
        degree and mapped-neighbourhood pruning — exponential in the worst
        case, but instant on the small, rigid-or-dihedral instances the
        exact checker handles (the symmetry quotient uses a closed form on
        rings and only falls back here).  ``limit`` bounds the group size:
        highly symmetric graphs (cliques: ``n!`` automorphisms) raise
        instead of silently enumerating forever.

        The identity is always included; the result order is deterministic
        (lexicographic in the image sequence over sorted vertices).
        """
        order = list(self.sorted_vertices())
        n = len(order)
        degree = {v: len(self._adjacency[v]) for v in order}
        # Candidate images per degree class, precomputed once.
        by_degree: Dict[int, List[VertexId]] = {}
        for v in order:
            by_degree.setdefault(degree[v], []).append(v)
        found: List[Dict[VertexId, VertexId]] = []
        image: Dict[VertexId, VertexId] = {}
        used: set = set()

        def extend(position: int) -> None:
            if position == n:
                found.append(dict(image))
                if len(found) > limit:
                    raise GraphError(
                        f"graph has more than {limit} automorphisms; raise "
                        "limit or disable the symmetry quotient"
                    )
                return
            vertex = order[position]
            for candidate in by_degree[degree[vertex]]:
                if candidate in used:
                    continue
                # Adjacency with every already-mapped vertex must match.
                consistent = True
                for mapped in image:
                    if (mapped in self._adjacency[vertex]) != (
                        image[mapped] in self._adjacency[candidate]
                    ):
                        consistent = False
                        break
                if not consistent:
                    continue
                image[vertex] = candidate
                used.add(candidate)
                extend(position + 1)
                used.discard(candidate)
                del image[vertex]

        extend(0)
        return found
