"""Structural graph properties used by the paper.

The unison substrate and the SSME analysis rely on a handful of graph
parameters (Section 4.1):

* ``diam(g)`` — the diameter, used both in the clock size
  ``K = (2n-1)(diam(g)+1)+2`` and in the privileged predicate;
* ``hole(g)`` — the length of a longest *hole* (longest chordless cycle) if
  the graph contains a cycle, ``2`` otherwise; the unison of Boulinier et al.
  requires ``alpha >= hole(g) - 2``;
* ``cyclo(g)`` — the cyclomatic characteristic (length of the maximal cycle
  of a shortest maximal cycle basis) if the graph contains a cycle, ``2``
  otherwise; the unison requires ``K > cyclo(g)``;
* ``lcp(g)`` — the length of a longest elementary chordless path, which
  appears in the synchronous unison bound ``alpha + lcp(g) + diam(g)`` used
  in Case 3 of the Theorem 2 proof.

``hole`` and ``lcp`` are NP-hard in general; we compute them exactly by
bounded backtracking (fine for the experiment sizes, tens of vertices) and
fall back on the paper's own bound ``<= n`` when the search budget is
exhausted.  ``cyclo`` is approximated from above by the longest fundamental
cycle of a BFS-tree cycle basis, which is all the paper needs
(``cyclo(g) <= n`` justifies ``K > n``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import GraphError
from ..types import VertexId
from .graph import Graph

__all__ = [
    "all_pairs_distances",
    "eccentricity",
    "diameter",
    "diameter_endpoints",
    "radius",
    "center",
    "girth",
    "is_tree",
    "is_ring",
    "has_cycle",
    "cyclomatic_number",
    "fundamental_cycles",
    "hole_length",
    "cyclomatic_characteristic_upper_bound",
    "longest_chordless_path_length",
    "GraphProfile",
    "profile",
]

#: Default number of backtracking node expansions allowed for the exact
#: (exponential) chordless-cycle / chordless-path searches before falling
#: back to the ``n`` upper bound.
DEFAULT_SEARCH_BUDGET = 200_000


def _require_connected(graph: Graph) -> None:
    if not graph.is_connected():
        raise GraphError("this property is only defined for connected graphs")


def all_pairs_distances(graph: Graph) -> Dict[VertexId, Dict[VertexId, int]]:
    """All-pairs shortest-path distances (BFS from every vertex)."""
    return {v: graph.bfs_distances(v) for v in graph.vertices}


def eccentricity(graph: Graph, v: VertexId) -> int:
    """Maximum distance from ``v`` to any other vertex."""
    _require_connected(graph)
    dist = graph.bfs_distances(v)
    return max(dist.values()) if dist else 0


def diameter(graph: Graph) -> int:
    """``diam(g)``: the maximum distance between two vertices."""
    _require_connected(graph)
    if graph.n == 0:
        return 0
    return max(eccentricity(graph, v) for v in graph.vertices)


def diameter_endpoints(graph: Graph) -> Tuple[VertexId, VertexId]:
    """A pair of vertices ``(u, v)`` with ``dist(u, v) = diam(g)``.

    The lower-bound construction of Theorem 4 starts from such a pair.
    """
    _require_connected(graph)
    if graph.n == 0:
        raise GraphError("empty graph has no diameter endpoints")
    best: Tuple[int, VertexId, VertexId] = (-1, graph.vertices[0], graph.vertices[0])
    for u in graph.vertices:
        dist = graph.bfs_distances(u)
        for v, d in dist.items():
            if d > best[0]:
                best = (d, u, v)
    return best[1], best[2]


def radius(graph: Graph) -> int:
    """Minimum eccentricity over the vertices."""
    _require_connected(graph)
    if graph.n == 0:
        return 0
    return min(eccentricity(graph, v) for v in graph.vertices)


def center(graph: Graph) -> List[VertexId]:
    """Vertices whose eccentricity equals the radius."""
    _require_connected(graph)
    if graph.n == 0:
        return []
    ecc = {v: eccentricity(graph, v) for v in graph.vertices}
    rad = min(ecc.values())
    return [v for v in graph.vertices if ecc[v] == rad]


def girth(graph: Graph) -> Optional[int]:
    """Length of a shortest cycle, or ``None`` if the graph is acyclic.

    Computed by BFS from every vertex, which is exact for unweighted graphs
    up to the standard plus-one ambiguity resolved by the edge-rooted BFS
    below.
    """
    best: Optional[int] = None
    for u, v in graph.edges:
        # Shortest cycle through edge (u, v): remove it, find dist(u, v).
        pruned = graph.without_edge(u, v)
        dist = pruned.bfs_distances(u)
        if v in dist:
            cycle_len = dist[v] + 1
            if best is None or cycle_len < best:
                best = cycle_len
    return best


def has_cycle(graph: Graph) -> bool:
    """Whether the graph contains at least one cycle."""
    components = graph.connected_components()
    # A forest has exactly n - (#components) edges.
    return graph.m > graph.n - len(components)


def is_tree(graph: Graph) -> bool:
    """Whether the graph is connected and acyclic."""
    return graph.is_connected() and graph.m == graph.n - 1


def is_ring(graph: Graph) -> bool:
    """Whether the graph is a simple cycle on all its vertices."""
    if graph.n < 3 or graph.m != graph.n:
        return False
    if not graph.is_connected():
        return False
    return all(graph.degree(v) == 2 for v in graph.vertices)


def cyclomatic_number(graph: Graph) -> int:
    """The cyclomatic number ``m - n + c`` (dimension of the cycle space)."""
    return graph.m - graph.n + len(graph.connected_components())


def fundamental_cycles(graph: Graph) -> List[List[VertexId]]:
    """Fundamental cycles induced by a BFS spanning forest.

    Each non-tree edge ``(u, v)`` yields the cycle formed by the tree paths
    from ``u`` and ``v`` to their lowest common ancestor plus the edge
    itself.  The multiset of their lengths upper-bounds the cyclomatic
    characteristic of Boulinier et al.
    """
    parent: Dict[VertexId, Optional[VertexId]] = {}
    depth: Dict[VertexId, int] = {}
    tree_edges = set()
    for root in graph.vertices:
        if root in parent:
            continue
        parent[root] = None
        depth[root] = 0
        frontier = [root]
        while frontier:
            nxt = []
            for x in frontier:
                for y in graph.neighbors(x):
                    if y not in parent:
                        parent[y] = x
                        depth[y] = depth[x] + 1
                        tree_edges.add(frozenset((x, y)))
                        nxt.append(y)
            frontier = nxt

    cycles: List[List[VertexId]] = []
    for u, v in graph.edges:
        if frozenset((u, v)) in tree_edges:
            continue
        # Walk both endpoints up to their lowest common ancestor.
        pu: List[VertexId] = [u]
        pv: List[VertexId] = [v]
        a, b = u, v
        while depth[a] > depth[b]:
            a = parent[a]
            pu.append(a)
        while depth[b] > depth[a]:
            b = parent[b]
            pv.append(b)
        while a != b:
            a = parent[a]
            b = parent[b]
            pu.append(a)
            pv.append(b)
        cycle = pu + list(reversed(pv[:-1]))
        cycles.append(cycle)
    return cycles


def _longest_chordless_cycle(graph: Graph, budget: int) -> Tuple[Optional[int], bool]:
    """Exact longest chordless cycle length via backtracking.

    Returns ``(length, exact)`` where ``exact`` is False when the search
    budget was exhausted (the returned length is then only a lower bound).
    """
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    order = {v: idx for idx, v in enumerate(graph.sorted_vertices())}
    best: Optional[int] = None
    expansions = 0
    exact = True

    def extend(start: VertexId, path: List[VertexId], blocked: set) -> None:
        nonlocal best, expansions, exact
        if expansions > budget:
            exact = False
            return
        last = path[-1]
        for w in adjacency[last]:
            if order[w] <= order[start] and w != start:
                continue
            if w in path:
                continue
            expansions += 1
            # Chordless condition: w may only touch the path at its last
            # vertex (and possibly at the start vertex, closing a cycle).
            interior = path[1:-1]
            if any(w in adjacency[x] for x in interior):
                continue
            closes = start in adjacency[w]
            if closes and len(path) >= 2:
                length = len(path) + 1
                if best is None or length > best:
                    best = length
            if not closes:
                extend(start, path + [w], blocked)

    for start in graph.sorted_vertices():
        for first in adjacency[start]:
            if order[first] <= order[start]:
                continue
            extend(start, [start, first], set())
            if not exact:
                return best, False
    return best, exact


def hole_length(graph: Graph, budget: int = DEFAULT_SEARCH_BUDGET) -> int:
    """``hole(g)``: length of a longest chordless cycle, or ``2`` if acyclic.

    When the exact search exceeds ``budget`` node expansions the paper's own
    bound ``hole(g) <= n`` is returned instead (which is always safe for
    choosing the unison parameter ``alpha = n``).
    """
    if not has_cycle(graph):
        return 2
    length, exact = _longest_chordless_cycle(graph, budget)
    if not exact:
        return max(length or 2, graph.n) if length is not None else graph.n
    # A graph with a cycle always has a chordless cycle.
    assert length is not None
    return length


def cyclomatic_characteristic_upper_bound(graph: Graph) -> int:
    """An upper bound on ``cyclo(g)``.

    ``cyclo(g)`` is the length of the longest cycle in a *shortest* maximal
    cycle basis; any particular maximal cycle basis therefore upper-bounds
    it.  We use the BFS fundamental-cycle basis, and clamp by ``n`` (the
    bound the paper itself uses to argue ``K > n >= cyclo(g)``).  For acyclic
    graphs the value is ``2`` by definition.
    """
    if not has_cycle(graph):
        return 2
    cycles = fundamental_cycles(graph)
    longest = max((len(c) for c in cycles), default=2)
    return min(longest, graph.n)


def longest_chordless_path_length(graph: Graph, budget: int = DEFAULT_SEARCH_BUDGET) -> int:
    """``lcp(g)``: number of edges of a longest elementary chordless path.

    Used by the synchronous unison bound ``alpha + lcp(g) + diam(g)`` quoted
    in Case 3 of the Theorem 2 proof.  Falls back to ``n`` when the search
    budget is exhausted.
    """
    adjacency = {v: graph.neighbors(v) for v in graph.vertices}
    best = 0
    expansions = 0
    exact = True

    def extend(path: List[VertexId]) -> None:
        nonlocal best, expansions, exact
        if expansions > budget:
            exact = False
            return
        last = path[-1]
        extended = False
        for w in adjacency[last]:
            if w in path:
                continue
            interior = path[:-1]
            if any(w in adjacency[x] for x in interior):
                continue
            expansions += 1
            extended = True
            extend(path + [w])
        if not extended:
            best = max(best, len(path) - 1)

    for start in graph.sorted_vertices():
        extend([start])
        if not exact:
            return graph.n
    return best


class GraphProfile:
    """A bundle of the structural parameters the protocols care about.

    Computing ``hole``/``lcp`` can be expensive, so :func:`profile` lets the
    caller opt out of the exact searches.
    """

    __slots__ = (
        "n",
        "m",
        "diameter",
        "radius",
        "girth",
        "is_tree",
        "is_ring",
        "hole",
        "cyclo_upper_bound",
        "lcp",
    )

    def __init__(
        self,
        n: int,
        m: int,
        diameter_: int,
        radius_: int,
        girth_: Optional[int],
        is_tree_: bool,
        is_ring_: bool,
        hole: Optional[int],
        cyclo_upper_bound: Optional[int],
        lcp: Optional[int],
    ) -> None:
        self.n = n
        self.m = m
        self.diameter = diameter_
        self.radius = radius_
        self.girth = girth_
        self.is_tree = is_tree_
        self.is_ring = is_ring_
        self.hole = hole
        self.cyclo_upper_bound = cyclo_upper_bound
        self.lcp = lcp

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict view, convenient for table rendering."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        fields = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"GraphProfile({fields})"


def profile(graph: Graph, exact_np_hard: bool = True) -> GraphProfile:
    """Compute a :class:`GraphProfile` for a connected graph."""
    _require_connected(graph)
    return GraphProfile(
        n=graph.n,
        m=graph.m,
        diameter_=diameter(graph),
        radius_=radius(graph),
        girth_=girth(graph),
        is_tree_=is_tree(graph),
        is_ring_=is_ring(graph),
        hole=hole_length(graph) if exact_np_hard else None,
        cyclo_upper_bound=cyclomatic_characteristic_upper_bound(graph),
        lcp=longest_chordless_path_length(graph) if exact_np_hard else None,
    )
