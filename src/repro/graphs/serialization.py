"""Serialization helpers for communication graphs.

Experiments record the topology they ran on; these helpers convert graphs to
and from plain dictionaries (JSON-friendly), edge lists, and Graphviz DOT
text for quick visual inspection.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..exceptions import GraphError
from ..types import VertexId
from .graph import Graph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_edge_list",
    "graph_from_edge_list",
    "graph_to_dot",
    "adjacency_matrix",
]


def graph_to_dict(graph: Graph) -> Dict[str, List]:
    """A JSON-friendly representation ``{"vertices": [...], "edges": [...]}."``"""
    return {
        "vertices": list(graph.vertices),
        "edges": [list(edge) for edge in sorted(graph.edges, key=repr)],
    }


def graph_from_dict(data: Mapping[str, Sequence]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    try:
        vertices = data["vertices"]
        edges = data["edges"]
    except KeyError as exc:
        raise GraphError(f"missing key {exc.args[0]!r} in graph dict") from None
    return Graph(vertices, [tuple(edge) for edge in edges])


def graph_to_edge_list(graph: Graph) -> List[Tuple[VertexId, VertexId]]:
    """The edges as a sorted list of pairs (isolated vertices are lost)."""
    return sorted(graph.edges, key=repr)


def graph_from_edge_list(edges: Sequence[Tuple[VertexId, VertexId]]) -> Graph:
    """Build a graph whose vertex set is exactly the endpoints of ``edges``."""
    vertices: List[VertexId] = []
    seen = set()
    for u, v in edges:
        for x in (u, v):
            if x not in seen:
                seen.add(x)
                vertices.append(x)
    return Graph(vertices, edges)


def graph_to_dot(graph: Graph, name: str = "g") -> str:
    """A Graphviz DOT rendering of the graph (undirected)."""
    lines = [f"graph {name} {{"]
    for v in graph.vertices:
        lines.append(f'    "{v}";')
    for u, v in sorted(graph.edges, key=repr):
        lines.append(f'    "{u}" -- "{v}";')
    lines.append("}")
    return "\n".join(lines)


def adjacency_matrix(graph: Graph) -> List[List[int]]:
    """A dense 0/1 adjacency matrix in ``graph.vertices`` order."""
    index = {v: i for i, v in enumerate(graph.vertices)}
    matrix = [[0] * graph.n for _ in range(graph.n)]
    for u, v in graph.edges:
        matrix[index[u]][index[v]] = 1
        matrix[index[v]][index[u]] = 1
    return matrix
