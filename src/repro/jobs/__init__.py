"""Job-oriented experiment service layer.

The experiment drivers used to be one-shot CLI scripts: every invocation
re-simulated its whole sweep from scratch.  This package restructures them
as a small service:

* :mod:`repro.jobs.spec` — declarative, content-addressed job descriptions
  (:class:`JobSpec`): protocol family × graph spec × daemon spec × pre-drawn
  seeds × horizon × metric set, with a canonical JSON form and a stable
  ``spec_key`` hash that folds in a per-driver code-version tag.
* :mod:`repro.jobs.pool` — :class:`WorkerPool`, the persistent
  process-pool generalization of ``parallel_map`` (ordered results,
  per-task error context, streamed completion callbacks).
* :mod:`repro.jobs.store` — :class:`ResultStore`, the content-addressed
  on-disk result cache (atomic writes, versioned schema), and
  :class:`Journal`, the per-sweep completion log behind resume/status.
* :mod:`repro.jobs.dispatcher` — :class:`Dispatcher`, which partitions a
  job list into cache hits and misses, feeds the misses to the pool,
  checkpoints every completed job, and returns results in job order so
  sequential, parallel and resumed executions aggregate identically.

Drivers *emit* their trial grids as ``JobSpec`` lists and aggregate the
dispatcher's results; see ``docs/experiments.md`` for the architecture and
the ``spec_key`` contract.
"""

from .dispatcher import DispatchStats, Dispatcher, ProgressEvent, execute_job
from .pool import WorkerPool
from .spec import JobSpec, canonical_json, freeze
from .store import Journal, ResultStore

__all__ = [
    "DispatchStats",
    "Dispatcher",
    "Journal",
    "JobSpec",
    "ProgressEvent",
    "ResultStore",
    "WorkerPool",
    "canonical_json",
    "execute_job",
    "freeze",
]
