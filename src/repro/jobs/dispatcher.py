"""The dispatcher: cache partitioning, worker fan-out, checkpointing.

:meth:`Dispatcher.run` takes an ordered :class:`~repro.jobs.spec.JobSpec`
list and returns the matching ordered result list:

1. **Partition** — with a :class:`~repro.jobs.store.ResultStore` attached
   (and ``refresh`` off), every spec whose ``spec_key`` has a valid cache
   entry is a *hit* and is never executed; the rest are *misses*.
2. **Execute** — misses run through the persistent
   :class:`~repro.jobs.pool.WorkerPool` (sequential by default,
   process-parallel when the dispatcher was built with ``workers > 1``).
   The worker function is :func:`execute_job`, which rebuilds the spec
   from its dictionary form and resolves the spec's ``runner`` reference
   inside the worker process.
3. **Checkpoint** — each completed miss is written to the store and the
   sweep journal *as it completes*, so killing a sweep loses only the
   in-flight jobs; re-running the same command resumes from the completed
   ones (they partition as hits).
4. **Normalize** — every result (fresh or cached) is round-tripped
   through JSON before being returned, so cache hits, fresh sequential
   runs and fresh parallel runs hand the aggregating driver *identical*
   values (same types, same key order) — the bit-for-bit report guarantee
   rests on this plus the callers' pre-drawn-seed discipline.

``dispatcher.last_stats`` records the hit/miss split of the most recent
``run`` (and ``stats`` the running totals), which the CI cache-smoke step
and the cache-correctness tests assert on.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from ..exceptions import JobError
from .pool import WorkerPool
from .spec import JobSpec
from .store import Journal, ResultStore

__all__ = ["Dispatcher", "DispatchStats", "ProgressEvent", "execute_job", "resolve_runner"]


class ProgressEvent(NamedTuple):
    """One streamed progress notification (``kind`` ∈ begin/hit/done/end)."""

    kind: str
    completed: int
    total: int
    spec: Optional[JobSpec] = None
    cached: bool = False


@dataclass
class DispatchStats:
    """Hit/miss accounting for one (or many accumulated) dispatches."""

    total: int = 0
    hits: int = 0
    executed: int = 0
    sweeps: int = 0

    @property
    def misses(self) -> int:
        return self.total - self.hits

    def add(self, other: "DispatchStats") -> None:
        self.total += other.total
        self.hits += other.hits
        self.executed += other.executed
        self.sweeps += other.sweeps

    @property
    def all_hits(self) -> bool:
        """True when the dispatch was served entirely from the cache."""
        return self.total > 0 and self.hits == self.total


def resolve_runner(reference: str) -> Callable[[JobSpec], Any]:
    """Resolve a ``"package.module:function"`` runner reference."""
    module_name, _, function_name = reference.partition(":")
    if not module_name or not function_name:
        raise JobError(f"malformed runner reference {reference!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise JobError(f"cannot import runner module {module_name!r}: {exc}") from exc
    runner = getattr(module, function_name, None)
    if not callable(runner):
        raise JobError(
            f"runner reference {reference!r} does not name a callable"
        )
    return runner


def execute_job(payload: Dict[str, Any]) -> Any:
    """Execute one job from its dictionary form (the pool's worker
    function — module-level and picklable; runs in worker processes)."""
    spec = JobSpec.from_dict(payload)
    return resolve_runner(spec.runner)(spec)


def _normalize(result: Any) -> Any:
    """JSON round-trip so fresh and cached results are indistinguishable."""
    return json.loads(json.dumps(result))


class Dispatcher:
    """Runs job lists through cache + worker pool with ordered results.

    Parameters
    ----------
    store:
        Result cache — a :class:`ResultStore`, a path for one, or ``None``
        to execute everything (no caching, no journal).
    workers:
        Worker-pool width (``None``/``0``/``1`` = sequential in-process).
        An already-built :class:`WorkerPool` may be passed instead via
        ``pool`` to share it across dispatchers.
    refresh:
        When True, ignore existing cache entries (recompute and rewrite
        them) — the CLI's ``--refresh``.
    progress:
        Optional callable receiving :class:`ProgressEvent`s as the sweep
        advances (completion order under parallelism).
    """

    def __init__(
        self,
        store: Optional[object] = None,
        workers: Optional[int] = None,
        refresh: bool = False,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        self.journal = Journal(store.root) if store is not None else None
        self.refresh = refresh
        self.progress = progress
        self.pool = pool if pool is not None else WorkerPool(workers)
        self.stats = DispatchStats()
        self.last_stats = DispatchStats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _emit(self, event: ProgressEvent) -> None:
        if self.progress is not None:
            self.progress(event)

    def run(self, specs: Sequence[JobSpec], label: str = "") -> List[Any]:
        """Execute ``specs`` (cache-aware) and return results in order."""
        specs = list(specs)
        total = len(specs)
        stats = DispatchStats(total=total, sweeps=1)
        results: List[Any] = [None] * total
        misses: List[int] = []

        sweep_key = None
        if self.store is not None and specs:
            sweep_key = Journal.sweep_key(specs)
            self.journal.begin(sweep_key, specs, label=label)

        self._emit(ProgressEvent("begin", 0, total))
        completed = 0
        for index, spec in enumerate(specs):
            cached = None
            if self.store is not None and not self.refresh:
                cached = self.store.get(spec.spec_key)
            if cached is not None:
                results[index] = cached
                stats.hits += 1
                completed += 1
                if sweep_key is not None:
                    self.journal.record_done(sweep_key, spec.spec_key, cached=True)
                self._emit(
                    ProgressEvent("hit", completed, total, spec=spec, cached=True)
                )
            else:
                misses.append(index)

        if misses:
            payloads = [specs[index].to_dict() for index in misses]
            progress_state = {"completed": completed}

            def on_result(position: int, result: Any) -> None:
                index = misses[position]
                spec = specs[index]
                if self.store is not None:
                    self.store.put(spec, result)
                if sweep_key is not None:
                    self.journal.record_done(sweep_key, spec.spec_key, cached=False)
                progress_state["completed"] += 1
                self._emit(
                    ProgressEvent(
                        "done", progress_state["completed"], total, spec=spec
                    )
                )

            executed = self.pool.run(execute_job, payloads, on_result=on_result)
            stats.executed = len(executed)
            for position, index in enumerate(misses):
                results[index] = executed[position]

        self._emit(ProgressEvent("end", total, total))
        self.last_stats = stats
        self.stats.add(stats)
        return [_normalize(result) for result in results]
