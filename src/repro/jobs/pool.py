"""Persistent process worker pool with ordered results and task context.

:class:`WorkerPool` generalizes the old ``parallel_map`` helper: same
contract (order-preserving map, zero-overhead sequential default, caller
pre-draws every seed so ``workers=`` never changes results), plus

* a **persistent** executor — one pool instance serves any number of
  ``run`` calls (one per driver in a multi-experiment sweep) without
  re-spawning processes between them;
* **per-task error context** — a worker exception is re-raised as
  :class:`~repro.exceptions.JobError` carrying the task index and a
  ``repr`` of the task, with the original exception chained as
  ``__cause__``;
* **streamed completion callbacks** — ``on_result(index, result)`` fires
  as each task finishes (completion order under parallelism), which is how
  the dispatcher checkpoints every completed job before the sweep ends.

Tasks must be picklable values and workers module-level functions, exactly
as before: protocol objects hold rule closures and are rebuilt inside the
worker from primitive parameters.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, TypeVar

from ..exceptions import JobError

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["WorkerPool"]


def _pool_context():
    """The multiprocessing context to run pools under (prefer ``fork``:
    cheap, inherits ``sys.path``)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _task_error(index: int, task: object, exc: BaseException) -> JobError:
    detail = repr(task)
    if len(detail) > 500:
        detail = detail[:500] + "...<truncated>"
    return JobError(
        f"worker task {index} failed with {type(exc).__name__}: {exc}\n"
        f"task: {detail}"
    )


class WorkerPool:
    """An order-preserving, optionally process-parallel task mapper.

    ``workers`` of ``None``, ``0`` or ``1`` (the default) makes every
    :meth:`run` a plain sequential in-process loop — no pool, no pickling.
    Larger values lazily start a ``ProcessPoolExecutor`` of at most
    ``workers`` processes that persists across :meth:`run` calls until
    :meth:`close` (the pool is also a context manager).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._executor = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def parallel(self) -> bool:
        """Whether this pool fans tasks across processes."""
        return bool(self.workers) and self.workers > 1

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context()
            )
        return self._executor

    def close(self) -> None:
        """Shut the underlying process pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #
    def run(
        self,
        worker: Callable[[T], R],
        tasks: Sequence[T],
        on_result: Optional[Callable[[int, R], None]] = None,
    ) -> List[R]:
        """``[worker(t) for t in tasks]`` with ordered results.

        ``on_result(index, result)`` is invoked once per finished task —
        in task order sequentially, in completion order under parallelism —
        before the call returns; the dispatcher uses it to checkpoint
        completed jobs.  A failing task aborts the run with a
        :class:`~repro.exceptions.JobError` naming the task.
        """
        tasks = list(tasks)
        if not self.parallel or len(tasks) <= 1:
            results: List[R] = []
            for index, task in enumerate(tasks):
                try:
                    result = worker(task)
                except Exception as exc:
                    raise _task_error(index, task, exc) from exc
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results

        from concurrent.futures import FIRST_COMPLETED, wait

        executor = self._ensure_executor()
        futures = {executor.submit(worker, task): index for index, task in enumerate(tasks)}
        slots: List[Optional[R]] = [None] * len(tasks)
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        raise _task_error(index, tasks[index], exc) from exc
                    result = future.result()
                    slots[index] = result
                    if on_result is not None:
                        on_result(index, result)
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        return slots  # type: ignore[return-value]
