"""Declarative, content-addressed experiment job specifications.

A :class:`JobSpec` is the unit of work of the experiment service layer: one
simulation (or verification) task described entirely by data — protocol
family, graph spec, daemon spec, pre-drawn seeds, horizon, metric set, and
a driver-specific parameter bag.  Because every seed is drawn by the
*emitting* driver in its sequential order and recorded in the spec, running
a spec is a pure function of the spec: sequential, process-parallel and
resumed executions all produce the same result, which is what makes the
content-addressed cache sound.

The identity of a spec is its :attr:`~JobSpec.spec_key`: the SHA-256 of its
canonical JSON form.  The key folds in

* the ``runner`` reference (``"package.module:function"``), so two drivers
  whose specs happen to coincide never collide, and
* the per-driver ``code_version`` tag, so bumping the tag after a
  behavioural change to the driver/runner invalidates exactly that
  driver's cached results and nothing else.

Canonical JSON means: sorted keys, no whitespace, tuples rendered as JSON
arrays.  Specs are frozen and hashable; nested values are recursively
frozen (lists → tuples, mappings → sorted key/value pair tuples) on
construction, and :meth:`JobSpec.from_dict` re-freezes JSON data, so a
spec that round-trips through its dictionary form has the same key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exceptions import JobError

__all__ = ["JobSpec", "canonical_json", "freeze"]


def freeze(value: Any) -> Any:
    """Recursively convert ``value`` into an immutable, hashable form.

    Mappings become tuples of ``(key, frozen_value)`` pairs sorted by key;
    lists, tuples and sets become tuples of frozen elements (sets are
    sorted first — they carry no order).  Scalars pass through.
    """
    if isinstance(value, Mapping):
        return tuple((key, freeze(item)) for key, item in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(freeze(item) for item in sorted(value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise JobError(f"value of type {type(value).__name__} cannot go into a JobSpec: {value!r}")


def _thaw(value: Any) -> Any:
    """Inverse of the JSON rendering: arrays (back) to tuples."""
    if isinstance(value, list):
        return tuple(_thaw(item) for item in value)
    return value


def _to_jsonable(value: Any) -> Any:
    """Frozen values as plain JSON data (tuples rendered as arrays)."""
    if isinstance(value, tuple):
        return [_to_jsonable(item) for item in value]
    return value


def canonical_json(data: Any) -> str:
    """The canonical (deterministic) JSON rendering used for hashing."""
    return json.dumps(
        _to_jsonable(data), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


@dataclass(frozen=True)
class JobSpec:
    """One declarative experiment job.

    Attributes
    ----------
    runner:
        ``"package.module:function"`` reference to the module-level function
        executing the spec (it receives the spec, returns a JSON-serializable
        result).  Resolved inside worker processes, so it must be importable.
    code_version:
        Per-driver version tag folded into :attr:`spec_key`; bump it when
        the runner's behaviour changes so stale cached results miss.
    protocol:
        Protocol family name (``"ssme"``, ``"dijkstra"``, ...).
    graph:
        Graph specification (e.g. ``{"topology": "ring", "n": 10}``).
    daemon:
        Daemon specification (a name such as ``"synchronous"``/``"cd-adv"``,
        or any frozen structure for parameterized daemons).
    seeds:
        Every RNG seed the job consumes, pre-drawn by the emitting driver in
        its sequential draw order.
    horizon:
        Step budget (``None`` when the job computes its own).
    metrics:
        Names of the quantities the job reports — part of the identity so
        widening a job's metric set re-runs it.
    params:
        Driver-specific payload (initial configurations, flags, sizes ...).
    """

    runner: str
    code_version: str
    protocol: str
    graph: Any = ()
    daemon: Any = ()
    seeds: Tuple[int, ...] = ()
    horizon: Optional[int] = None
    metrics: Tuple[str, ...] = ()
    params: Any = ()
    # Cached lazily; excluded from equality/hash/repr.
    _spec_key: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.runner or ":" not in self.runner:
            raise JobError(
                f"runner must be a 'module:function' reference, got {self.runner!r}"
            )
        if not self.code_version:
            raise JobError("code_version must be non-empty")
        if not self.protocol:
            raise JobError("protocol must be non-empty")
        object.__setattr__(self, "graph", freeze(self.graph))
        object.__setattr__(self, "daemon", freeze(self.daemon))
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        object.__setattr__(self, "metrics", tuple(str(m) for m in self.metrics))
        object.__setattr__(self, "params", freeze(self.params))

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The spec as plain JSON data (tuples rendered as arrays)."""
        return {
            "runner": self.runner,
            "code_version": self.code_version,
            "protocol": self.protocol,
            "graph": _to_jsonable(self.graph),
            "daemon": _to_jsonable(self.daemon),
            "seeds": list(self.seeds),
            "horizon": self.horizon,
            "metrics": list(self.metrics),
            "params": _to_jsonable(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` data (JSON arrays re-frozen
        to tuples, so the round-tripped spec compares and hashes equal)."""
        try:
            return cls(
                runner=data["runner"],
                code_version=data["code_version"],
                protocol=data["protocol"],
                graph=_thaw(data.get("graph", ())),
                daemon=_thaw(data.get("daemon", ())),
                seeds=tuple(data.get("seeds", ())),
                horizon=data.get("horizon"),
                metrics=tuple(data.get("metrics", ())),
                params=_thaw(data.get("params", ())),
            )
        except KeyError as exc:
            raise JobError(f"job spec data is missing field {exc}") from None

    def canonical_json(self) -> str:
        """Canonical JSON form — the hashed content."""
        return canonical_json(self.to_dict())

    @property
    def spec_key(self) -> str:
        """Stable content hash identifying this job (SHA-256 hex)."""
        key = self._spec_key
        if key is None:
            key = hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()
            object.__setattr__(self, "_spec_key", key)
        return key

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def param(self, name: str, default: Any = None) -> Any:
        """Look up ``name`` in the frozen ``params`` pair-tuple."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def graph_item(self, name: str, default: Any = None) -> Any:
        """Look up ``name`` in the frozen ``graph`` pair-tuple."""
        for key, value in self.graph:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """One-line human description (CLI listings, error context)."""
        graph = dict(self.graph) if isinstance(self.graph, tuple) else self.graph
        return (
            f"{self.runner.rsplit(':', 1)[0].rsplit('.', 1)[-1]}"
            f"[{self.protocol} × {graph} × {self.daemon}] "
            f"key={self.spec_key[:12]}"
        )
