"""Content-addressed on-disk result cache and sweep journals.

:class:`ResultStore` maps a job's ``spec_key`` to its JSON result under a
cache directory (default ``.repro-cache/``):

* **content-addressed layout** — ``results/<key[:2]>/<key>.json``, one
  entry per spec; the entry embeds the full spec so ``jobs list`` can
  describe the cache without re-deriving anything;
* **atomic writes** — results are written to a temp file in the target
  directory and ``os.replace``d into place, so a killed sweep never leaves
  a half-written entry (a truncated entry from any other cause reads as a
  miss and is recomputed);
* **versioned schema** — entries record ``schema``; entries with a
  different schema (or a ``spec_key`` mismatching their filename) are
  treated as misses.

:class:`Journal` is the resume/status side-channel: a sweep (an ordered
job list) is identified by the hash of its spec keys, and every completed
job appends one line to ``journals/<sweep_key>.jsonl``.  Interrupting a
sweep loses nothing — results already sit in the store — and ``jobs
status`` reads the journals to report per-sweep completion without
touching any simulation code.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from .spec import JobSpec

__all__ = ["ResultStore", "Journal", "DEFAULT_CACHE_DIR", "SCHEMA_VERSION"]

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Schema version of on-disk entries; bump on incompatible layout changes.
SCHEMA_VERSION = 1


class ResultStore:
    """Content-addressed cache of job results keyed on ``spec_key``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    def path_for(self, spec_key: str) -> Path:
        return self.results_dir / spec_key[:2] / f"{spec_key}.json"

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def entry(self, spec_key: str) -> Optional[Dict[str, Any]]:
        """The full on-disk entry for ``spec_key``, or ``None``.

        Any defect — missing file, truncated/corrupt JSON, wrong schema,
        key mismatch — reads as ``None``: the dispatcher recomputes and
        rewrites the entry instead of crashing.
        """
        path = self.path_for(spec_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("spec_key") != spec_key:
            return None
        if "result" not in entry:
            return None
        return entry

    def get(self, spec_key: str) -> Optional[Any]:
        """The cached result for ``spec_key`` (``None`` on any miss)."""
        entry = self.entry(spec_key)
        return None if entry is None else entry["result"]

    def contains(self, spec_key: str) -> bool:
        return self.entry(spec_key) is not None

    def put(self, spec: JobSpec, result: Any) -> Path:
        """Atomically persist ``result`` under the spec's key."""
        path = self.path_for(spec.spec_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "spec_key": spec.spec_key,
            "spec": spec.to_dict(),
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{spec.spec_key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # No sort_keys: the result's own key order is part of what
                # round-trips (drivers render rows in insertion order).
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def discard(self, spec_key: str) -> bool:
        """Drop one entry; True when something was removed."""
        try:
            os.unlink(self.path_for(spec_key))
            return True
        except OSError:
            return False

    def keys(self) -> Iterator[str]:
        """Every spec key with an entry on disk (defective entries skipped)."""
        if not self.results_dir.is_dir():
            return
        for shard in sorted(self.results_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                key = path.stem
                if self.entry(key) is not None:
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every cached result (and journal); returns entry count."""
        count = len(self)
        shutil.rmtree(self.root, ignore_errors=True)
        return count

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"


class Journal:
    """Append-only per-sweep completion log used for resume and status."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    @staticmethod
    def sweep_key(specs: Sequence[JobSpec]) -> str:
        """Content hash identifying a sweep (its ordered job list)."""
        digest = hashlib.sha256()
        for spec in specs:
            digest.update(spec.spec_key.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def path_for(self, sweep_key: str) -> Path:
        return self.journals_dir / f"{sweep_key}.jsonl"

    def _append(self, sweep_key: str, record: Dict[str, Any]) -> None:
        path = self.path_for(sweep_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")

    def begin(self, sweep_key: str, specs: Sequence[JobSpec], label: str = "") -> None:
        """Record the sweep's membership (idempotent across resumes —
        every attempt appends a ``begin`` line; readers take the last)."""
        self._append(
            sweep_key,
            {
                "event": "begin",
                "label": label,
                "total": len(specs),
                "spec_keys": [spec.spec_key for spec in specs],
            },
        )

    def record_done(self, sweep_key: str, spec_key: str, cached: bool) -> None:
        self._append(
            sweep_key, {"event": "done", "spec_key": spec_key, "cached": cached}
        )

    def read(self, sweep_key: str) -> List[Dict[str, Any]]:
        """Every well-formed record of the sweep's journal (truncated
        trailing lines from a kill mid-append are skipped)."""
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path_for(sweep_key), "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            pass
        return records

    def completed(self, sweep_key: str) -> set:
        """Spec keys the journal records as done for this sweep."""
        return {
            record["spec_key"]
            for record in self.read(sweep_key)
            if record.get("event") == "done" and "spec_key" in record
        }

    def status(self) -> List[Dict[str, Any]]:
        """Per-sweep progress summaries (for ``jobs status``)."""
        summaries: List[Dict[str, Any]] = []
        if not self.journals_dir.is_dir():
            return summaries
        for path in sorted(self.journals_dir.glob("*.jsonl")):
            sweep_key = path.stem
            records = self.read(sweep_key)
            begin = None
            for record in records:
                if record.get("event") == "begin":
                    begin = record
            done = self.completed(sweep_key)
            total = (begin or {}).get("total", len(done))
            summaries.append(
                {
                    "sweep_key": sweep_key,
                    "label": (begin or {}).get("label", ""),
                    "total": total,
                    "done": len(done),
                    "complete": total == len(done),
                }
            )
        return summaries
