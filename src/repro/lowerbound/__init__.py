"""Lower-bound machinery (Theorem 4) and adversarial workloads."""

from .construction import (
    DoublePrivilegeWitness,
    check_local_indistinguishability,
    construct_double_privilege_witness,
    find_privileged_step,
    local_state,
    local_states_equal,
    lower_bound_profile,
    splice_configurations,
)
from .witness import (
    adversarial_mutex_configurations,
    default_spliced_delays,
    delayed_double_privilege_configuration,
    farthest_vertex_pairs,
    immediate_double_privilege_configuration,
    latest_violation_configuration,
    spliced_violation_configurations,
)

__all__ = [
    "DoublePrivilegeWitness",
    "adversarial_mutex_configurations",
    "check_local_indistinguishability",
    "construct_double_privilege_witness",
    "default_spliced_delays",
    "delayed_double_privilege_configuration",
    "farthest_vertex_pairs",
    "find_privileged_step",
    "immediate_double_privilege_configuration",
    "latest_violation_configuration",
    "spliced_violation_configurations",
    "local_state",
    "local_states_equal",
    "lower_bound_profile",
    "splice_configurations",
]
