"""The Theorem 4 lower-bound construction.

Theorem 4 states that *any* self-stabilizing mutual-exclusion protocol needs
at least ``⌈diam(g)/2⌉`` synchronous steps to stabilize.  The proof is an
indistinguishability argument:

1. take two vertices ``u`` and ``v`` at distance ``diam(g)``;
2. run the synchronous execution from an arbitrary configuration until
   ``u`` is privileged at some step ``i > t`` and ``v`` at some ``j > t``
   (liveness guarantees both);
3. build a new configuration ``γ'₀`` that copies the ``t``-local state of
   ``u`` from ``γ_{i-t}`` and the ``t``-local state of ``v`` from
   ``γ_{j-t}`` — possible whenever the two balls are disjoint, which holds
   for every ``t < ⌈diam(g)/2⌉``;
4. by Lemma 5 (a vertex cannot learn anything farther than ``k`` hops in
   ``k`` synchronous steps), ``u`` and ``v`` behave in the spliced execution
   exactly as they did in the original ones, so both are privileged at step
   ``t`` — a safety violation ``t`` steps after the start.

This module implements the construction *executably* for any
privilege-aware protocol: it returns the spliced configuration and verifies
the double privilege by simulation.  Applied to SSME it demonstrates that
the Theorem 2 upper bound is tight; applied to any other candidate protocol
it produces a concrete counter-example to any claimed sub-``⌈diam/2⌉``
stabilization time.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Execution, PrivilegeAware, Protocol, synchronous_execution
from ..core.state import Configuration
from ..exceptions import ConstructionError
from ..graphs import Graph, diameter, diameter_endpoints
from ..types import VertexId

__all__ = [
    "local_state",
    "local_states_equal",
    "check_local_indistinguishability",
    "splice_configurations",
    "find_privileged_step",
    "DoublePrivilegeWitness",
    "construct_double_privilege_witness",
    "lower_bound_profile",
]


def local_state(
    configuration: Configuration, graph: Graph, vertex: VertexId, k: int
) -> Configuration:
    """The ``k``-local state ``γ_{v,k}`` of Definition 7: the restriction of
    the configuration to the ball of radius ``k`` around ``vertex``."""
    return configuration.restrict(sorted(graph.ball(vertex, k), key=repr))


def local_states_equal(
    gamma: Configuration,
    gamma_prime: Configuration,
    graph: Graph,
    vertex: VertexId,
    k: int,
) -> bool:
    """Whether ``γ_{v,k} = γ'_{v,k}``."""
    ball = graph.ball(vertex, k)
    return all(gamma[w] == gamma_prime[w] for w in ball)


def check_local_indistinguishability(
    protocol: Protocol,
    gamma: Configuration,
    gamma_prime: Configuration,
    vertex: VertexId,
    k: int,
) -> bool:
    """Executable Lemma 5: if ``γ_{v,k} = γ'_{v,k}`` then the restrictions to
    ``v`` of the length-``k`` prefixes of the synchronous executions from
    ``γ`` and ``γ'`` coincide.

    Returns True when the conclusion holds (and raises
    :class:`ConstructionError` if the premise is violated, because then the
    check is meaningless).
    """
    graph = protocol.graph
    if not local_states_equal(gamma, gamma_prime, graph, vertex, k):
        raise ConstructionError(
            "the two configurations do not agree on the k-local state of the vertex"
        )
    execution = synchronous_execution(protocol, gamma, k)
    execution_prime = synchronous_execution(protocol, gamma_prime, k)
    restriction = execution.restriction(vertex)[: k + 1]
    restriction_prime = execution_prime.restriction(vertex)[: k + 1]
    return restriction == restriction_prime


def splice_configurations(
    graph: Graph,
    patches: Sequence[Tuple[VertexId, int, Configuration]],
    filler: Configuration,
) -> Configuration:
    """Build a configuration from ``filler`` by copying, for each
    ``(vertex, radius, source)`` patch, the ``radius``-local state of
    ``vertex`` out of ``source``.

    The patched balls must be pairwise disjoint, otherwise the construction
    is ambiguous and a :class:`ConstructionError` is raised.
    """
    assignment = filler.as_dict()
    claimed: Dict[VertexId, VertexId] = {}
    for center, radius, source in patches:
        ball = graph.ball(center, radius)
        for w in ball:
            if w in claimed and claimed[w] != center:
                raise ConstructionError(
                    f"balls of {claimed[w]!r} and {center!r} overlap at {w!r}; "
                    "the splicing construction requires disjoint balls"
                )
            claimed[w] = center
            assignment[w] = source[w]
    return Configuration(assignment)


def find_privileged_step(
    protocol: Protocol,
    execution: Execution,
    vertex: VertexId,
    after: int,
) -> Optional[int]:
    """The first index ``i > after`` at which ``vertex`` is privileged in
    ``execution``, or ``None``."""
    if not isinstance(protocol, PrivilegeAware):
        raise ConstructionError("the protocol does not define a privilege predicate")
    for index in range(after + 1, execution.steps + 1):
        if protocol.is_privileged(execution.configuration(index), vertex):
            return index
    return None


class DoublePrivilegeWitness:
    """Result of the Theorem 4 construction for one value of ``t``."""

    __slots__ = (
        "t",
        "vertex_u",
        "vertex_v",
        "initial_configuration",
        "privileged_at_t",
        "success",
    )

    def __init__(
        self,
        t: int,
        vertex_u: VertexId,
        vertex_v: VertexId,
        initial_configuration: Configuration,
        privileged_at_t: Tuple[VertexId, ...],
        success: bool,
    ) -> None:
        self.t = t
        self.vertex_u = vertex_u
        self.vertex_v = vertex_v
        self.initial_configuration = initial_configuration
        self.privileged_at_t = privileged_at_t
        self.success = success

    def __repr__(self) -> str:
        return (
            f"DoublePrivilegeWitness(t={self.t}, u={self.vertex_u!r}, "
            f"v={self.vertex_v!r}, success={self.success})"
        )


def construct_double_privilege_witness(
    protocol: Protocol,
    t: int,
    base_configuration: Optional[Configuration] = None,
    horizon: Optional[int] = None,
    endpoints: Optional[Tuple[VertexId, VertexId]] = None,
    privilege_radius: int = 0,
) -> DoublePrivilegeWitness:
    """Run the Theorem 4 construction for delay ``t``.

    Parameters
    ----------
    protocol:
        A privilege-aware protocol (SSME, Dijkstra's ring, ...).
    t:
        The candidate stabilization time to refute; must satisfy
        ``t < ⌈diam(g)/2⌉`` (otherwise the two balls may overlap and the
        construction does not apply).
    base_configuration:
        The configuration ``γ₀`` whose synchronous execution supplies the
        spliced local states.  Defaults to the protocol's default (clean)
        configuration, whose execution is guaranteed to visit privileges of
        every vertex.
    horizon:
        How far to unroll the base execution while looking for privileged
        steps of the two endpoints.  Defaults to a protocol-specific guess
        (a couple of clock periods for SSME-like protocols).
    endpoints:
        The pair ``(u, v)``; defaults to a diametral pair.
    privilege_radius:
        How far the privilege predicate of the protocol looks: 0 when it
        only reads the vertex's own state (SSME), 1 when it also reads the
        neighbours' states (Dijkstra's token ring).  The spliced balls are
        enlarged by this amount so that the predicate is still determined by
        the patched region after ``t`` steps.

    Returns a witness whose ``success`` flag says whether the spliced
    configuration indeed exhibits two privileged vertices after exactly
    ``t`` synchronous steps (it always does for correct mutual-exclusion
    protocols, by Lemma 5).
    """
    if not isinstance(protocol, PrivilegeAware):
        raise ConstructionError("the protocol does not define a privilege predicate")
    if privilege_radius < 0:
        raise ConstructionError("privilege_radius must be non-negative")
    graph = protocol.graph
    diam = diameter(graph)
    if diam == 0:
        raise ConstructionError("the lower bound is vacuous on a single-vertex graph")
    if t < 0:
        raise ConstructionError("t must be non-negative")
    patch_radius = t + privilege_radius
    if 2 * t >= diam:
        raise ConstructionError(
            f"t={t} does not satisfy 2t < diam(g)={diam}; the balls would overlap"
        )
    u, v = endpoints if endpoints is not None else diameter_endpoints(graph)
    if graph.distance(u, v) < 2 * patch_radius + 1:
        raise ConstructionError(
            f"endpoints {u!r}, {v!r} are too close for t={t} with "
            f"privilege_radius={privilege_radius}"
        )
    base = base_configuration if base_configuration is not None else protocol.default_configuration()
    if horizon is None:
        horizon = _default_privilege_horizon(protocol)
    execution = synchronous_execution(protocol, base, horizon)

    i = find_privileged_step(protocol, execution, u, after=t)
    j = find_privileged_step(protocol, execution, v, after=t)
    if i is None or j is None:
        raise ConstructionError(
            "the base synchronous execution never privileges both endpoints "
            f"within {horizon} steps; increase the horizon"
        )

    spliced = splice_configurations(
        graph,
        patches=[
            (u, patch_radius, execution.configuration(i - t)),
            (v, patch_radius, execution.configuration(j - t)),
        ],
        filler=execution.configuration(i - t),
    )
    check = synchronous_execution(protocol, spliced, t)
    final = check.configuration(t)
    privileged = tuple(
        sorted(
            (w for w in (u, v) if protocol.is_privileged(final, w)),
            key=repr,
        )
    )
    return DoublePrivilegeWitness(
        t=t,
        vertex_u=u,
        vertex_v=v,
        initial_configuration=spliced,
        privileged_at_t=privileged,
        success=len(privileged) == 2,
    )


def _default_privilege_horizon(protocol: Protocol) -> int:
    """A horizon long enough for the default synchronous execution to
    privilege every vertex at least once."""
    clock = getattr(protocol, "clock", None)
    if clock is not None:
        return clock.K + clock.alpha + 4
    K = getattr(protocol, "K", None)
    if isinstance(K, int):
        return K * protocol.graph.n + 4
    return 4 * protocol.graph.n * protocol.graph.n + 4


def lower_bound_profile(
    protocol: Protocol,
    ts: Optional[Sequence[int]] = None,
    privilege_radius: int = 0,
) -> List[DoublePrivilegeWitness]:
    """Run the construction for every ``t`` in ``ts`` (default: every value
    from 0 to ``⌈diam/2⌉ - 1``) and return the witnesses.

    A protocol whose synchronous stabilization time were smaller than
    ``⌈diam/2⌉`` would have to survive all of these; a successful witness at
    delay ``t`` certifies that the stabilization time exceeds ``t``.
    """
    diam = diameter(protocol.graph)
    bound = math.ceil(diam / 2)
    if ts is None:
        ts = range(bound)
    witnesses = []
    for t in ts:
        witnesses.append(
            construct_double_privilege_witness(
                protocol, t, privilege_radius=privilege_radius
            )
        )
    return witnesses
