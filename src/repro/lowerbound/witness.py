"""Adversarial initial configurations derived from the lower-bound argument.

Random initial configurations almost never place two vertices on privileged
clock values simultaneously, so they do not exercise the interesting part of
Theorem 2: measured stabilization times stay at 0.  The workloads below
create the worst configurations the theorem allows — configurations from
which the last safety violation happens as late as possible — by reusing the
Theorem 4 splicing construction and a few cheaper hand-crafted patterns.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from ..core import PrivilegeAware, Protocol
from ..core.state import Configuration
from ..exceptions import ConstructionError
from ..graphs import diameter, diameter_endpoints
from ..types import VertexId
from .construction import construct_double_privilege_witness

__all__ = [
    "immediate_double_privilege_configuration",
    "latest_violation_configuration",
    "adversarial_mutex_configurations",
]


def immediate_double_privilege_configuration(
    protocol: Protocol,
    pair: Optional[Tuple[VertexId, VertexId]] = None,
) -> Configuration:
    """A configuration in which two far-apart vertices are privileged *now*.

    For SSME this means planting the two privileged clock values directly;
    the transient fault model allows any such configuration.  Only protocols
    whose privilege predicate depends on the vertex's own state alone (SSME)
    support this shortcut; others should use the splicing construction.
    """
    privileged_value = getattr(protocol, "privileged_value", None)
    if privileged_value is None:
        raise ConstructionError(
            "immediate_double_privilege_configuration needs a protocol with "
            "per-vertex privileged values (SSME)"
        )
    graph = protocol.graph
    u, v = pair if pair is not None else diameter_endpoints(graph)
    assignment = {w: privileged_value(w) for w in graph.vertices}
    # Keep only u and v on their privileged values; park everybody else on a
    # non-privileged correct value near u's.
    base = privileged_value(u)
    clock = getattr(protocol, "clock")
    for w in graph.vertices:
        if w not in (u, v):
            assignment[w] = clock.phi(base)
    assignment[u] = privileged_value(u)
    assignment[v] = privileged_value(v)
    return protocol.configuration(assignment)


def latest_violation_configuration(
    protocol: Protocol,
    horizon: Optional[int] = None,
) -> Configuration:
    """The spliced configuration of Theorem 4 at the largest admissible
    delay ``t = ⌈diam/2⌉ - 1``: its synchronous execution still violates
    safety ``t`` steps in, i.e. as late as the lower bound permits."""
    diam = diameter(protocol.graph)
    t = max(0, math.ceil(diam / 2) - 1)
    if diam == 0:
        raise ConstructionError("no violation is constructible on a single vertex")
    witness = construct_double_privilege_witness(protocol, t, horizon=horizon)
    return witness.initial_configuration


def adversarial_mutex_configurations(
    protocol: Protocol,
    rng: random.Random,
    random_count: int = 10,
    include_spliced: bool = True,
) -> List[Configuration]:
    """A workload of initial configurations for mutual-exclusion experiments.

    The workload mixes

    * ``random_count`` arbitrary configurations (the plain transient-fault
      model),
    * an immediate double-privilege configuration (when the protocol
      supports planting privileges), and
    * the latest-violation spliced configuration of Theorem 4 (when
      ``include_spliced`` and the diameter is at least 2).

    The spliced configuration is the one that realizes (up to one step) the
    worst case of Theorem 2, so including it makes the measured synchronous
    stabilization times meaningful rather than trivially zero.
    """
    if not isinstance(protocol, PrivilegeAware):
        raise ConstructionError("adversarial workloads need a privilege-aware protocol")
    configurations: List[Configuration] = [
        protocol.random_configuration(rng) for _ in range(random_count)
    ]
    diam = diameter(protocol.graph)
    if diam >= 1 and getattr(protocol, "privileged_value", None) is not None:
        configurations.append(immediate_double_privilege_configuration(protocol))
    if include_spliced and diam >= 1:
        configurations.append(latest_violation_configuration(protocol))
    return configurations
