"""Adversarial initial configurations derived from the lower-bound argument.

Random initial configurations almost never place two vertices on privileged
clock values simultaneously, so they do not exercise the interesting part of
Theorem 2: measured stabilization times stay at 0.  The workloads below
create the worst configurations the theorem allows — configurations from
which the last safety violation happens as late as possible — by reusing the
Theorem 4 splicing construction and a few cheaper hand-crafted patterns.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from ..core import PrivilegeAware, Protocol
from ..core.state import Configuration
from ..exceptions import ConstructionError
from ..graphs import diameter, diameter_endpoints
from ..types import VertexId
from .construction import construct_double_privilege_witness

__all__ = [
    "immediate_double_privilege_configuration",
    "delayed_double_privilege_configuration",
    "latest_violation_configuration",
    "farthest_vertex_pairs",
    "default_spliced_delays",
    "spliced_violation_configurations",
    "adversarial_mutex_configurations",
]


def default_spliced_delays(diam: int) -> Tuple[int, int]:
    """The standard splicing delays for a graph of diameter ``diam``: the
    latest admissible violation delay ``⌈diam/2⌉ - 1`` and its midpoint
    (the midpoint witness violates safety mid-recovery, a shape the latest
    witness alone does not exercise; duplicates are collapsed by the
    consumers)."""
    latest = max(0, math.ceil(diam / 2) - 1)
    return latest, latest // 2


def farthest_vertex_pairs(
    protocol: Protocol, count: int
) -> List[Tuple[VertexId, VertexId]]:
    """The ``count`` most distant vertex pairs, farthest first.

    Pairs at distance 0 never occur (a pair is two distinct vertices); ties
    are broken by vertex repr so the selection is deterministic.  Used to
    diversify the double-privilege workloads beyond the single diametral
    pair: on non-vertex-transitive graphs different far pairs exercise
    different recovery regions.
    """
    if count < 0:
        raise ConstructionError("count must be non-negative")
    graph = protocol.graph
    vertices = sorted(graph.vertices, key=repr)
    pairs: List[Tuple[int, VertexId, VertexId]] = []
    for position, u in enumerate(vertices):
        distances = graph.bfs_distances(u)
        for v in vertices[position + 1 :]:
            pairs.append((distances[v], u, v))
    pairs.sort(key=lambda entry: (-entry[0], repr(entry[1]), repr(entry[2])))
    return [(u, v) for _distance, u, v in pairs[:count]]


def spliced_violation_configurations(
    protocol: Protocol,
    delays: Optional[Sequence[int]] = None,
    horizon: Optional[int] = None,
) -> List[Configuration]:
    """Spliced Theorem 4 configurations at several violation delays.

    ``delays`` lists the delays ``t`` to construct witnesses for; each is
    clamped to the admissible range ``0 <= t <= ⌈diam/2⌉ - 1`` and
    duplicates are dropped.  The default is :func:`default_spliced_delays`:
    the latest admissible delay (the
    :func:`latest_violation_configuration`) plus its midpoint when distinct.
    """
    diam = diameter(protocol.graph)
    if diam == 0:
        raise ConstructionError("no violation is constructible on a single vertex")
    latest = max(0, math.ceil(diam / 2) - 1)
    if delays is None:
        delays = default_spliced_delays(diam)
    clamped = sorted({min(max(0, int(t)), latest) for t in delays}, reverse=True)
    return [
        construct_double_privilege_witness(protocol, t, horizon=horizon).initial_configuration
        for t in clamped
    ]


def immediate_double_privilege_configuration(
    protocol: Protocol,
    pair: Optional[Tuple[VertexId, VertexId]] = None,
) -> Configuration:
    """A configuration in which two far-apart vertices are privileged *now*.

    For SSME this means planting the two privileged clock values directly;
    the transient fault model allows any such configuration.  Only protocols
    whose privilege predicate depends on the vertex's own state alone (SSME)
    support this shortcut; others should use the splicing construction.
    """
    privileged_value = getattr(protocol, "privileged_value", None)
    if privileged_value is None:
        raise ConstructionError(
            "immediate_double_privilege_configuration needs a protocol with "
            "per-vertex privileged values (SSME)"
        )
    graph = protocol.graph
    u, v = pair if pair is not None else diameter_endpoints(graph)
    assignment = {w: privileged_value(w) for w in graph.vertices}
    # Keep only u and v on their privileged values; park everybody else on a
    # non-privileged correct value near u's.
    base = privileged_value(u)
    clock = getattr(protocol, "clock")
    for w in graph.vertices:
        if w not in (u, v):
            assignment[w] = clock.phi(base)
    assignment[u] = privileged_value(u)
    assignment[v] = privileged_value(v)
    return protocol.configuration(assignment)


def delayed_double_privilege_configuration(
    protocol: Protocol,
    t: int,
    pair: Optional[Tuple[VertexId, VertexId]] = None,
) -> Configuration:
    """A configuration whose synchronous execution violates safety at
    exactly step ``t`` — the Theorem 4 witness shape, built analytically in
    O(n) instead of by splicing recorded executions.

    Construction: two *coherent balls* of radius ``t`` around far-apart
    vertices ``u`` and ``v``, every ball vertex holding the constant value
    ``privileged_value(center) - t``, and incoherent filler (the initial
    value ``-1``) everywhere else.  Under the synchronous daemon a ball
    interior ticks in lockstep (all-equal neighbourhoods satisfy ``NA``)
    while the incoherence front at the ball surface resets inward exactly
    one hop per step — so each center ticks undisturbed for ``t`` steps and
    the two centers land on their privileged values *simultaneously* at
    step ``t``.  No other simultaneous privileges can occur later: a
    surviving ball vertex ``w`` would need ``s - t ≡ 2·diam·(id_w -
    id_center) (mod K)``, impossible for ``s - t < 2·diam``.  The measured
    stabilization time from this configuration is therefore ``t + 1``; at
    ``t = ⌈diam/2⌉ - 1`` it meets the Theorem 2 bound exactly.

    Unlike :func:`latest_violation_configuration` this never runs an
    execution and never computes the graph diameter, so it scales to the
    ``n = 10⁴⁺`` topologies of the superstep regime.  The balls must not
    overlap: requires ``distance(u, v) > 2·t``.
    """
    privileged_value = getattr(protocol, "privileged_value", None)
    if privileged_value is None:
        raise ConstructionError(
            "delayed_double_privilege_configuration needs a protocol with "
            "per-vertex privileged values (SSME)"
        )
    if t < 0:
        raise ConstructionError(f"violation delay must be >= 0, got {t}")
    graph = protocol.graph
    u, v = pair if pair is not None else diameter_endpoints(graph)
    if u == v:
        raise ConstructionError("the two privileged vertices must differ")
    du = graph.bfs_distances(u)
    dv = graph.bfs_distances(v)
    if du[v] <= 2 * t:
        raise ConstructionError(
            f"radius-{t} balls around {u!r} and {v!r} overlap "
            f"(distance {du[v]} <= {2 * t}); pick a farther pair or a "
            "smaller delay"
        )
    ball_u = privileged_value(u) - t
    ball_v = privileged_value(v) - t
    assignment = {}
    for w in graph.vertices:
        if du[w] <= t:
            assignment[w] = ball_u
        elif dv[w] <= t:
            assignment[w] = ball_v
        else:
            # -1 lies outside [0, K), so every ball-surface vertex sees an
            # out-of-range neighbour and takes RA — the front starts moving
            # on the very first step.
            assignment[w] = -1
    return protocol.configuration(assignment)


def latest_violation_configuration(
    protocol: Protocol,
    horizon: Optional[int] = None,
) -> Configuration:
    """The spliced configuration of Theorem 4 at the largest admissible
    delay ``t = ⌈diam/2⌉ - 1``: its synchronous execution still violates
    safety ``t`` steps in, i.e. as late as the lower bound permits."""
    diam = diameter(protocol.graph)
    t = max(0, math.ceil(diam / 2) - 1)
    if diam == 0:
        raise ConstructionError("no violation is constructible on a single vertex")
    witness = construct_double_privilege_witness(protocol, t, horizon=horizon)
    return witness.initial_configuration


def adversarial_mutex_configurations(
    protocol: Protocol,
    rng: random.Random,
    random_count: int = 10,
    include_spliced: bool = True,
    extra_pairs: int = 0,
    spliced_delays: Optional[Sequence[int]] = None,
) -> List[Configuration]:
    """A workload of initial configurations for mutual-exclusion experiments.

    The workload mixes

    * ``random_count`` arbitrary configurations (the plain transient-fault
      model),
    * an immediate double-privilege configuration (when the protocol
      supports planting privileges), plus one per additional far-apart
      vertex pair when ``extra_pairs > 0`` (see
      :func:`farthest_vertex_pairs` — random initials almost never plant
      two privileges, so these are what make the measured worst cases
      exercise the bounds at all), and
    * spliced Theorem 4 configurations (when ``include_spliced`` and the
      diameter is at least 1): the latest-violation witness by default, or
      one witness per delay in ``spliced_delays``.

    The spliced configurations are the ones that realize (up to one step)
    the worst case of Theorem 2, so including them makes the measured
    synchronous stabilization times meaningful rather than trivially zero.
    """
    if not isinstance(protocol, PrivilegeAware):
        raise ConstructionError("adversarial workloads need a privilege-aware protocol")
    configurations: List[Configuration] = [
        protocol.random_configuration(rng) for _ in range(random_count)
    ]
    diam = diameter(protocol.graph)
    if diam >= 1 and getattr(protocol, "privileged_value", None) is not None:
        diametral = frozenset(diameter_endpoints(protocol.graph))
        configurations.append(immediate_double_privilege_configuration(protocol))
        if extra_pairs > 0:
            others = [
                pair
                for pair in farthest_vertex_pairs(protocol, extra_pairs + 1)
                if frozenset(pair) != diametral
            ]
            configurations.extend(
                immediate_double_privilege_configuration(protocol, pair)
                for pair in others[:extra_pairs]
            )
    if include_spliced and diam >= 1:
        if spliced_delays is None:
            configurations.append(latest_violation_configuration(protocol))
        else:
            configurations.extend(
                spliced_violation_configurations(protocol, spliced_delays)
            )
    return configurations
