"""Mutual exclusion: SSME (the paper's contribution) and Dijkstra's baseline."""

from .ssme import SSME, ssme_clock_size, ssme_privileged_value
from .dijkstra import DijkstraTokenRing
from .specification import (
    MutualExclusionSpec,
    critical_section_counts,
    critical_section_events,
)
from .variants import (
    ParametricClockMutex,
    minimal_safe_clock_size,
    minimal_safe_spacing,
)
from .metrics import ServiceMetrics, service_metrics

__all__ = [
    "DijkstraTokenRing",
    "MutualExclusionSpec",
    "ParametricClockMutex",
    "SSME",
    "ServiceMetrics",
    "critical_section_counts",
    "critical_section_events",
    "minimal_safe_clock_size",
    "minimal_safe_spacing",
    "service_metrics",
    "ssme_clock_size",
    "ssme_privileged_value",
]
