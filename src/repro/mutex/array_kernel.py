"""Vectorized array-state kernel for Dijkstra's K-state token ring.

The single rule ``T`` reads only the ring predecessor's counter, so the
whole transition relation vectorizes through one precomputed predecessor
position array: the bottom machine is enabled iff its counter equals its
predecessor's (and increments modulo K), every other machine iff it
differs (and copies).  Guard-by-guard equivalence with
:class:`~repro.mutex.DijkstraTokenRing` is pinned by
``tests/test_vector_kernel.py``; trace equivalence by the engine
equivalence suite.

The kernel is tiling-aware: prepared on a
:class:`~repro.core.vector.TiledGraphIndex` (the batched exact checker
stacks thousands of ring copies block-diagonally), the predecessor map is
replicated with per-block offsets and the scalar bottom row becomes a
boolean mask with one bottom machine per block.

This module imports NumPy at load time and is therefore only imported from
:meth:`DijkstraTokenRing.array_kernel` after a ``numpy_available`` check.
"""

from __future__ import annotations

import numpy as np

from ..core.vector import (
    ArrayKernel,
    GraphIndex,
    tile_block_positions,
    tile_block_values,
)

__all__ = ["DijkstraArrayKernel"]


class DijkstraArrayKernel(ArrayKernel):
    """Array-state transition relation of Dijkstra's token ring."""

    def __init__(self, protocol) -> None:
        self.rule_names = (protocol.RULE_MOVE,)
        self._K = protocol.K
        self._bottom = protocol.bottom
        self._predecessor_of = {
            v: protocol.predecessor(v) for v in protocol.graph.vertices
        }
        self._pred_pos = None
        self._is_bottom = None

    def prepare(self, index: GraphIndex) -> None:
        base_pred = np.fromiter(
            (index.position[self._predecessor_of[v]] for v in index.vertices),
            dtype=np.int64,
            count=len(index.vertices),
        )
        base_bottom = np.zeros(len(index.vertices), dtype=bool)
        base_bottom[index.position[self._bottom]] = True
        self._pred_pos = tile_block_positions(base_pred, index)
        self._is_bottom = tile_block_values(base_bottom, index)

    def enabled_rules(self, states, index: GraphIndex):
        s = states[:, 0]
        differs = s != s[self._pred_pos]
        enabled = np.where(self._is_bottom, ~differs, differs)
        return np.where(enabled, np.int64(0), np.int64(-1))

    def enabled_rules_for(self, states, rows, index: GraphIndex):
        """Subset guard evaluation for the vectorized sparse refresh —
        identical to ``enabled_rules(states, index)[rows]``, touching only
        the predecessors of ``rows``."""
        s = states[:, 0]
        differs = s[rows] != s[self._pred_pos[rows]]
        enabled = np.where(self._is_bottom[rows], ~differs, differs)
        return np.where(enabled, np.int64(0), np.int64(-1))

    def fire(self, states, selected, rule_ids, index: GraphIndex):
        s = states[:, 0]
        new = s[self._pred_pos[selected]]
        bottom_rows = self._is_bottom[selected]
        if bottom_rows.any():
            new = np.where(bottom_rows, (s[selected] + 1) % self._K, new)
        return new.reshape(-1, 1)
