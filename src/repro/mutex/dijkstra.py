"""Dijkstra's K-state self-stabilizing token ring (the 1974 baseline).

This is the protocol the paper positions SSME against: the seminal
self-stabilizing mutual-exclusion protocol, which only operates on rings and
stabilizes in ``Θ(n²)`` steps under the unfair distributed daemon but in
``n`` steps under the synchronous daemon — making it, as Section 3 notes,
*accidentally* speculatively stabilizing.

The classical formulation: processes ``p_0 .. p_{n-1}`` are arranged on a
unidirectional ring and hold a counter ``x_i ∈ {0, ..., K-1}``.  The
distinguished *bottom* machine ``p_0`` is privileged when its counter equals
its predecessor's (``x_0 = x_{n-1}``) and increments it modulo ``K`` when
activated; every other machine is privileged when its counter differs from
its predecessor's and copies the predecessor's value when activated.  With
``K >= n + 1`` (our default) the protocol stabilizes under any daemon.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core import LocalView, PrivilegeAware, Protocol, Rule
from ..core.state import Configuration
from ..exceptions import ProtocolError
from ..graphs import Graph, is_ring, ring_graph
from ..types import VertexId

__all__ = ["DijkstraTokenRing"]


class DijkstraTokenRing(Protocol, PrivilegeAware):
    """Dijkstra's K-state mutual exclusion protocol on a ring.

    Parameters
    ----------
    graph:
        A ring (cycle) graph.  Rings on fewer than three vertices are
        accepted for completeness (``n = 2`` degenerates to a single edge).
    K:
        Number of counter states.  Defaults to ``n + 1``, which guarantees
        self-stabilization under every daemon considered in the paper.
    bottom:
        The distinguished machine.  Defaults to the smallest vertex label.

    Examples
    --------
    >>> protocol = DijkstraTokenRing.on_ring(5)
    >>> protocol.K
    6
    """

    name = "dijkstra-token-ring"

    #: Both action branches are closed over the counter domain: the bottom
    #: machine increments modulo K and every other machine copies its
    #: predecessor's (legal) counter, so engines may skip re-validating
    #: fired states.
    actions_preserve_validity = True

    RULE_MOVE = "T"

    def __init__(
        self,
        graph: Graph,
        K: Optional[int] = None,
        bottom: Optional[VertexId] = None,
    ) -> None:
        super().__init__(graph)
        if graph.n >= 3 and not is_ring(graph):
            raise ProtocolError("Dijkstra's protocol requires a ring communication graph")
        if graph.n < 2:
            raise ProtocolError("Dijkstra's protocol requires at least two processes")
        self._K = K if K is not None else graph.n + 1
        if self._K < 2:
            raise ProtocolError(f"K must be >= 2, got {self._K}")
        self._bottom = bottom if bottom is not None else graph.sorted_vertices()[0]
        if self._bottom not in graph:
            raise ProtocolError(f"bottom vertex {self._bottom!r} is not in the graph")
        self._ring_order = self._compute_ring_order()
        self._predecessor = self._compute_predecessors()
        self._rules = [Rule(self.RULE_MOVE, self._guard, self._action)]
        # (vertex_order, pred positions, bottom row) cache for
        # privileged_count_array.
        self._array_privilege = None

    @classmethod
    def on_ring(cls, n: int, K: Optional[int] = None) -> "DijkstraTokenRing":
        """Convenience constructor on the standard ring ``ring_graph(n)``."""
        return cls(ring_graph(n), K=K)

    # ------------------------------------------------------------------ #
    # Ring structure
    # ------------------------------------------------------------------ #
    def _compute_ring_order(self) -> List[VertexId]:
        graph = self.graph
        if graph.n == 2:
            other = next(iter(graph.neighbors(self._bottom)))
            return [self._bottom, other]
        order = [self._bottom]
        previous = None
        current = self._bottom
        while len(order) < graph.n:
            neighbors = sorted(graph.neighbors(current), key=repr)
            nxt = None
            for candidate in neighbors:
                if candidate != previous:
                    nxt = candidate
                    break
            if nxt is None:
                raise ProtocolError("failed to orient the ring")
            order.append(nxt)
            previous, current = current, nxt
        return order

    def _compute_predecessors(self) -> Dict[VertexId, VertexId]:
        order = self._ring_order
        return {order[i]: order[i - 1] for i in range(len(order))}

    @property
    def K(self) -> int:
        """Number of counter states."""
        return self._K

    @property
    def bottom(self) -> VertexId:
        """The distinguished bottom machine."""
        return self._bottom

    @property
    def ring_order(self) -> Sequence[VertexId]:
        """The vertices in ring order, starting at the bottom machine."""
        return tuple(self._ring_order)

    def predecessor(self, vertex: VertexId) -> VertexId:
        """The ring predecessor of ``vertex`` (the machine it reads from)."""
        try:
            return self._predecessor[vertex]
        except KeyError:
            raise ProtocolError(f"unknown vertex {vertex!r}") from None

    # ------------------------------------------------------------------ #
    # Rules
    # ------------------------------------------------------------------ #
    def _guard(self, view: LocalView) -> bool:
        predecessor_state = view.neighbor_states[self._predecessor[view.vertex]]
        if view.vertex == self._bottom:
            return view.state == predecessor_state
        return view.state != predecessor_state

    def _action(self, view: LocalView) -> int:
        predecessor_state = view.neighbor_states[self._predecessor[view.vertex]]
        if view.vertex == self._bottom:
            return (view.state + 1) % self._K
        return predecessor_state

    def rules(self) -> Sequence[Rule]:
        return self._rules

    def vertex_state_space(self, vertex: VertexId) -> Sequence[int]:
        """Every machine's counter ranges over ``{0, ..., K-1}``."""
        return range(self._K)

    def array_codec(self):
        """States are plain counter ints — the trivial width-1 codec."""
        from ..core.vector import IntCodec, numpy_available

        if not numpy_available():
            return None
        return IntCodec()

    def array_kernel(self):
        """The vectorized predecessor-comparison kernel."""
        from ..core.vector import numpy_available

        if not numpy_available():
            return None
        from .array_kernel import DijkstraArrayKernel

        return DijkstraArrayKernel(self)

    def random_state(self, vertex: VertexId, rng: random.Random) -> int:
        return rng.randrange(self._K)

    def default_state(self, vertex: VertexId) -> int:
        return 0

    def validate_state(self, vertex: VertexId, state) -> None:
        if not isinstance(state, int) or not 0 <= state < self._K:
            raise ProtocolError(
                f"state {state!r} of vertex {vertex!r} outside 0..{self._K - 1}"
            )

    # ------------------------------------------------------------------ #
    # Privilege
    # ------------------------------------------------------------------ #
    def is_privileged(self, configuration: Configuration, vertex: VertexId) -> bool:
        """In Dijkstra's protocol, privilege and enabledness coincide."""
        predecessor_state = configuration[self._predecessor[vertex]]
        if vertex == self._bottom:
            return configuration[vertex] == predecessor_state
        return configuration[vertex] != predecessor_state

    def privileged_count_array(self, view) -> int:
        """Number of privileged vertices of a live array-state view.

        Vectorized privilege count for the
        :class:`~repro.core.vector.ArrayStateView` the array backends hand
        to ``stop_when`` predicates under light traces: one gather against
        the cached predecessor-position vector (non-bottom machines are
        privileged iff their counter differs from their predecessor's, the
        bottom machine iff it matches).
        """
        import numpy as np

        order = view.vertex_order
        cached = self._array_privilege
        if cached is None or cached[0] is not order:
            position = {v: i for i, v in enumerate(order)}
            pred = np.fromiter(
                (position[self._predecessor[v]] for v in order),
                dtype=np.int64,
                count=len(order),
            )
            self._array_privilege = cached = (order, pred, position[self._bottom])
        s = view.raw_states()[:, 0]
        differs = s != s[cached[1]]
        count = int(np.count_nonzero(differs))
        return count - 1 if differs[cached[2]] else count + 1

    def privileged_rows(self, rows, order):
        """Batch privilege matrix for the exact checker: non-bottom machines
        are privileged iff their counter differs from their predecessor's,
        the bottom machine iff it matches."""
        import numpy as np

        position = {v: i for i, v in enumerate(order)}
        pred = np.fromiter(
            (position[self._predecessor[v]] for v in order),
            dtype=np.int64,
            count=len(order),
        )
        values = rows[:, :, 0]
        differs = values != values[:, pred]
        bottom = position[self._bottom]
        differs[:, bottom] = ~differs[:, bottom]
        return differs

    def legitimate_configuration(self, value: int = 0) -> Configuration:
        """The canonical legitimate configuration: every counter equal."""
        if not 0 <= value < self._K:
            raise ProtocolError(f"value {value} outside 0..{self._K - 1}")
        return self.configuration({v: value for v in self.graph.vertices})
