"""Service metrics for mutual-exclusion executions.

Beyond the stabilization time, a user of a mutual-exclusion layer cares
about the quality of service once the system has stabilized: how often each
process enters its critical section, how long it waits between two entries,
and how evenly the privilege is shared.  These metrics are not part of the
paper's claims, but they make the examples and the downstream use of the
library (resource arbitration scenarios) much more informative.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import Execution, PrivilegeAware, Protocol
from ..exceptions import SpecificationError
from ..types import VertexId
from .specification import critical_section_events

__all__ = ["ServiceMetrics", "service_metrics"]


class ServiceMetrics:
    """Per-execution quality-of-service summary for mutual exclusion."""

    __slots__ = (
        "window_steps",
        "entries",
        "total_entries",
        "max_gap",
        "mean_gap",
        "jains_fairness",
        "starved_vertices",
    )

    def __init__(
        self,
        window_steps: int,
        entries: Dict[VertexId, int],
        max_gap: Optional[int],
        mean_gap: Optional[float],
        jains_fairness: float,
        starved_vertices: List[VertexId],
    ) -> None:
        self.window_steps = window_steps
        self.entries = entries
        self.total_entries = sum(entries.values())
        self.max_gap = max_gap
        self.mean_gap = mean_gap
        self.jains_fairness = jains_fairness
        self.starved_vertices = starved_vertices

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics(total_entries={self.total_entries}, "
            f"fairness={self.jains_fairness:.3f}, starved={len(self.starved_vertices)})"
        )


def service_metrics(
    execution: Execution, protocol: Protocol, start: int = 0
) -> ServiceMetrics:
    """Compute service metrics on the window of ``execution`` from ``start``.

    ``max_gap``/``mean_gap`` measure, over vertices with at least two
    critical-section entries in the window, the number of steps between two
    consecutive entries of the same vertex.  ``jains_fairness`` is Jain's
    fairness index of the per-vertex entry counts (1.0 means perfectly even
    sharing).  ``starved_vertices`` lists vertices with no entry at all in
    the window — on a window of at least one clock period of a stabilized
    SSME execution this list is empty (liveness).
    """
    if not isinstance(protocol, PrivilegeAware):
        raise SpecificationError("service metrics require a privilege-aware protocol")
    if not 0 <= start <= execution.steps:
        raise SpecificationError(
            f"start index {start} out of range (0..{execution.steps})"
        )
    vertices = list(protocol.graph.vertices)
    entries: Dict[VertexId, int] = {v: 0 for v in vertices}
    entry_steps: Dict[VertexId, List[int]] = {v: [] for v in vertices}
    for step, vertex in critical_section_events(execution, protocol):
        if step >= start:
            entries[vertex] += 1
            entry_steps[vertex].append(step)

    gaps: List[int] = []
    for steps in entry_steps.values():
        gaps.extend(b - a for a, b in zip(steps, steps[1:]))
    max_gap = max(gaps) if gaps else None
    mean_gap = sum(gaps) / len(gaps) if gaps else None

    counts = list(entries.values())
    total = sum(counts)
    if total == 0:
        fairness = 1.0
    else:
        fairness = (total * total) / (len(counts) * sum(c * c for c in counts))

    starved = sorted((v for v, count in entries.items() if count == 0), key=repr)
    return ServiceMetrics(
        window_steps=execution.steps - start,
        entries=entries,
        max_gap=max_gap,
        mean_gap=mean_gap,
        jains_fairness=fairness,
        starved_vertices=starved,
    )
