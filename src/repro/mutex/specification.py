"""The mutual exclusion specification ``spec_ME`` (Specification 1).

An execution satisfies ``spec_ME`` when at most one vertex is privileged in
every configuration (safety) and every vertex executes its critical section
infinitely often (liveness).  A vertex *executes its critical section*
during an action when it is privileged in the source configuration and
activated during that action.

The specification is generic over any protocol implementing the
:class:`~repro.core.protocol.PrivilegeAware` mixin (SSME, Dijkstra's token
ring).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core import Execution, PrivilegeAware, Protocol, Specification
from ..core.state import Configuration
from ..exceptions import SpecificationError
from ..types import VertexId

__all__ = ["MutualExclusionSpec", "critical_section_events", "critical_section_counts"]


def critical_section_events(
    execution: Execution, protocol: Protocol
) -> List[Tuple[int, VertexId]]:
    """All critical-section executions of a trace.

    Returns pairs ``(action_index, vertex)``: the vertex was privileged in
    the source configuration of the action and was activated during it.
    """
    if not isinstance(protocol, PrivilegeAware):
        raise SpecificationError("protocol does not define a privilege predicate")
    events: List[Tuple[int, VertexId]] = []
    # Sequential walk: per-index configuration access would pin every
    # reconstructed configuration of a light trace (see docs/engine.md).
    configurations = execution.iter_configurations()
    for index in range(execution.steps):
        configuration = next(configurations)
        selection = execution.selection(index)
        for vertex in selection:
            if protocol.is_privileged(configuration, vertex):
                events.append((index, vertex))
    return events


def critical_section_counts(
    execution: Execution, protocol: Protocol, start: int = 0
) -> Dict[VertexId, int]:
    """How many times each vertex executed its critical section from action
    ``start`` onwards."""
    counts: Dict[VertexId, int] = {v: 0 for v in protocol.graph.vertices}
    for index, vertex in critical_section_events(execution, protocol):
        if index >= start:
            counts[vertex] += 1
    return counts


class MutualExclusionSpec(Specification):
    """``spec_ME`` for a privilege-aware protocol."""

    name = "spec_ME"

    def __init__(self, protocol: Protocol) -> None:
        if not isinstance(protocol, PrivilegeAware):
            raise SpecificationError(
                "MutualExclusionSpec requires a protocol with a privilege predicate"
            )
        self._protocol = protocol
        # Vectorized safety fast path: PrivilegeAware protocols with an
        # array-state privilege counter (SSME, Dijkstra) let is_safe avoid
        # the O(n) per-vertex scan when handed a live ArrayStateView.
        self._count_array = getattr(protocol, "privileged_count_array", None)

    # ------------------------------------------------------------------ #
    # Safety: at most one privileged vertex per configuration
    # ------------------------------------------------------------------ #
    def is_safe(self, configuration: Configuration, protocol: Protocol) -> bool:
        del protocol
        if self._count_array is not None and hasattr(configuration, "raw_states"):
            # Live ArrayStateView from an array backend: one vectorized
            # count instead of n mapping lookups per observed step.
            return self._count_array(configuration) <= 1
        privileged = 0
        for vertex in self._protocol.graph.vertices:
            if self._protocol.is_privileged(configuration, vertex):
                privileged += 1
                if privileged > 1:
                    return False
        return True

    def privileged_count(self, configuration: Configuration) -> int:
        """Number of privileged vertices (0 or 1 in safe configurations)."""
        return len(self._protocol.privileged_vertices(configuration))

    def safe_rows(self, rows, order, protocol: Protocol):
        """Batch safety for the exact checker: at most one privileged vertex
        per row, through the protocol's ``privileged_rows`` capability
        (``None`` — per-configuration fallback — when it lacks one)."""
        del protocol
        privileged = self._protocol.privileged_rows(rows, order)
        if privileged is None:
            return None
        return privileged.sum(axis=1) <= 1

    # ------------------------------------------------------------------ #
    # Liveness: every vertex executes its critical section in the window
    # ------------------------------------------------------------------ #
    def check_liveness(
        self, execution: Execution, protocol: Protocol, start: int = 0
    ) -> bool:
        del protocol
        executed: Set[VertexId] = set()
        for index, vertex in critical_section_events(execution, self._protocol):
            if index >= start:
                executed.add(vertex)
        return executed >= set(self._protocol.graph.vertices)
