"""SSME — the Speculatively Stabilizing Mutual Exclusion protocol (Algorithm 1).

SSME is the paper's main contribution.  It is *exactly* the asynchronous
unison protocol run with a particular clock and a privilege predicate layered
on top (the predicate never interferes with the rules):

* clock: ``cherry(alpha, K)`` with ``alpha = n`` and
  ``K = (2n - 1)(diam(g) + 1) + 2``;
* privilege: ``privileged_v  ≡  r_v = 2n + 2·diam(g)·id_v``.

The clock is large enough that, once the unison has stabilized (every pair
of registers within distance ``diam(g)``), at most one vertex can sit on a
privileged value — that is Theorem 1.  Because the privileged values are
placed ``2·diam(g)`` apart starting at ``2n``, the synchronous stabilization
time collapses to ``⌈diam(g)/2⌉`` (Theorem 2), which is optimal (Theorem 4).

Identities: the paper assumes ``ID = {0, ..., n-1}``.  The class accepts any
connected graph; if its vertex labels are not already ``0..n-1`` they are
mapped to identities through their sorted order.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Optional

from ..core import PrivilegeAware
from ..core.state import Configuration
from ..exceptions import ProtocolError
from ..graphs import Graph, diameter
from ..types import VertexId
from ..unison import AsynchronousUnison

__all__ = ["SSME", "ssme_clock_size", "ssme_privileged_value"]

#: Largest ``n`` at which a supplied ``diam`` is cross-checked against the
#: O(n²) exact diameter; larger instances trust the caller's constant.
_DIAM_VALIDATION_LIMIT = 512


def ssme_clock_size(n: int, diam: int) -> int:
    """The clock cycle length ``K = (2n - 1)(diam + 1) + 2`` of Algorithm 1."""
    if n < 1:
        raise ProtocolError("n must be >= 1")
    if diam < 0:
        raise ProtocolError("diam must be >= 0")
    return (2 * n - 1) * (diam + 1) + 2


def ssme_privileged_value(n: int, diam: int, identity: int) -> int:
    """The privileged clock value ``2n + 2·diam·id`` of vertex ``identity``."""
    if not 0 <= identity < n:
        raise ProtocolError(f"identity {identity} outside 0..{n - 1}")
    return 2 * n + 2 * diam * identity


class SSME(AsynchronousUnison, PrivilegeAware):
    """Speculatively Stabilizing Mutual Exclusion (Algorithm 1).

    Parameters
    ----------
    graph:
        Any connected communication graph (no ring assumption, unlike
        Dijkstra's protocol).
    diam:
        The diameter of ``graph``.  The paper treats it as a known constant
        of the system; when omitted it is computed from the graph.  A
        supplied value is cross-checked against the computed diameter only
        up to ``n = 512`` — beyond that the O(n²) BFS sweep would dominate
        construction, so the caller's constant is trusted (exactly the
        paper's stance: ``diam(g)`` is a system parameter, not something
        the protocol measures).

    Examples
    --------
    >>> from repro.graphs import ring_graph
    >>> protocol = SSME(ring_graph(5))
    >>> protocol.alpha, protocol.K
    (5, 29)
    >>> protocol.privileged_value(0)
    10
    """

    name = "SSME"

    #: Privileged values are spaced by vertex *identity* (``2n + 2·diam·id``),
    #: so automorphisms do not map executions of the mutual-exclusion layer
    #: to executions: the unison superclass's symmetry does not survive.
    vertex_symmetric = False

    def __init__(self, graph: Graph, diam: Optional[int] = None) -> None:
        computed_diam = diameter(graph) if diam is None else diam
        if diam is not None and graph.n <= _DIAM_VALIDATION_LIMIT:
            actual = diameter(graph)
            if diam != actual:
                raise ProtocolError(
                    f"supplied diameter {diam} does not match the graph "
                    f"diameter {actual}"
                )
        elif diam is not None and diam < 0:
            raise ProtocolError(f"diameter must be >= 0, got {diam}")
        n = graph.n
        # alpha = n >= hole(g) - 2 and K > n >= cyclo(g) always hold, so the
        # expensive exact parameter validation of the unison base class is
        # unnecessary here.
        super().__init__(
            graph,
            alpha=n,
            K=ssme_clock_size(n, computed_diam),
            validate_parameters=False,
        )
        self._diam = computed_diam
        self._identities = self._assign_identities(graph)
        self._privileged_values: Dict[VertexId, int] = {
            vertex: ssme_privileged_value(n, computed_diam, identity)
            for vertex, identity in self._identities.items()
        }
        # (vertex_order, pv row vector) cache for privileged_count_array.
        self._pv_rows = None

    @staticmethod
    def _assign_identities(graph: Graph) -> Dict[VertexId, int]:
        labels = list(graph.vertices)
        if all(isinstance(v, int) for v in labels) and set(labels) == set(range(graph.n)):
            return {v: int(v) for v in labels}
        return {v: index for index, v in enumerate(sorted(labels, key=repr))}

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    @property
    def diam(self) -> int:
        """The diameter constant ``diam(g)`` baked into the protocol."""
        return self._diam

    def identity(self, vertex: VertexId) -> int:
        """The identity ``id_v ∈ {0, ..., n-1}`` of ``vertex``."""
        try:
            return self._identities[vertex]
        except KeyError:
            raise ProtocolError(f"unknown vertex {vertex!r}") from None

    def vertex_with_identity(self, identity: int) -> VertexId:
        """The vertex whose identity is ``identity``."""
        for vertex, vid in self._identities.items():
            if vid == identity:
                return vertex
        raise ProtocolError(f"no vertex has identity {identity}")

    def privileged_value(self, vertex: VertexId) -> int:
        """The clock value at which ``vertex`` is privileged."""
        try:
            return self._privileged_values[vertex]
        except KeyError:
            raise ProtocolError(f"unknown vertex {vertex!r}") from None

    def synchronous_stabilization_bound(self) -> int:
        """The Theorem 2 bound ``⌈diam(g)/2⌉``."""
        return math.ceil(self._diam / 2)

    def unfair_stabilization_bound(self) -> int:
        """The Theorem 3 bound ``2·diam·n³ + (alpha+1)·n² + (alpha - 2·diam)·n``
        (with ``alpha = n``), an upper bound on the stabilization time under
        the unfair distributed daemon."""
        n = self.graph.n
        return 2 * self._diam * n**3 + (self.alpha + 1) * n**2 + (self.alpha - 2 * self._diam) * n

    # ------------------------------------------------------------------ #
    # Privilege
    # ------------------------------------------------------------------ #
    def is_privileged(self, configuration: Configuration, vertex: VertexId) -> bool:
        """``privileged_v ≡ (r_v = 2n + 2·diam(g)·id_v)``."""
        return configuration[vertex] == self.privileged_value(vertex)

    def privileged_vertices(self, configuration: Configuration) -> FrozenSet[VertexId]:
        """All privileged vertices of ``configuration``."""
        return frozenset(
            v
            for v in self.graph.vertices
            if configuration[v] == self._privileged_values[v]
        )

    def privileged_count_array(self, view) -> int:
        """Number of privileged vertices of a live array-state view.

        Vectorized equivalent of ``len(privileged_vertices(view))`` for the
        :class:`~repro.core.vector.ArrayStateView` the array backends hand
        to ``stop_when`` predicates under light traces — one whole-array
        comparison against the cached per-row privileged values instead of
        ``n`` mapping lookups.
        """
        import numpy as np

        order = view.vertex_order
        cached = self._pv_rows
        if cached is None or cached[0] is not order:
            pv = np.fromiter(
                (self._privileged_values[v] for v in order),
                dtype=np.int64,
                count=len(order),
            )
            self._pv_rows = cached = (order, pv)
        return int(np.count_nonzero(view.raw_states()[:, 0] == cached[1]))

    def privileged_rows(self, rows, order):
        """Batch privilege matrix for the exact checker: a vertex is
        privileged exactly when its register holds its privileged value."""
        import numpy as np

        pv = np.fromiter(
            (self._privileged_values[v] for v in order),
            dtype=np.int64,
            count=len(order),
        )
        return rows[:, :, 0] == pv
