"""Parameterized SSME variants for ablation studies.

Algorithm 1 fixes two design choices:

* the clock size ``K = (2n - 1)(diam(g) + 1) + 2``, and
* the privileged values ``2n + spacing·id_v`` with ``spacing = 2·diam(g)``.

Both are exactly what make Theorems 1 and 2 work: the spacing keeps any two
privileged values further apart (on the clock circle) than the maximal
register drift ``diam(g)`` inside the legitimate set ``Γ₁``, and the clock
is just large enough to fit ``n`` such values plus the safety margin.

:class:`ParametricClockMutex` exposes the spacing and the clock size as
parameters so the ablation experiment (E7) can demonstrate what breaks when
they are chosen smaller: with ``spacing <= diam(g)`` there are legitimate
configurations in which two vertices are privileged simultaneously, i.e. the
protocol stops being a mutual-exclusion protocol at all.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core import PrivilegeAware
from ..core.state import Configuration
from ..exceptions import ProtocolError
from ..graphs import Graph, diameter
from ..types import VertexId
from ..unison import AsynchronousUnison

__all__ = ["ParametricClockMutex", "minimal_safe_spacing", "minimal_safe_clock_size"]


def minimal_safe_spacing(diam: int) -> int:
    """The smallest privileged-value spacing that guarantees safety in Γ₁.

    Inside Γ₁ two registers can drift by up to ``diam`` positions, so two
    privileged values must sit strictly more than ``diam`` apart: the
    minimal safe spacing is ``diam + 1``.  The paper uses ``2·diam`` (with a
    first value of ``2n``), which additionally makes the ``⌈diam/2⌉``
    synchronous bound go through.
    """
    return diam + 1


def minimal_safe_clock_size(n: int, diam: int, spacing: int) -> int:
    """The smallest clock size that fits ``n`` privileged values with the
    given spacing while keeping the wrap-around gap larger than ``diam``."""
    first = 2 * n
    last = first + spacing * (n - 1)
    return last + diam + 1


class ParametricClockMutex(AsynchronousUnison, PrivilegeAware):
    """An SSME-like protocol with configurable privilege spacing and clock size.

    With ``spacing = 2·diam(g)`` and the default clock size this *is* SSME;
    smaller values reproduce the failure modes the paper's parameter choice
    avoids and are only meant for the ablation experiment and for tests.
    """

    name = "parametric-clock-mutex"

    #: Identity-spaced privileged values, like SSME: not automorphism-
    #: equivariant despite the symmetric unison superclass.
    vertex_symmetric = False

    def __init__(
        self,
        graph: Graph,
        spacing: Optional[int] = None,
        K: Optional[int] = None,
        first_value: Optional[int] = None,
        identities: Optional[Dict[VertexId, int]] = None,
    ) -> None:
        n = graph.n
        diam = diameter(graph)
        spacing = spacing if spacing is not None else 2 * diam
        if spacing < 1:
            raise ProtocolError("privilege spacing must be at least 1")
        first_value = first_value if first_value is not None else 2 * n
        if first_value < 1:
            raise ProtocolError("the first privileged value must be positive")
        K = K if K is not None else minimal_safe_clock_size(n, diam, spacing)
        last_value = first_value + spacing * (n - 1)
        if last_value >= K:
            raise ProtocolError(
                f"clock size K={K} cannot fit {n} privileged values spaced by "
                f"{spacing} starting at {first_value}"
            )
        super().__init__(graph, alpha=n, K=K, validate_parameters=False)
        self._diam = diam
        self._spacing = spacing
        if identities is not None:
            if set(identities.keys()) != set(graph.vertices) or sorted(
                identities.values()
            ) != list(range(n)):
                raise ProtocolError(
                    "identities must be a bijection from the vertices to 0..n-1"
                )
            self._identities = dict(identities)
        elif all(isinstance(v, int) for v in graph.vertices) and set(graph.vertices) == set(
            range(n)
        ):
            self._identities = {v: int(v) for v in graph.vertices}
        else:
            self._identities = {
                vertex: index
                for index, vertex in enumerate(sorted(graph.vertices, key=repr))
            }
        self._privileged_values: Dict[VertexId, int] = {
            vertex: first_value + spacing * identity
            for vertex, identity in self._identities.items()
        }

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    @property
    def diam(self) -> int:
        """The graph diameter."""
        return self._diam

    @property
    def spacing(self) -> int:
        """The distance between consecutive privileged values."""
        return self._spacing

    def privileged_value(self, vertex: VertexId) -> int:
        """The clock value at which ``vertex`` is privileged."""
        try:
            return self._privileged_values[vertex]
        except KeyError:
            raise ProtocolError(f"unknown vertex {vertex!r}") from None

    # ------------------------------------------------------------------ #
    # Privilege and safety analysis
    # ------------------------------------------------------------------ #
    def is_privileged(self, configuration: Configuration, vertex: VertexId) -> bool:
        return configuration[vertex] == self.privileged_value(vertex)

    def privileged_rows(self, rows, order):
        """Batch privilege matrix for the exact checker (see
        :meth:`repro.mutex.SSME.privileged_rows`)."""
        import numpy as np

        pv = np.fromiter(
            (self._privileged_values[v] for v in order),
            dtype=np.int64,
            count=len(order),
        )
        return rows[:, :, 0] == pv

    def guarantees_safety_in_gamma1(self) -> bool:
        """Whether the parameters make at most one privilege possible in Γ₁.

        This is the analytical core of Theorem 1: inside Γ₁ the registers of
        two vertices ``u`` and ``v`` can drift by up to ``dist(g, u, v)``,
        so safety holds if and only if every two privileged values are
        strictly further apart than the distance between their vertices.
        The paper's choice (spacing ``2·diam`` on a clock of size
        ``(2n-1)(diam+1)+2``) keeps them further apart than ``diam(g)``,
        which is sufficient for every pair.
        """
        return self.conflicting_pair() is None

    def conflicting_pair(self) -> Optional[Tuple[VertexId, VertexId]]:
        """A pair of distinct vertices whose privileged values are at most
        ``dist(g, u, v)`` apart on the clock circle (``None`` when the
        parameters are safe)."""
        items = sorted(self._privileged_values.items(), key=lambda kv: repr(kv[0]))
        for i, (u, a) in enumerate(items):
            dist_u = self.graph.bfs_distances(u)
            for v, b in items[i + 1 :]:
                if self.clock.distance(a, b) <= dist_u[v]:
                    return u, v
        return None

    def unsafe_legitimate_configuration(self) -> Configuration:
        """A configuration of Γ₁ with two simultaneously privileged vertices.

        Only exists when :meth:`guarantees_safety_in_gamma1` is False.  It is
        built by putting the conflicting pair ``(u, v)`` on their privileged
        values and letting every other register follow ``u``'s value shifted
        by (at most) its distance to ``u`` in the direction of ``v``'s value:
        neighbouring registers then drift by at most one, so the
        configuration is legitimate, yet both ``u`` and ``v`` are privileged.
        """
        pair = self.conflicting_pair()
        if pair is None:
            raise ProtocolError(
                "the parameters are safe: no unsafe legitimate configuration exists"
            )
        u, v = pair
        value_u = self.privileged_value(u)
        value_v = self.privileged_value(v)
        dist_u = self.graph.bfs_distances(u)
        gap = self.clock.distance(value_u, value_v)
        direction = 1 if (value_v - value_u) % self.K == gap else -1
        assignment: Dict[VertexId, int] = {
            w: (value_u + direction * min(dist_u[w], gap)) % self.K
            for w in self.graph.vertices
        }
        configuration = self.configuration(assignment)
        if not self.is_legitimate(configuration):
            raise ProtocolError("failed to build a legitimate conflicting configuration")
        if not (self.is_privileged(configuration, u) and self.is_privileged(configuration, v)):
            raise ProtocolError("constructed configuration lost a privilege")
        return configuration
