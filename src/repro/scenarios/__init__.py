"""Fault campaigns: recurring fault schedules, topology churn, registry.

The scenario layer turns the one-shot fault models of
:mod:`repro.experiments.faults` into *campaigns*: named, reproducible
workloads where faults recur on a schedule and the topology itself churns
mid-run, with safety streamed through
:class:`~repro.core.SafetyMonitor` into recovery metrics.

- :mod:`repro.scenarios.events` — declarative :class:`FaultSchedule` /
  :class:`ChurnEvent` streams, compiled into a fully seeded timeline;
- :mod:`repro.scenarios.campaign` — :func:`run_campaign` executes a
  timeline against any engine backend (``reference`` is the from-scratch
  oracle; ``incremental``/``vector`` absorb faults through their dirty-set
  machinery and rebuild graph indices/codecs on churn);
- :mod:`repro.scenarios.registry` — the named :class:`Scenario` registry
  feeding the E9 driver's :class:`~repro.jobs.JobSpec` grid and the
  ``scenarios list|run`` CLI.

See ``docs/scenarios.md`` for the event-stream model, schedule semantics,
the registry naming contract and the recovery-metric definitions.
"""

from .campaign import (
    CampaignResult,
    EventOutcome,
    PROTOCOL_FAMILIES,
    SafetyTimeline,
    build_protocol,
    build_specification,
    campaign_stabilization_bound,
    run_campaign,
    transfer_configuration,
)
from .events import (
    CHURN_KINDS,
    ChurnEvent,
    CompiledChurn,
    CompiledEvent,
    CompiledFault,
    FaultSchedule,
    MIN_CHURN_VERTICES,
    SCHEDULE_KINDS,
    apply_churn_to_graph,
    compile_events,
)
from .registry import (
    SCENARIO_TIERS,
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    run_campaign_from_params,
    run_scenario,
    scenario_names,
)

__all__ = [
    "CHURN_KINDS",
    "CampaignResult",
    "ChurnEvent",
    "CompiledChurn",
    "CompiledEvent",
    "CompiledFault",
    "EventOutcome",
    "FaultSchedule",
    "MIN_CHURN_VERTICES",
    "PROTOCOL_FAMILIES",
    "SCENARIOS",
    "SCENARIO_TIERS",
    "SCHEDULE_KINDS",
    "SafetyTimeline",
    "Scenario",
    "apply_churn_to_graph",
    "build_protocol",
    "build_specification",
    "campaign_stabilization_bound",
    "compile_events",
    "get_scenario",
    "list_scenarios",
    "run_campaign",
    "run_campaign_from_params",
    "run_scenario",
    "scenario_names",
    "transfer_configuration",
]
