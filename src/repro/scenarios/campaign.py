"""Executing a compiled event timeline against the simulation engines.

:func:`run_campaign` replays a compiled fault/churn timeline
(:func:`~repro.scenarios.events.compile_events`) over a run of ``horizon``
daemon steps, split into *segments* between event boundaries:

- at a **fault** boundary the current configuration is corrupted in place
  via :func:`~repro.experiments.faults.apply_fault` and the same engine
  simply keeps running — the incremental and vector engines absorb the
  corruption through their ordinary dirty-set/array machinery because each
  segment is a fresh ``run()`` from the faulted configuration;
- at a **churn** boundary the graph is mutated, the protocol is rebuilt on
  the new graph (which re-derives clock parameters and rebuilds the
  ``GraphIndex``/array codecs inside the engines), and the old
  configuration is *transferred*: registers that are still valid under the
  rebuilt protocol are kept, fresh or invalidated ones are redrawn from
  the event's pre-drawn seed.

Safety is streamed through a :class:`~repro.core.SafetyMonitor` per
segment, whose observations feed a run-global :class:`SafetyTimeline` with
exactly one verdict per step index ``0 .. horizon``.  The timeline yields
the campaign metrics: per-event ``recovery_time``, overall
``availability`` and the longest unsafe window.

Every stochastic input (initial configuration, per-segment daemon seeds,
per-event seeds) is pre-drawn from the campaign seed, so the result is a
pure function of the arguments — identical across ``engine="reference"``
(the from-scratch oracle), ``"incremental"`` and ``"vector"``, across
sequential and ``workers=N`` dispatch, and across cache hits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import SafetyMonitor, Simulator, make_daemon
from ..core.state import Configuration
from ..exceptions import ExperimentError, ProtocolError
from ..graphs import Graph, diameter
from .events import (
    ChurnEvent,
    CompiledChurn,
    CompiledEvent,
    FaultSchedule,
    apply_churn_to_graph,
    compile_events,
)

__all__ = [
    "PROTOCOL_FAMILIES",
    "build_protocol",
    "build_specification",
    "campaign_stabilization_bound",
    "transfer_configuration",
    "SafetyTimeline",
    "EventOutcome",
    "CampaignResult",
    "run_campaign",
]

_SEED_BOUND = 2**63


def _make_ssme(graph: Graph):
    from ..mutex import SSME

    return SSME(graph)


def _make_unison(graph: Graph):
    from ..unison import AsynchronousUnison

    return AsynchronousUnison(graph)


def _make_dijkstra(graph: Graph):
    from ..mutex import DijkstraTokenRing

    return DijkstraTokenRing(graph)


def _make_bfs(graph: Graph):
    from ..baselines import BfsSpanningTree

    return BfsSpanningTree(graph)


def _make_matching(graph: Graph):
    from ..baselines import MaximalMatching

    return MaximalMatching(graph)


def _spec_mutex(protocol):
    from ..mutex import MutualExclusionSpec

    return MutualExclusionSpec(protocol)


def _spec_unison(protocol):
    from ..unison import AsynchronousUnisonSpec

    return AsynchronousUnisonSpec(protocol)


def _spec_bfs(protocol):
    from ..baselines import BfsTreeSpec

    return BfsTreeSpec(protocol)


def _spec_matching(protocol):
    from ..baselines import MaximalMatchingSpec

    return MaximalMatchingSpec(protocol)


#: Protocol families campaigns can run: short name -> (protocol factory,
#: specification factory).  The factory is re-invoked on every churn event
#: — rebuilding the protocol on the mutated graph is what re-derives clock
#: parameters (K, alpha) and forces the engines to rebuild their
#: ``GraphIndex`` and array codecs.
PROTOCOL_FAMILIES: Dict[str, Tuple[Callable[[Graph], Any], Callable[[Any], Any]]] = {
    "ssme": (_make_ssme, _spec_mutex),
    "unison": (_make_unison, _spec_unison),
    "dijkstra": (_make_dijkstra, _spec_mutex),
    "bfs": (_make_bfs, _spec_bfs),
    "matching": (_make_matching, _spec_matching),
}


def build_protocol(family: str, graph: Graph):
    """Instantiate the named protocol family on ``graph``."""
    try:
        factory, _ = PROTOCOL_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_FAMILIES))
        raise ExperimentError(
            f"unknown protocol family {family!r}; known: {known}"
        ) from None
    return factory(graph)


def build_specification(family: str, protocol):
    """The safety specification campaigns monitor for ``family``."""
    try:
        _, spec_factory = PROTOCOL_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_FAMILIES))
        raise ExperimentError(
            f"unknown protocol family {family!r}; known: {known}"
        ) from None
    return spec_factory(protocol)


def campaign_stabilization_bound(protocol) -> int:
    """The bound adversarial schedules are timed against.

    SSME certifies ``ceil(diam/2)`` via
    ``synchronous_stabilization_bound``; protocols without a certified
    bound get the coarse ``3n`` heuristic (comfortably above Dijkstra's
    ``n``-step synchronous stabilization), which only shapes the *timing*
    of adversarial firings, never correctness.
    """
    bound = getattr(protocol, "synchronous_stabilization_bound", None)
    if callable(bound):
        return int(bound())
    return 3 * protocol.graph.n


def transfer_configuration(
    old: Configuration, protocol, rng: random.Random
) -> Configuration:
    """Carry a configuration across a protocol rebuild after churn.

    Surviving vertices keep their register when the rebuilt protocol still
    accepts it (``validate_state``); joined vertices and registers
    invalidated by the rebuild (e.g. clock values outside the re-derived
    ``K``) are redrawn from ``rng``.  Vertices are visited in sorted order
    so the draws are reproducible.
    """
    states: Dict[Any, Any] = {}
    for vertex in sorted(protocol.graph.vertices, key=repr):
        if vertex in old:
            state = old[vertex]
            try:
                protocol.validate_state(vertex, state)
            except ProtocolError:
                states[vertex] = protocol.random_state(vertex, rng)
            else:
                states[vertex] = state
        else:
            states[vertex] = protocol.random_state(vertex, rng)
    return protocol.configuration(states)


class SafetyTimeline:
    """One safety verdict per global step index, gaplessly recorded.

    The campaign's segments append verdicts in index order (the monitor's
    gapless contract extends across segments); queries derive the
    recovery metrics.  An *unsafe window* is a maximal run of consecutive
    unsafe indices.
    """

    def __init__(self) -> None:
        self._safe: List[bool] = []

    def record(self, index: int, safe: bool) -> None:
        if index != len(self._safe):
            raise ExperimentError(
                f"timeline recorded index {index} after {len(self._safe) - 1}; "
                "observations must be gapless"
            )
        self._safe.append(bool(safe))

    def __len__(self) -> int:
        return len(self._safe)

    def is_safe_at(self, index: int) -> bool:
        return self._safe[index]

    def availability(self) -> float:
        """Fraction of observed indices that were safe."""
        if not self._safe:
            return 1.0
        return sum(self._safe) / len(self._safe)

    def unsafe_windows(self) -> List[Tuple[int, int]]:
        """Maximal unsafe runs as inclusive ``(start, end)`` index pairs."""
        windows: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for index, safe in enumerate(self._safe):
            if not safe and start is None:
                start = index
            elif safe and start is not None:
                windows.append((start, index - 1))
                start = None
        if start is not None:
            windows.append((start, len(self._safe) - 1))
        return windows

    def longest_unsafe_window(self) -> int:
        """Length (in indices) of the longest unsafe run, 0 if none."""
        return max(
            (end - start + 1 for start, end in self.unsafe_windows()), default=0
        )

    def last_unsafe_in(self, start: int, stop: int) -> Optional[int]:
        """The last unsafe index in ``[start, stop)``, or None."""
        for index in range(min(stop, len(self._safe)) - 1, start - 1, -1):
            if not self._safe[index]:
                return index
        return None


@dataclass(frozen=True)
class EventOutcome:
    """Recovery bookkeeping for one injected event.

    ``recovery_time`` is the number of steps after the event until the
    system is safe *for the rest of the event's observation window* (0
    when the event never broke safety), or None when it was still unsafe
    at the window's last observed index.  The window runs from the event's
    step to the next event (exclusive) or the end of the run.
    """

    step: int
    kind: str  # "fault" | "churn"
    detail: str
    window: int
    recovery_time: Optional[int]

    @property
    def recovered(self) -> bool:
        return self.recovery_time is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "kind": self.kind,
            "detail": self.detail,
            "window": self.window,
            "recovery_time": self.recovery_time,
            "recovered": self.recovered,
        }


def _jsonable(value: Any) -> Any:
    """JSON-able rendering of a vertex or state: primitives pass through,
    structured states (e.g. the matching protocol's ``MatchingState``)
    degrade to their deterministic ``repr`` — the cached result only needs
    a stable, comparable form, not a decodable one."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign run measured, in JSON-able form."""

    protocol_family: str
    daemon: str
    engine: str
    horizon: int
    seed: int
    initial_n: int
    final_n: int
    final_m: int
    events: Tuple[EventOutcome, ...]
    availability: float
    longest_unsafe_window: int
    unsafe_windows: Tuple[Tuple[int, int], ...]
    final_safe: bool
    final_configuration: Tuple[Tuple[Any, Any], ...]
    observed_indices: int

    @property
    def recovered_all(self) -> bool:
        """Did the system recover after every injected event?"""
        return all(event.recovered for event in self.events)

    @property
    def max_recovery(self) -> Optional[int]:
        """The slowest recovery over recovered events (None if no event)."""
        times = [e.recovery_time for e in self.events if e.recovery_time is not None]
        return max(times) if times else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol_family": self.protocol_family,
            "daemon": self.daemon,
            "engine": self.engine,
            "horizon": self.horizon,
            "seed": self.seed,
            "initial_n": self.initial_n,
            "final_n": self.final_n,
            "final_m": self.final_m,
            "events": [event.to_dict() for event in self.events],
            "availability": self.availability,
            "longest_unsafe_window": self.longest_unsafe_window,
            "unsafe_windows": [list(window) for window in self.unsafe_windows],
            "final_safe": self.final_safe,
            "final_configuration": [
                [_jsonable(vertex), _jsonable(state)]
                for vertex, state in self.final_configuration
            ],
            "observed_indices": self.observed_indices,
            "recovered_all": self.recovered_all,
            "max_recovery": self.max_recovery,
        }


def _describe_event(event: CompiledEvent) -> str:
    if isinstance(event, CompiledChurn):
        return f"{event.kind}:{event.target!r}"
    if event.params:
        rendered = ",".join(f"{k}={v!r}" for k, v in event.params)
        return f"{event.model}({rendered})"
    return event.model


def run_campaign(
    protocol_family: str,
    graph: Graph,
    daemon: str,
    horizon: int,
    seed: int,
    schedule: Optional[FaultSchedule] = None,
    fault_model: Optional[str] = None,
    fault_params: Optional[Mapping[str, Any]] = None,
    churn: Sequence[ChurnEvent] = (),
    initial: str = "default",
    engine: str = "auto",
) -> CampaignResult:
    """Run one fault campaign and return its measured result.

    ``initial`` selects the starting configuration: ``"default"`` (the
    protocol's default/legitimate-leaning start), ``"random"`` (an
    arbitrary corrupted start, the self-stabilization reading), or
    ``"adversarial"`` (the lower-bound double-privilege witness — SSME
    only — which is the only way to start an SSME campaign *unsafe*:
    random corruption essentially never plants two privileges).  All
    other arguments mirror :func:`~repro.scenarios.events.compile_events`.
    """
    if horizon < 1:
        raise ExperimentError("horizon must be >= 1")
    if initial not in ("default", "random", "adversarial"):
        raise ExperimentError(
            f"unknown initial mode {initial!r}; known: default, random, adversarial"
        )

    master = random.Random(seed)
    compile_seed = master.randrange(_SEED_BOUND)
    init_seed = master.randrange(_SEED_BOUND)

    protocol = build_protocol(protocol_family, graph)
    specification = build_specification(protocol_family, protocol)
    bound = campaign_stabilization_bound(protocol)
    events = compile_events(
        graph=graph,
        horizon=horizon,
        seed=compile_seed,
        schedule=schedule,
        fault_model=fault_model,
        fault_params=fault_params,
        churn=churn,
        stabilization_bound=bound,
    )
    events_at: Dict[int, List[CompiledEvent]] = {}
    for event in events:
        events_at.setdefault(event.step, []).append(event)
    boundaries = sorted(events_at)
    segment_starts = [0] + boundaries
    segment_ends = boundaries + [horizon]
    segment_seeds = [master.randrange(_SEED_BOUND) for _ in segment_starts]

    # Imported lazily to keep repro.scenarios importable without touching
    # repro.experiments (whose package init imports the E9 driver, which
    # imports this package).
    from ..experiments.faults import apply_fault

    if initial == "default":
        current = protocol.default_configuration()
    elif initial == "random":
        current = protocol.random_configuration(random.Random(init_seed))
    else:
        # The planted double-privilege witness (lower-bound construction):
        # raises ConstructionError for protocols without per-vertex
        # privileged values, which ExperimentError-wrapping keeps clear.
        from ..lowerbound import immediate_double_privilege_configuration

        current = immediate_double_privilege_configuration(protocol)

    timeline = SafetyTimeline()
    cached_diam: Optional[int] = None

    for segment_index, (start, end) in enumerate(zip(segment_starts, segment_ends)):
        if segment_index > 0:
            # Inject this boundary's events (churn first — compile_events
            # ordered them) into the configuration the last segment ended on.
            for event in events_at[start]:
                if isinstance(event, CompiledChurn):
                    mutated = apply_churn_to_graph(
                        protocol.graph, event.kind, event.target
                    )
                    protocol = build_protocol(protocol_family, mutated)
                    specification = build_specification(protocol_family, protocol)
                    current = transfer_configuration(
                        current, protocol, random.Random(event.seed)
                    )
                    cached_diam = None
                else:
                    params = dict(event.params)
                    if (
                        event.model == "localized-burst"
                        and "radius" not in params
                        and "diam" not in params
                    ):
                        # Thread the diameter once per topology version so
                        # recurring bursts don't re-run the O(n^2) sweep.
                        if cached_diam is None:
                            cached_diam = diameter(protocol.graph)
                        params["diam"] = cached_diam
                    current = apply_fault(
                        event.model,
                        protocol,
                        current,
                        random.Random(event.seed),
                        params=params,
                    )

        segment_length = end - start
        is_final = segment_index == len(segment_starts) - 1
        # Local indices recorded by THIS segment: a non-final segment stops
        # short of its boundary index — the post-event configuration at
        # that global index is recorded by the next segment as its local 0
        # — so every global index gets exactly one verdict.
        limit = segment_length + 1 if is_final else segment_length

        cell: Dict[str, SafetyMonitor] = {}
        spec_now = specification

        def observe(configuration, index, _cell=cell, _spec=spec_now, _offset=start, _limit=limit):
            if index < _limit:
                timeline.record(
                    _offset + index, _cell["monitor"].is_currently_safe(_spec)
                )
            return False

        monitor = SafetyMonitor([spec_now], protocol, stop_when=observe)
        cell["monitor"] = monitor

        simulator = Simulator(
            protocol,
            make_daemon(daemon),
            rng=random.Random(segment_seeds[segment_index]),
            engine=engine,
            trace="light",
        )
        execution = simulator.run(current, max_steps=segment_length, stop_when=monitor.observe)
        recorded = min(execution.steps + 1, limit)
        if recorded < limit:
            # Early-terminal segment: the configuration no longer moves, so
            # its safety verdict holds for every remaining index.
            terminal_safe = specification.is_safe(execution.final, protocol)
            for local in range(recorded, limit):
                timeline.record(start + local, terminal_safe)
        current = execution.final

    # Per-event recovery against the timeline.
    next_boundary = {
        boundary: (boundaries[position + 1] if position + 1 < len(boundaries) else None)
        for position, boundary in enumerate(boundaries)
    }
    outcomes: List[EventOutcome] = []
    for event in events:
        window_stop = next_boundary[event.step]
        stop = len(timeline) if window_stop is None else window_stop
        last_unsafe = timeline.last_unsafe_in(event.step, stop)
        if last_unsafe is None:
            recovery: Optional[int] = 0
        elif last_unsafe == stop - 1:
            recovery = None
        else:
            recovery = last_unsafe + 1 - event.step
        outcomes.append(
            EventOutcome(
                step=event.step,
                kind="churn" if isinstance(event, CompiledChurn) else "fault",
                detail=_describe_event(event),
                window=stop - event.step,
                recovery_time=recovery,
            )
        )

    final_graph = protocol.graph
    return CampaignResult(
        protocol_family=protocol_family,
        daemon=daemon,
        engine=engine,
        horizon=horizon,
        seed=seed,
        initial_n=graph.n,
        final_n=final_graph.n,
        final_m=final_graph.m,
        events=tuple(outcomes),
        availability=timeline.availability(),
        longest_unsafe_window=timeline.longest_unsafe_window(),
        unsafe_windows=tuple(timeline.unsafe_windows()),
        final_safe=timeline.is_safe_at(len(timeline) - 1),
        final_configuration=tuple(
            sorted(current.items(), key=lambda pair: repr(pair[0]))
        ),
        observed_indices=len(timeline),
    )
