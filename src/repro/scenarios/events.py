"""Fault schedules and topology churn as a deterministic event stream.

One-shot fault models (:mod:`repro.experiments.faults`) answer "how fast
does the protocol recover from one corruption?".  Fault *campaigns* answer
the production-shaped question: what happens when faults recur — periodic
glitches, correlated bursts, Poisson background noise, or an adversary that
times the next fault exactly when the stabilization bound says recovery has
just completed — while the topology itself churns (vertices joining and
leaving, links appearing and failing) mid-run.

This module defines the *declarative* half of the campaign layer:

- :class:`FaultSchedule` — when the scenario's fault model fires over a
  run of ``horizon`` steps;
- :class:`ChurnEvent` — a topology mutation pinned to a step;
- :func:`compile_events` — the bridge from declarative schedules to a
  concrete, fully seeded event timeline (:class:`CompiledFault` /
  :class:`CompiledChurn`).

Compilation resolves every stochastic choice **up front** from a single
seed: fire steps, per-event RNG seeds, and concrete churn targets (which
vertex leaves, which edge appears) chosen against the *evolving* graph
under a connectivity-preservation rule.  The executor
(:mod:`repro.scenarios.campaign`) then merely replays the timeline, so a
campaign is a pure function of ``(scenario fields, seed)`` — the property
the job cache and the ``workers=N`` byte-identity guarantee rest on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ExperimentError
from ..graphs import Graph
from ..types import VertexId

__all__ = [
    "SCHEDULE_KINDS",
    "CHURN_KINDS",
    "MIN_CHURN_VERTICES",
    "FaultSchedule",
    "ChurnEvent",
    "CompiledFault",
    "CompiledChurn",
    "CompiledEvent",
    "compile_events",
    "apply_churn_to_graph",
]

#: The recurrence shapes a schedule can take.
SCHEDULE_KINDS = ("one-shot", "periodic", "burst", "poisson", "adversarial")

#: The topology mutations churn can request.
CHURN_KINDS = ("add-vertex", "remove-vertex", "add-edge", "remove-edge")

#: ``remove-vertex`` never shrinks a graph below this size: the protocols'
#: structural invariants (clock parameter constraints, ring shape) degrade
#: at n <= 2 and a campaign that deletes the whole system measures nothing.
MIN_CHURN_VERTICES = 3

_SEED_BOUND = 2**63


@dataclass(frozen=True)
class FaultSchedule:
    """When a scenario's fault model fires, as a function of the horizon.

    ``kind`` selects the recurrence shape:

    - ``"one-shot"`` — a single fault at ``offset``;
    - ``"periodic"`` — faults at ``offset, offset+period, ...``;
    - ``"burst"`` — like periodic, but each firing is a run of
      ``burst_size`` faults ``burst_spacing`` steps apart (a rack browning
      out several times in quick succession);
    - ``"poisson"`` — an independent per-step firing probability ``rate``
      from ``offset`` on (memoryless background noise);
    - ``"adversarial"`` — the next fault lands exactly when the protocol's
      stabilization bound says recovery has *just* completed: firings at
      ``offset, offset+bound, offset+2*bound, ...`` where ``bound`` is the
      certified (or heuristic) stabilization bound supplied at compile
      time.  This is the worst admissible recurring timing that still
      leaves room to recover between faults.

    ``count`` optionally caps the total number of firings.  All fire steps
    are restricted to ``1 <= step < horizon`` — step 0 is the initial
    configuration (initial corruption is the *initial* workload's job, not
    the schedule's) and a fault at the final index would be injected with
    no observation window to recover in.
    """

    kind: str
    offset: int = 1
    period: Optional[int] = None
    burst_size: int = 3
    burst_spacing: int = 1
    rate: Optional[float] = None
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            known = ", ".join(SCHEDULE_KINDS)
            raise ExperimentError(
                f"unknown schedule kind {self.kind!r}; known: {known}"
            )
        if self.offset < 1:
            raise ExperimentError("schedule offset must be >= 1 (step 0 is initial)")
        if self.kind in ("periodic", "burst"):
            if self.period is None or self.period < 1:
                raise ExperimentError(
                    f"{self.kind} schedule needs period >= 1, got {self.period!r}"
                )
        if self.kind == "burst":
            if self.burst_size < 1 or self.burst_spacing < 1:
                raise ExperimentError(
                    "burst schedule needs burst_size >= 1 and burst_spacing >= 1"
                )
        if self.kind == "poisson":
            if self.rate is None or not (0.0 < self.rate <= 1.0):
                raise ExperimentError(
                    f"poisson schedule needs a rate in (0, 1], got {self.rate!r}"
                )
        if self.count is not None and self.count < 1:
            raise ExperimentError("count must be >= 1 when given")

    def fire_steps(
        self,
        horizon: int,
        rng: random.Random,
        stabilization_bound: Optional[int] = None,
    ) -> Tuple[int, ...]:
        """The sorted, de-duplicated steps at which the schedule fires.

        Only the ``"poisson"`` kind consumes ``rng``; the others are
        arithmetic in the schedule's parameters (and, for
        ``"adversarial"``, in ``stabilization_bound``).
        """
        if horizon < 1:
            raise ExperimentError("horizon must be >= 1")
        steps: List[int] = []
        if self.kind == "one-shot":
            if self.offset < horizon:
                steps.append(self.offset)
        elif self.kind == "periodic":
            steps.extend(range(self.offset, horizon, self.period))
        elif self.kind == "burst":
            base = self.offset
            while base < horizon:
                steps.extend(
                    fire
                    for fire in range(
                        base,
                        base + self.burst_size * self.burst_spacing,
                        self.burst_spacing,
                    )
                    if fire < horizon
                )
                base += self.period
        elif self.kind == "poisson":
            steps.extend(
                step
                for step in range(self.offset, horizon)
                if rng.random() < self.rate
            )
        else:  # adversarial
            if stabilization_bound is None:
                raise ExperimentError(
                    "adversarial schedule needs a stabilization bound "
                    "(the campaign layer derives one from the protocol)"
                )
            gap = max(1, stabilization_bound)
            steps.extend(range(self.offset, horizon, gap))
        fires = tuple(sorted(set(steps)))
        if self.count is not None:
            fires = fires[: self.count]
        return fires

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able form, round-trippable via :meth:`from_dict`."""
        data: Dict[str, Any] = {"kind": self.kind, "offset": self.offset}
        if self.kind in ("periodic", "burst"):
            data["period"] = self.period
        if self.kind == "burst":
            data["burst_size"] = self.burst_size
            data["burst_spacing"] = self.burst_spacing
        if self.kind == "poisson":
            data["rate"] = self.rate
        if self.count is not None:
            data["count"] = self.count
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        return cls(**dict(data))


@dataclass(frozen=True)
class ChurnEvent:
    """A topology mutation pinned to a step of the campaign timeline.

    The event is declarative: it names the *kind* of mutation, not the
    target.  :func:`compile_events` picks a concrete target against the
    graph as mutated by all earlier churn, under the rule that the graph
    must stay connected (the protocols are only defined on connected
    graphs) — compilation fails fast with an :class:`ExperimentError` when
    no admissible target exists (e.g. ``remove-edge`` on a tree).
    """

    step: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            known = ", ".join(CHURN_KINDS)
            raise ExperimentError(f"unknown churn kind {self.kind!r}; known: {known}")
        if self.step < 1:
            raise ExperimentError("churn step must be >= 1 (step 0 is initial)")

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "kind": self.kind}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnEvent":
        return cls(step=data["step"], kind=data["kind"])


@dataclass(frozen=True)
class CompiledFault:
    """A fault firing with its model, parameters and pre-drawn seed."""

    step: int
    model: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class CompiledChurn:
    """A churn event with its concrete target and pre-drawn seed.

    ``target`` is the vertex to remove, the ``(u, v)`` edge to add or
    remove, or — for ``add-vertex`` — a ``(new_vertex, attachments)``
    pair.  ``seed`` drives the state transfer of the rebuilt protocol
    (fresh or invalidated registers are redrawn from it).
    """

    step: int
    kind: str
    target: Any
    seed: int = 0


CompiledEvent = Union[CompiledFault, CompiledChurn]


def _fresh_vertex_id(graph: Graph) -> VertexId:
    """A vertex identifier not present in ``graph``.

    The stock generators label vertices ``0 .. n-1``, so joins extend the
    integer range; graphs with exotic labels get a string identifier.
    """
    if all(isinstance(v, int) for v in graph.vertices):
        return max(graph.vertices) + 1 if graph.n else 0
    k = 0
    while graph.has_vertex(f"join-{k}"):
        k += 1
    return f"join-{k}"


def _select_churn_target(graph: Graph, kind: str, rng: random.Random) -> Any:
    """Pick a concrete, connectivity-preserving target for ``kind``."""
    if kind == "add-vertex":
        attach_count = min(2, graph.n)
        attachments = tuple(
            rng.sample(sorted(graph.vertices, key=repr), attach_count)
        )
        return (_fresh_vertex_id(graph), attachments)
    if kind == "remove-vertex":
        if graph.n <= MIN_CHURN_VERTICES:
            raise ExperimentError(
                f"remove-vertex churn on a graph of n={graph.n} would shrink "
                f"it below the floor of {MIN_CHURN_VERTICES} vertices"
            )
        candidates = sorted(graph.vertices, key=repr)
        rng.shuffle(candidates)
        for vertex in candidates:
            rest = [u for u in graph.vertices if u != vertex]
            if graph.subgraph(rest).is_connected():
                return vertex
        raise ExperimentError(
            "remove-vertex churn: no vertex can leave without disconnecting "
            "the graph"
        )
    if kind == "add-edge":
        ordered = sorted(graph.vertices, key=repr)
        non_edges = [
            (u, v)
            for i, u in enumerate(ordered)
            for v in ordered[i + 1 :]
            if not graph.has_edge(u, v)
        ]
        if not non_edges:
            raise ExperimentError("add-edge churn: the graph is already complete")
        return tuple(rng.choice(non_edges))
    # remove-edge
    candidates = sorted(graph.edges, key=repr)
    rng.shuffle(candidates)
    for u, v in candidates:
        if graph.without_edge(u, v).is_connected():
            return (u, v)
    raise ExperimentError(
        "remove-edge churn: every edge is a bridge (the graph is a tree)"
    )


def apply_churn_to_graph(graph: Graph, kind: str, target: Any) -> Graph:
    """The mutated graph after one compiled churn event.

    Used both at compile time (to evolve the graph the next event's target
    is chosen against) and at run time (to rebuild the protocol), so the
    two views of the topology timeline cannot diverge.
    """
    if kind == "add-vertex":
        new_vertex, attachments = target
        return Graph(
            list(graph.vertices) + [new_vertex],
            list(graph.edges) + [(new_vertex, a) for a in attachments],
        )
    if kind == "remove-vertex":
        return graph.subgraph(u for u in graph.vertices if u != target)
    if kind == "add-edge":
        return graph.with_edge(*target)
    if kind == "remove-edge":
        return graph.without_edge(*target)
    known = ", ".join(CHURN_KINDS)
    raise ExperimentError(f"unknown churn kind {kind!r}; known: {known}")


def compile_events(
    graph: Graph,
    horizon: int,
    seed: int,
    schedule: Optional[FaultSchedule] = None,
    fault_model: Optional[str] = None,
    fault_params: Optional[Mapping[str, Any]] = None,
    churn: Sequence[ChurnEvent] = (),
    stabilization_bound: Optional[int] = None,
) -> Tuple[CompiledEvent, ...]:
    """Resolve a scenario's declarative events into a seeded timeline.

    Deterministic in ``(graph, horizon, seed, schedule, fault_model,
    fault_params, churn, stabilization_bound)``.  The draw order is fixed
    and documented: (1) schedule fire steps, (2) churn targets in step
    order against the evolving graph, (3) one seed per event over the
    merged timeline.  Changing any input therefore changes the timeline
    in a reproducible way, and equal inputs replay byte-identically.

    The result is sorted by step with churn ordered *before* faults at
    equal steps — a fault at the instant of a topology change corrupts the
    post-churn system, which is the adversarial reading.
    """
    if horizon < 1:
        raise ExperimentError("horizon must be >= 1")
    if schedule is not None and fault_model is None:
        raise ExperimentError("a fault schedule needs a fault_model to fire")
    # Validate the model name and its parameters once, up front, so a
    # misconfigured campaign fails at compile time rather than at its
    # first fault event.  Imported lazily: repro.experiments imports this
    # package (the E9 driver), so a module-level import would be circular.
    from ..experiments.faults import FAULT_MODEL_PARAMS, FAULT_MODELS

    params = dict(fault_params or {})
    if fault_model is not None:
        if fault_model not in FAULT_MODELS:
            known = ", ".join(sorted(FAULT_MODELS))
            raise ExperimentError(
                f"unknown fault model {fault_model!r}; known: {known}"
            )
        unknown = sorted(set(params) - FAULT_MODEL_PARAMS[fault_model])
        if unknown:
            valid = FAULT_MODEL_PARAMS[fault_model]
            accepted = ", ".join(sorted(valid)) if valid else "none"
            raise ExperimentError(
                f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                f"fault model {fault_model!r}; valid parameters: {accepted}"
            )
    elif params:
        raise ExperimentError("fault_params given without a fault_model")

    rng = random.Random(seed)
    fires: Tuple[int, ...] = ()
    if schedule is not None and fault_model is not None:
        fires = schedule.fire_steps(horizon, rng, stabilization_bound)

    evolving = graph
    targeted: List[Tuple[ChurnEvent, Any]] = []
    for event in sorted(churn, key=lambda e: e.step):
        if event.step >= horizon:
            raise ExperimentError(
                f"churn event at step {event.step} is outside the horizon "
                f"{horizon} (events must satisfy 1 <= step < horizon)"
            )
        target = _select_churn_target(evolving, event.kind, rng)
        evolving = apply_churn_to_graph(evolving, event.kind, target)
        targeted.append((event, target))

    frozen_params = tuple(sorted(params.items()))
    events: List[CompiledEvent] = []
    for step in fires:
        events.append(
            CompiledFault(
                step=step,
                model=fault_model,  # type: ignore[arg-type]
                params=frozen_params,
                seed=rng.randrange(_SEED_BOUND),
            )
        )
    for event, target in targeted:
        events.append(
            CompiledChurn(
                step=event.step,
                kind=event.kind,
                target=target,
                seed=rng.randrange(_SEED_BOUND),
            )
        )
    events.sort(key=lambda e: (e.step, 0 if isinstance(e, CompiledChurn) else 1))
    return tuple(events)
