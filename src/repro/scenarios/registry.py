"""The named scenario registry: reproducible campaign workloads.

A :class:`Scenario` is a fully declarative (protocol × topology × daemon ×
fault schedule × churn) workload under a fixed seed.  The **naming
contract**: a scenario name permanently denotes the campaign its fields
describe — changing what a name measures means registering a *new* name
(and the E9 driver bumps its ``CODE_VERSION`` when campaign semantics
change), so cached results and published numbers stay trustworthy.

Scenarios are grouped in two tiers:

- ``"smoke"`` — tiny (n <= 8, horizons of a few dozen steps), run
  end-to-end in CI on every backend and used by the engine-equivalence
  acceptance tests;
- ``"full"`` — the E9 campaign grid (larger graphs, longer horizons, every
  schedule shape and churn mix).

:meth:`Scenario.job_params` flattens a scenario into a plain JSON mapping
embedding *every* field, so a :class:`~repro.jobs.JobSpec` built from it is
a pure function of the scenario definition — a registry edit changes the
spec key and transparently invalidates stale cache entries; the runner
never looks a name up at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ExperimentError
from ..graphs import Graph, make_topology
from .campaign import CampaignResult, run_campaign
from .events import ChurnEvent, FaultSchedule

__all__ = [
    "Scenario",
    "SCENARIOS",
    "SCENARIO_TIERS",
    "scenario_names",
    "list_scenarios",
    "get_scenario",
    "run_scenario",
    "run_campaign_from_params",
]

SCENARIO_TIERS = ("smoke", "full")


@dataclass(frozen=True)
class Scenario:
    """One named, reproducible fault campaign."""

    name: str
    protocol: str
    topology: str
    n: int
    daemon: str
    horizon: int
    seed: int
    fault_model: Optional[str] = None
    fault_params: Mapping[str, Any] = field(default_factory=dict)
    schedule: Optional[FaultSchedule] = None
    churn: Tuple[ChurnEvent, ...] = ()
    initial: str = "default"
    tier: str = "full"
    description: str = ""

    def __post_init__(self) -> None:
        if self.tier not in SCENARIO_TIERS:
            known = ", ".join(SCENARIO_TIERS)
            raise ExperimentError(f"unknown tier {self.tier!r}; known: {known}")
        if self.schedule is not None and self.fault_model is None:
            raise ExperimentError(
                f"scenario {self.name!r} has a schedule but no fault_model"
            )

    def build_graph(self) -> Graph:
        """The scenario's initial topology."""
        return make_topology(self.topology, self.n)

    def job_params(self, engine: str = "auto") -> Dict[str, Any]:
        """Every field of the scenario as one JSON-able mapping.

        This is the entire input of a campaign job: the runner rebuilds
        schedule, churn and graph from it without consulting the registry,
        so cached results can never go stale against a renamed or edited
        scenario silently.
        """
        return {
            "scenario": self.name,
            "protocol": self.protocol,
            "topology": self.topology,
            "n": self.n,
            "daemon": self.daemon,
            "horizon": self.horizon,
            "seed": self.seed,
            "fault_model": self.fault_model,
            "fault_params": dict(self.fault_params),
            "schedule": self.schedule.to_dict() if self.schedule else None,
            "churn": [event.to_dict() for event in self.churn],
            "initial": self.initial,
            "engine": engine,
        }

    def run(self, engine: str = "auto") -> CampaignResult:
        """Execute the campaign this scenario names."""
        return run_campaign(
            protocol_family=self.protocol,
            graph=self.build_graph(),
            daemon=self.daemon,
            horizon=self.horizon,
            seed=self.seed,
            schedule=self.schedule,
            fault_model=self.fault_model,
            fault_params=self.fault_params,
            churn=self.churn,
            initial=self.initial,
            engine=engine,
        )


def run_campaign_from_params(params: Mapping[str, Any]) -> CampaignResult:
    """Run a campaign from a :meth:`Scenario.job_params` mapping.

    The inverse of :meth:`Scenario.job_params`, used by the E9 job runner:
    a pure function of the mapping (plus the engine it names), with no
    registry lookup.
    """
    schedule_data = params.get("schedule")
    churn_data = params.get("churn") or ()
    return run_campaign(
        protocol_family=params["protocol"],
        graph=make_topology(params["topology"], params["n"]),
        daemon=params["daemon"],
        horizon=params["horizon"],
        seed=params["seed"],
        schedule=(
            FaultSchedule.from_dict(schedule_data) if schedule_data else None
        ),
        fault_model=params.get("fault_model"),
        fault_params=dict(params.get("fault_params") or {}),
        churn=tuple(ChurnEvent.from_dict(event) for event in churn_data),
        initial=params.get("initial", "default"),
        engine=params.get("engine", "auto"),
    )


def _register(*scenarios: Scenario) -> Dict[str, Scenario]:
    registry: Dict[str, Scenario] = {}
    for scenario in scenarios:
        if scenario.name in registry:
            raise ExperimentError(f"duplicate scenario name {scenario.name!r}")
        registry[scenario.name] = scenario
    return registry


#: The named campaign workloads.  Smoke-tier scenarios are deliberately
#: tiny: CI runs them end-to-end (with and without NumPy) and the
#: acceptance tests replay each on every engine backend.
SCENARIOS: Dict[str, Scenario] = _register(
    # ---------------------------------------------------------------- smoke
    Scenario(
        name="smoke-ssme-ring8-periodic",
        protocol="ssme",
        topology="ring",
        n=8,
        daemon="sd",
        horizon=60,
        seed=101,
        fault_model="single-vertex",
        schedule=FaultSchedule(kind="periodic", offset=5, period=15),
        tier="smoke",
        description="SSME on a small ring absorbing a periodic single-node glitch.",
    ),
    Scenario(
        name="smoke-unison-path6-churn",
        protocol="unison",
        topology="path",
        n=6,
        daemon="cd-rr",
        horizon=50,
        seed=202,
        fault_model="global",
        schedule=FaultSchedule(kind="one-shot", offset=5),
        churn=(ChurnEvent(step=12, kind="add-edge"), ChurnEvent(step=28, kind="remove-vertex")),
        tier="smoke",
        description=(
            "Unison on a path: one global corruption, then an edge joins and "
            "a vertex leaves mid-run (clock parameters re-derived on churn)."
        ),
    ),
    Scenario(
        name="smoke-dijkstra-ring6-burst",
        protocol="dijkstra",
        topology="ring",
        n=6,
        daemon="cd",
        horizon=60,
        seed=303,
        fault_model="single-vertex",
        fault_params={"count": 2},
        schedule=FaultSchedule(
            kind="burst", offset=6, period=24, burst_size=2, burst_spacing=2
        ),
        tier="smoke",
        description=(
            "Dijkstra's token ring under bursty two-node corruption (no "
            "churn: the protocol requires the ring shape)."
        ),
    ),
    # ----------------------------------------------------------------- full
    Scenario(
        name="ssme-ring24-adversarial",
        protocol="ssme",
        topology="ring",
        n=24,
        daemon="sd",
        horizon=400,
        seed=1001,
        fault_model="global",
        schedule=FaultSchedule(kind="adversarial", offset=10),
        initial="adversarial",
        description=(
            "Starts from the planted double-privilege witness (the only way "
            "an SSME campaign starts unsafe — random corruption essentially "
            "never plants two privileges); each global corruption then lands "
            "exactly when the Theorem 2 bound says the previous one has just "
            "healed."
        ),
    ),
    Scenario(
        name="ssme-grid16-localized-poisson",
        protocol="ssme",
        topology="grid",
        n=16,
        daemon="sd",
        horizon=300,
        seed=1002,
        fault_model="localized-burst",
        fault_params={"radius": 1},
        schedule=FaultSchedule(kind="poisson", offset=10, rate=0.02),
        description=(
            "Memoryless rack-failure noise on a grid: radius-1 bursts at a "
            "2% per-step rate."
        ),
    ),
    Scenario(
        name="unison-star12-skew-periodic",
        protocol="unison",
        topology="star",
        n=12,
        daemon="sd",
        horizon=200,
        seed=1003,
        fault_model="clock-skew",
        fault_params={"max_skew": 2},
        schedule=FaultSchedule(kind="periodic", offset=8, period=40),
        description="Recurring bounded clock drift on a star under the synchronous daemon.",
    ),
    Scenario(
        name="unison-ring16-heavy-churn",
        protocol="unison",
        topology="ring",
        n=16,
        daemon="dd",
        horizon=400,
        seed=1004,
        fault_model="single-vertex",
        schedule=FaultSchedule(kind="poisson", offset=5, rate=0.01),
        churn=(
            ChurnEvent(step=60, kind="add-vertex"),
            ChurnEvent(step=120, kind="add-edge"),
            ChurnEvent(step=180, kind="remove-edge"),
            ChurnEvent(step=240, kind="remove-vertex"),
            ChurnEvent(step=300, kind="add-vertex"),
        ),
        description=(
            "Sustained topology churn (joins, leaves, link flaps) over "
            "background single-node noise under the distributed daemon."
        ),
    ),
    Scenario(
        name="dijkstra-ring12-adversarial",
        protocol="dijkstra",
        topology="ring",
        n=12,
        daemon="cd-adv",
        horizon=300,
        seed=1005,
        fault_model="single-vertex",
        schedule=FaultSchedule(kind="adversarial", offset=8),
        description=(
            "Dijkstra's ring under the adversarial central daemon with "
            "stabilization-timed single-node faults."
        ),
    ),
    Scenario(
        name="ssme-hypercube16-global-periodic",
        protocol="ssme",
        topology="hypercube",
        n=16,
        daemon="sd",
        horizon=240,
        seed=1006,
        fault_model="global",
        schedule=FaultSchedule(kind="periodic", offset=12, period=60),
        initial="random",
        description=(
            "SSME on the 4-cube from an arbitrary corrupted start, with "
            "periodic full re-corruption."
        ),
    ),
    Scenario(
        name="unison-complete8-skew-burst",
        protocol="unison",
        topology="complete",
        n=8,
        daemon="cd-rr",
        horizon=400,
        seed=1007,
        fault_model="clock-skew",
        fault_params={"max_skew": 3},
        schedule=FaultSchedule(
            kind="burst", offset=10, period=160, burst_size=3, burst_spacing=2
        ),
        description=(
            "Clock-skew bursts on a complete graph under the round-robin "
            "central daemon (one activation per step, so recovery windows "
            "span many steps)."
        ),
    ),
    Scenario(
        name="ssme-ring24-regime-switch",
        protocol="ssme",
        topology="ring",
        n=24,
        daemon="regime-switch",
        horizon=520,
        seed=1009,
        fault_model="single-vertex",
        schedule=FaultSchedule(kind="periodic", offset=16, period=64),
        description=(
            "SSME on a ring under the regime-switching daemon (alternating "
            "synchronous and sparse phases) with periodic single-node "
            "faults: recovery must hold across phase boundaries, and the "
            "adaptive engine's promotion/demotion cycle (E10) is exercised "
            "by the same workload shape."
        ),
    ),
    Scenario(
        name="bfs-binarytree15-root-reseat",
        protocol="bfs",
        topology="binary_tree",
        n=15,
        daemon="sd",
        horizon=200,
        seed=1010,
        fault_model="single-vertex",
        fault_params={"count": 2},
        schedule=FaultSchedule(kind="periodic", offset=10, period=50),
        initial="random",
        description=(
            "The min+1 BFS tree on a binary tree from arbitrary corrupted "
            "levels, absorbing recurring two-node level corruption (one of "
            "the accidentally speculative baselines: Theta(diam) synchronous "
            "vs Theta(n^2) distributed)."
        ),
    ),
    Scenario(
        name="matching-ring12-proposal-storm",
        protocol="matching",
        topology="ring",
        n=12,
        daemon="dd",
        horizon=300,
        seed=1012,
        fault_model="single-vertex",
        schedule=FaultSchedule(kind="poisson", offset=8, rate=0.02),
        initial="random",
        description=(
            "Manne et al. maximal matching on a ring from random pointers "
            "under the distributed daemon, with memoryless single-node "
            "pointer corruption (the 4n+2m-step accidentally speculative "
            "baseline)."
        ),
    ),
    Scenario(
        name="ssme-binarytree15-churn-recovery",
        protocol="ssme",
        topology="binary_tree",
        n=15,
        daemon="sd",
        horizon=260,
        seed=1008,
        fault_model="localized-burst",
        fault_params={"radius": 1},
        schedule=FaultSchedule(kind="periodic", offset=20, period=80),
        churn=(
            ChurnEvent(step=60, kind="add-edge"),
            ChurnEvent(step=140, kind="add-vertex"),
        ),
        description=(
            "SSME on a binary tree: localized bursts with an edge join and a "
            "vertex join between them (tree edges are bridges, so only "
            "additive churn is admissible)."
        ),
    ),
)


def scenario_names(tier: Optional[str] = None) -> List[str]:
    """Registered scenario names, optionally filtered by tier."""
    return [s.name for s in list_scenarios(tier)]


def list_scenarios(tier: Optional[str] = None) -> List[Scenario]:
    """Registered scenarios sorted by name, optionally filtered by tier."""
    if tier is not None and tier not in SCENARIO_TIERS:
        known = ", ".join(SCENARIO_TIERS)
        raise ExperimentError(f"unknown tier {tier!r}; known: {known}")
    return sorted(
        (s for s in SCENARIOS.values() if tier is None or s.tier == tier),
        key=lambda s: s.name,
    )


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ExperimentError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def run_scenario(name_or_scenario, engine: str = "auto") -> CampaignResult:
    """Run a scenario by name (or a :class:`Scenario` directly)."""
    scenario = (
        name_or_scenario
        if isinstance(name_or_scenario, Scenario)
        else get_scenario(name_or_scenario)
    )
    return scenario.run(engine=engine)
