"""Shared type aliases used across the library.

The simulator identifies vertices by arbitrary hashable objects; in practice
the generators in :mod:`repro.graphs.generators` use small integers, and the
mutual-exclusion protocols additionally require identifiers forming
``{0, ..., n-1}`` (as assumed by the paper, Section 4.1).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Tuple

#: A vertex of the communication graph.  Any hashable object is accepted.
VertexId = Hashable

#: An undirected edge, stored as an ordered pair for determinism.
Edge = Tuple[VertexId, VertexId]

#: The local state of a vertex as seen by the simulator.  Protocols define
#: their own concrete (preferably immutable) state types; the simulator only
#: requires hashability and equality.
VertexStateLike = Hashable

#: A read-only view of a configuration: vertex -> state.
ConfigurationMapping = Mapping[VertexId, VertexStateLike]
