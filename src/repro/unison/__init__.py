"""Asynchronous unison substrate (Boulinier, Petit & Villain)."""

from .protocol import AsynchronousUnison, default_unison_parameters
from .specification import AsynchronousUnisonSpec
from .analysis import Island, decompose_islands, island_of

__all__ = [
    "AsynchronousUnison",
    "AsynchronousUnisonSpec",
    "Island",
    "decompose_islands",
    "default_unison_parameters",
    "island_of",
]
