"""Island decomposition (Definitions 5 and 6).

The Theorem 2 proof reasons about *islands*: maximal sets of vertices
holding correct clock values whose internal edges are all locally correct.
An island containing a vertex whose clock reads exactly 0 is a
*zero-island*; otherwise it is a *non-zero-island*.  The *border* of an
island is the set of its vertices with a neighbour outside the island, and
its *depth* is the largest distance from an island vertex to the border.

These notions are not needed to run SSME — they are analysis devices — but
exposing them lets the test-suite exercise the combinatorial facts the proof
relies on (Lemmas 2 and 3), and they make execution traces much easier to
debug.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.state import Configuration
from ..exceptions import SpecificationError
from ..graphs import Graph
from ..types import VertexId
from .protocol import AsynchronousUnison

__all__ = ["Island", "decompose_islands", "island_of"]


class Island:
    """One island of a configuration."""

    __slots__ = ("vertices", "is_zero_island", "border", "depth")

    def __init__(
        self,
        vertices: FrozenSet[VertexId],
        is_zero_island: bool,
        border: FrozenSet[VertexId],
        depth: int,
    ) -> None:
        self.vertices = vertices
        self.is_zero_island = is_zero_island
        self.border = border
        self.depth = depth

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.vertices

    def __len__(self) -> int:
        return len(self.vertices)

    def __repr__(self) -> str:
        kind = "zero" if self.is_zero_island else "non-zero"
        return (
            f"Island({kind}, size={len(self.vertices)}, depth={self.depth}, "
            f"border={sorted(self.border, key=repr)!r})"
        )


def _island_components(
    protocol: AsynchronousUnison, configuration: Configuration
) -> List[FrozenSet[VertexId]]:
    """Connected clusters of correct-valued vertices whose internal edges are
    all locally correct.

    Definition 5 asks for maximal sets (w.r.t. inclusion) that are proper
    subsets of ``V``; connected clusters of the "locally correct" subgraph
    are the natural constructive reading, and they are what the proof's
    border/depth arguments operate on.
    """
    graph: Graph = protocol.graph
    clock = protocol.clock
    members = [v for v in graph.vertices if clock.is_correct(configuration[v])]
    member_set = set(members)
    components: List[FrozenSet[VertexId]] = []
    unvisited = set(members)
    while unvisited:
        start = min(unvisited, key=repr)
        component = {start}
        frontier = [start]
        unvisited.discard(start)
        while frontier:
            current = frontier.pop()
            for neighbor in graph.neighbors(current):
                if neighbor in unvisited and protocol.correct_pair(
                    configuration[current], configuration[neighbor]
                ):
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(frozenset(component))
    return components


def decompose_islands(
    protocol: AsynchronousUnison, configuration: Configuration
) -> List[Island]:
    """Compute the islands of ``configuration`` (Definitions 5 and 6).

    A component covering the whole vertex set is not an island (Definition 5
    requires ``I ⊊ V``); in that case — which includes every configuration of
    ``Γ₁`` — the decomposition is empty.
    """
    graph: Graph = protocol.graph
    clock = protocol.clock
    islands: List[Island] = []
    for component in _island_components(protocol, configuration):
        if len(component) == graph.n:
            continue
        is_zero = any(configuration[v] == 0 for v in component)
        border = frozenset(
            v
            for v in component
            if any(u not in component for u in graph.neighbors(v))
        )
        if border:
            depth = 0
            induced = graph.subgraph(component)
            for v in component:
                distances = induced.bfs_distances(v)
                to_border = min(
                    (distances[b] for b in border if b in distances), default=0
                )
                depth = max(depth, to_border)
        else:
            # No border can only happen for a full component, excluded above,
            # or a disconnected graph, which protocols reject.
            depth = 0
        islands.append(
            Island(
                vertices=component,
                is_zero_island=is_zero,
                border=border,
                depth=depth,
            )
        )
    return islands


def island_of(
    protocol: AsynchronousUnison, configuration: Configuration, vertex: VertexId
) -> Optional[Island]:
    """The island containing ``vertex``, or ``None`` if it belongs to none
    (its clock value is initial, or the whole graph is locally correct)."""
    for island in decompose_islands(protocol, configuration):
        if vertex in island:
            return island
    return None
