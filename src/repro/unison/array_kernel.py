"""Vectorized array-state kernel for the asynchronous unison (and SSME).

Implements the three guards of Algorithm 1 (``NA``/``CA``/``RA``) and the
shared ``phi``/reset actions as whole-array computations over the CSR
adjacency of :class:`repro.core.vector.GraphIndex` — semantically identical
to the inlined-integer guards of
:class:`~repro.unison.AsynchronousUnison` (pinned guard-by-guard by
``tests/test_vector_kernel.py`` and trace-by-trace by the engine
equivalence suite).  SSME inherits the capability unchanged: its rules are
exactly the unison's, parameterized by its own clock.

This module imports NumPy at load time and is therefore only imported from
:meth:`AsynchronousUnison.array_kernel` after a ``numpy_available`` check.
"""

from __future__ import annotations

import numpy as np

from ..core.vector import ArrayKernel, GraphIndex

__all__ = ["UnisonArrayKernel"]


class UnisonArrayKernel(ArrayKernel):
    """Array-state transition relation of the Boulinier–Petit–Villain unison.

    States are plain clock values (codec width 1).  For values ``rv, ru``
    and ``d = rv - ru`` the vectorized guards mirror the protocol's
    integer-inlined predicates exactly:

    * ``NA``: ``rv ∈ [0, K)`` and every neighbour ``ru ∈ [0, K)`` with
      ``d ∈ {0, -1, K-1}``;
    * ``CA``: ``rv ∈ [-alpha, 0)`` and every neighbour ``ru <= 0`` with
      ``rv <= ru``;
    * ``RA``: ``rv ∉ [-alpha, 0]`` and (``rv ∉ [0, K)`` or some neighbour
      has ``ru ∉ [0, K)`` or ``d ∉ {0, ±1, ±(K-1)}``).
    """

    def __init__(self, protocol) -> None:
        self.rule_names = (
            protocol.RULE_NORMAL,
            protocol.RULE_CONVERGE,
            protocol.RULE_RESET,
        )
        self._K = protocol.K
        self._alpha = protocol.alpha

    def enabled_rules(self, states, index: GraphIndex):
        s = states[:, 0]
        K = self._K
        alpha = self._alpha
        src = index.edge_src
        rv = s[src]
        ru = s[index.indices]
        d = rv - ru

        in_range = (s >= 0) & (s < K)
        ru_in_range = in_range[index.indices]

        # NA: locally correct, locally minimal, on the cycle.
        na_edge_ok = ru_in_range & ((d == 0) | (d == -1) | (d == K - 1))
        na = in_range & index.all_over_edges(na_edge_ok)

        # Steady-state fast path: once the unison has stabilized (the bulk
        # of every long dense-regime run) every vertex takes NA forever, and
        # NA excludes CA/RA by construction — skip their edge scans.
        if na.all():
            return np.zeros(index.n, dtype=np.int64)

        # CA: strictly initial, neighbours initial and no smaller.
        ca_edge_ok = (ru <= 0) & (rv <= ru)
        ca = (s >= -alpha) & (s < 0) & index.all_over_edges(ca_edge_ok)

        # RA: not initial and locally incorrect.
        initial = (s >= -alpha) & (s <= 0)
        ra_edge_bad = ~ru_in_range | ~(
            (d == 0) | (d == 1) | (d == -1) | (d == K - 1) | (d == 1 - K)
        )
        ra = ~initial & (~in_range | index.any_over_edges(ra_edge_bad))

        # First-enabled arbitration: assign in reverse rule order so the
        # earliest rule wins where several guards hold.
        rule_ids = np.full(index.n, -1, dtype=np.int64)
        rule_ids[ra] = 2
        rule_ids[ca] = 1
        rule_ids[na] = 0
        return rule_ids

    def enabled_rules_for(self, states, rows, index: GraphIndex):
        """Subset guard evaluation for the vectorized sparse refresh.

        Entry-for-entry identical to ``enabled_rules(states, index)[rows]``
        (pinned by ``tests/test_vector_kernel.py``), but touches only the
        adjacency entries of ``rows`` — every gather below is sized by the
        subset's edges, never by ``n``.
        """
        s_all = states[:, 0]
        K = self._K
        alpha = self._alpha
        s = s_all[rows]
        owners, neighbor_rows = index.subset_edges(rows)
        rv = s[owners]
        ru = s_all[neighbor_rows]
        d = rv - ru
        m = rows.size

        in_range = (s >= 0) & (s < K)
        ru_in_range = (ru >= 0) & (ru < K)

        na_edge_ok = ru_in_range & ((d == 0) | (d == -1) | (d == K - 1))
        na = in_range & index.all_over_subset(owners, na_edge_ok, m)

        ca_edge_ok = (ru <= 0) & (rv <= ru)
        ca = (s >= -alpha) & (s < 0) & index.all_over_subset(owners, ca_edge_ok, m)

        initial = (s >= -alpha) & (s <= 0)
        ra_edge_bad = ~ru_in_range | ~(
            (d == 0) | (d == 1) | (d == -1) | (d == K - 1) | (d == 1 - K)
        )
        ra = ~initial & (~in_range | index.any_over_subset(owners, ra_edge_bad, m))

        rule_ids = np.full(m, -1, dtype=np.int64)
        rule_ids[ra] = 2
        rule_ids[ca] = 1
        rule_ids[na] = 0
        return rule_ids

    def fire(self, states, selected, rule_ids, index: GraphIndex):
        s = states[selected, 0]
        # phi: increment up the tail (negative values), around the cycle
        # otherwise; RA resets to -alpha.
        phi = np.where(s < 0, s + 1, (s + 1) % self._K)
        new = np.where(rule_ids == 2, -self._alpha, phi)
        return new.reshape(-1, 1)
