"""The self-stabilizing asynchronous unison of Boulinier, Petit & Villain.

This is the substrate the paper builds SSME on (Section 4.1).  Every vertex
``v`` holds a register ``r_v`` whose value lives in a bounded clock
``cherry(alpha, K)``; the protocol guarantees, under the unfair distributed
daemon, that eventually every register holds a correct value, neighbouring
registers drift by at most one, and every register is incremented infinitely
often — provided ``alpha >= hole(g) - 2`` and ``K > cyclo(g)``.

The local protocol is exactly the one reproduced in Algorithm 1 of the
paper (without the privilege predicate, which does not interfere with it):

* ``NA`` (normal action): a vertex whose neighbourhood is locally correct
  and whose clock is locally minimal increments its clock;
* ``CA`` (converge action): a vertex with a strictly initial value whose
  neighbours all hold initial values at least as large increments its clock
  up the tail;
* ``RA`` (reset action): a vertex that detects a local inconsistency and
  does not hold an initial value resets to ``-alpha``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..clocks import BoundedClock
from ..core import LocalView, Protocol, Rule
from ..core.state import Configuration
from ..exceptions import ProtocolError
from ..graphs import Graph, cyclomatic_characteristic_upper_bound, hole_length
from ..types import VertexId

__all__ = ["AsynchronousUnison", "default_unison_parameters"]


def default_unison_parameters(graph: Graph, exact: bool = False) -> tuple:
    """Safe ``(alpha, K)`` parameters for ``graph``.

    When ``exact`` is True the exact ``hole(g)`` and the fundamental-cycle
    bound on ``cyclo(g)`` are computed; otherwise the paper's own coarse
    bounds ``alpha = n`` and ``K = n + 1`` are used (both are always valid
    because ``hole(g) <= n`` and ``cyclo(g) <= n``).
    """
    if exact:
        alpha = max(1, hole_length(graph) - 2)
        K = cyclomatic_characteristic_upper_bound(graph) + 1
        return alpha, max(K, 2)
    return max(1, graph.n), graph.n + 1


class AsynchronousUnison(Protocol):
    """The Boulinier–Petit–Villain asynchronous unison protocol.

    Parameters
    ----------
    graph:
        Connected communication graph.
    alpha:
        Tail length of the bounded clock; must satisfy
        ``alpha >= hole(g) - 2`` for convergence (``alpha = n`` always
        works).  Defaults to ``n``.
    K:
        Cycle length of the bounded clock; must satisfy ``K > cyclo(g)``
        for liveness (``K = n + 1`` always works).  Defaults to ``n + 1``.
    validate_parameters:
        When True (default), check the two conditions above using the exact
        ``hole`` computation and the fundamental-cycle bound.  Disable for
        very large graphs where the exact hole search is too slow.

    The local state of a vertex is simply its clock value (an ``int``).
    """

    name = "asynchronous-unison"

    #: The actions are closed over the cherry: NA/CA apply ``phi`` (which
    #: maps the domain into itself) and RA resets to ``-alpha``, so engines
    #: may skip re-validating fired states.
    actions_preserve_validity = True

    #: The rules read only the vertex's own register and its neighbours'
    #: register *values* (never identities), so every graph automorphism is
    #: a symmetry of the protocol.  Identity-dependent subclasses (SSME's
    #: privileged values, the parametric variants) override this back to
    #: False.
    vertex_symmetric = True

    #: Rule labels, matching Algorithm 1.
    RULE_NORMAL = "NA"
    RULE_CONVERGE = "CA"
    RULE_RESET = "RA"

    def __init__(
        self,
        graph: Graph,
        alpha: Optional[int] = None,
        K: Optional[int] = None,
        validate_parameters: bool = True,
    ) -> None:
        super().__init__(graph)
        default_alpha, default_K = max(1, graph.n), graph.n + 1
        self._clock = BoundedClock(
            alpha=alpha if alpha is not None else default_alpha,
            K=K if K is not None else default_K,
        )
        if validate_parameters:
            hole = hole_length(graph)
            if self._clock.alpha < hole - 2:
                raise ProtocolError(
                    f"alpha={self._clock.alpha} violates alpha >= hole(g) - 2 = {hole - 2}"
                )
            cyclo_bound = cyclomatic_characteristic_upper_bound(graph)
            # cyclo(g) <= n always; we additionally accept K > the
            # fundamental-cycle bound which itself upper-bounds cyclo(g).
            if not (self._clock.K > cyclo_bound or self._clock.K > graph.n):
                raise ProtocolError(
                    f"K={self._clock.K} violates K > cyclo(g) (upper bound {cyclo_bound})"
                )
        # Plain-int copies of the clock parameters for the guard fast paths
        # (attribute reads, not property descriptor calls, on the hot path).
        self._K = self._clock.K
        self._K1 = self._clock.K - 1
        self._alpha = self._clock.alpha
        self._rules = self._build_rules()

    # ------------------------------------------------------------------ #
    # Clock accessors
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> BoundedClock:
        """The bounded clock ``X = (cherry(alpha, K), phi)``."""
        return self._clock

    @property
    def alpha(self) -> int:
        """The clock tail length."""
        return self._clock.alpha

    @property
    def K(self) -> int:
        """The clock cycle length."""
        return self._clock.K

    # ------------------------------------------------------------------ #
    # The predicates of Algorithm 1
    # ------------------------------------------------------------------ #
    def correct_pair(self, rv: int, ru: int) -> bool:
        """``correct_v(u)``: both values on the cycle and drift at most 1."""
        clock = self._clock
        return (
            clock.is_correct(rv)
            and clock.is_correct(ru)
            and clock.distance(rv, ru) <= 1
        )

    def _all_correct(self, view: LocalView) -> bool:
        return all(
            self.correct_pair(view.state, ru) for ru in view.neighbor_states.values()
        )

    # The three guards below are the hottest code in the whole library:
    # every engine evaluates them once per vertex per step.  They inline
    # ``correct_pair``/``distance``/``local_le`` into direct integer
    # arithmetic on the cached ``K``/``alpha`` — for values in
    # ``[0, K)`` canonicalization is the identity, ``distance <= 1`` is
    # ``diff <= 1 or K - diff <= 1`` for ``diff = (rv - ru) % K``, and
    # ``local_le(rv, ru)`` is ``(ru - rv) % K <= 1`` — so the guards are
    # loop-free of method calls.  ``test_unison_protocol``/
    # ``test_protocol_hypothesis`` pin them to the predicate definitions.
    def _normal_step(self, view: LocalView) -> bool:
        # For rv, ru ∈ [0, K) the conjunction ``distance(rv, ru) <= 1 and
        # local_le(rv, ru)`` reduces to ``rv - ru ∈ {0, -1, K-1}`` (the
        # neighbour holds the same value or the cyclic successor/equal — the
        # local_le side rules out the neighbour lagging behind).
        K = self._K
        rv = view.state
        if not 0 <= rv < K:
            return False
        lag = self._K1
        for ru in view.neighbor_states.values():
            if not 0 <= ru < K:
                return False
            d = rv - ru
            if d != 0 and d != -1 and d != lag:
                return False
        return True

    def _converge_step(self, view: LocalView) -> bool:
        rv = view.state
        if not -self._alpha <= rv < 0:
            return False
        return all(
            ru <= 0 and rv <= ru for ru in view.neighbor_states.values()
        )

    def _reset_init(self, view: LocalView) -> bool:
        # ``not allCorrect and not initial``; for in-range values
        # ``distance > 1`` is ``rv - ru ∉ {0, ±1, ±(K-1)}``.
        rv = view.state
        if -self._alpha <= rv <= 0:
            return False
        K = self._K
        if not 0 <= rv < K:
            return True
        lag = self._K1
        for ru in view.neighbor_states.values():
            if not 0 <= ru < K:
                return True
            d = rv - ru
            if d != 0 and d != 1 and d != -1 and d != lag and d != -lag:
                return True
        return False

    def _phi_action(self, view: LocalView) -> int:
        # ``clock.phi`` restricted to in-domain values: the NA/CA guards
        # gating this action guarantee the state is inside the cherry, so
        # the domain re-check of ``phi`` is skipped on the firing hot path.
        rv = view.state
        return rv + 1 if rv < 0 else (rv + 1) % self._K

    def _build_rules(self) -> List[Rule]:
        reset_value = self._clock.reset_value()
        return [
            Rule(self.RULE_NORMAL, self._normal_step, self._phi_action),
            Rule(self.RULE_CONVERGE, self._converge_step, self._phi_action),
            Rule(self.RULE_RESET, self._reset_init, lambda view: reset_value),
        ]

    # ------------------------------------------------------------------ #
    # Protocol interface
    # ------------------------------------------------------------------ #
    def rules(self) -> Sequence[Rule]:
        return self._rules

    def vertex_state_space(self, vertex: VertexId) -> Sequence[int]:
        """Every vertex ranges over the whole clock domain ``cherry(alpha, K)``
        (SSME and the parametric variants inherit this unchanged)."""
        return self._clock.state_space()

    def array_codec(self):
        """States are plain clock ints — the trivial width-1 codec."""
        from ..core.vector import IntCodec, numpy_available

        if not numpy_available():
            return None
        return IntCodec()

    def array_kernel(self):
        """The vectorized NA/CA/RA kernel (SSME inherits it unchanged)."""
        from ..core.vector import numpy_available

        if not numpy_available():
            return None
        from .array_kernel import UnisonArrayKernel

        return UnisonArrayKernel(self)

    def random_state(self, vertex: VertexId, rng: random.Random) -> int:
        """An arbitrary clock value — this models a transient fault that can
        corrupt the register to any value of its domain."""
        return rng.randrange(-self._clock.alpha, self._clock.K)

    def default_state(self, vertex: VertexId) -> int:
        """The clean state: clock value 0 everywhere (a legitimate
        configuration with zero drift)."""
        return 0

    def validate_state(self, vertex: VertexId, state) -> None:
        # Called once per firing by every engine; the containment test is
        # inlined (no ``clock.contains`` call) to keep it cheap.
        if not isinstance(state, int) or not -self._alpha <= state < self._K:
            raise ProtocolError(
                f"state {state!r} of vertex {vertex!r} is outside "
                f"cherry({self._clock.alpha}, {self._clock.K})"
            )

    # ------------------------------------------------------------------ #
    # Legitimacy (the set Γ₁)
    # ------------------------------------------------------------------ #
    def is_locally_correct(self, configuration: Configuration, vertex: VertexId) -> bool:
        """``allCorrect_v`` evaluated in ``configuration``."""
        view = self.local_view(configuration, vertex)
        return self._all_correct(view)

    def is_legitimate(self, configuration: Configuration) -> bool:
        """Whether ``configuration`` belongs to ``Γ₁``: every register holds
        a correct value and neighbouring registers drift by at most 1."""
        clock = self._clock
        for vertex in self.graph.vertices:
            if not clock.is_correct(configuration[vertex]):
                return False
        for u, v in self.graph.edges:
            if clock.distance(configuration[u], configuration[v]) > 1:
                return False
        return True

    def legitimate_configuration(self, base_value: int = 0) -> Configuration:
        """A canonical legitimate configuration (every register equal to
        ``base_value``, which must be a correct clock value)."""
        if not self._clock.is_correct(base_value):
            raise ProtocolError(f"{base_value} is not a correct clock value")
        return self.configuration({v: base_value for v in self.graph.vertices})
