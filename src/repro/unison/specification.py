"""The asynchronous unison specification ``spec_AU`` (Specification 2).

An execution satisfies ``spec_AU`` when every configuration belongs to the
legitimate set ``Γ₁`` (safety) and the clock value of every vertex is
incremented infinitely often (liveness).  On finite traces the liveness
condition is approximated by "incremented at least once in the inspected
window", which is the strongest checkable statement.
"""

from __future__ import annotations

from typing import Optional

from ..core import Execution, Protocol, Specification
from ..core.state import Configuration
from ..exceptions import SpecificationError
from .protocol import AsynchronousUnison

__all__ = ["AsynchronousUnisonSpec"]


class AsynchronousUnisonSpec(Specification):
    """``spec_AU`` for a given :class:`AsynchronousUnison` instance."""

    name = "spec_AU"

    #: Γ₁ membership (correct registers, drift ≤ 1 over edges) only reads
    #: register values over the edge set, which automorphisms preserve.
    vertex_symmetric = True

    def __init__(self, protocol: AsynchronousUnison) -> None:
        if not isinstance(protocol, AsynchronousUnison):
            raise SpecificationError(
                "AsynchronousUnisonSpec requires an AsynchronousUnison protocol"
            )
        self._protocol = protocol

    # ------------------------------------------------------------------ #
    # Safety: membership in Γ₁
    # ------------------------------------------------------------------ #
    def is_safe(self, configuration: Configuration, protocol: Protocol) -> bool:
        del protocol  # the spec is bound to its own protocol instance
        return self._protocol.is_legitimate(configuration)

    def safe_rows(self, rows, order, protocol: Protocol):
        """Batch Γ₁ membership for the exact checker: every register correct
        (``>= 0``; the cherry domain is bounded above by ``K``) and every
        edge's cyclic drift at most 1."""
        del protocol
        import numpy as np

        bound = self._protocol
        position = {v: i for i, v in enumerate(order)}
        sources = []
        targets = []
        for u, v in bound.graph.edges:
            sources.append(position[u])
            targets.append(position[v])
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        values = rows[:, :, 0]
        correct = (values >= 0).all(axis=1)
        K = bound.clock.K
        diff = (values[:, src] - values[:, dst]) % K
        drift_ok = (np.minimum(diff, K - diff) <= 1).all(axis=1)
        return correct & drift_ok

    # ------------------------------------------------------------------ #
    # Liveness: every clock incremented in the window
    # ------------------------------------------------------------------ #
    def check_liveness(
        self, execution: Execution, protocol: Protocol, start: int = 0
    ) -> bool:
        del protocol
        incremented = set()
        clock = self._protocol.clock
        for index in range(start, execution.steps):
            for record in execution.activation_records(index):
                if record.rule_name in (
                    AsynchronousUnison.RULE_NORMAL,
                    AsynchronousUnison.RULE_CONVERGE,
                ) and record.new_state == clock.phi(record.old_state):
                    incremented.add(record.vertex)
        return incremented >= set(self._protocol.graph.vertices)

    def drift_bound_violations(self, configuration: Configuration) -> int:
        """Number of edges whose endpoints drift by more than 1 — a simple
        progress metric used by the examples."""
        clock = self._protocol.clock
        return sum(
            1
            for u, v in self._protocol.graph.edges
            if clock.distance(configuration[u], configuration[v]) > 1
        )
