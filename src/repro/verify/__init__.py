"""Exact adversarial model checking for finite-state protocol instances.

The simulation layer (:mod:`repro.core`) *samples* daemon schedules and
initial configurations, so every worst case it reports is a lower bound on
the truth (see the caveat in :mod:`repro.core.stabilization`).  This
package closes that gap on small instances by explicit-state game solving:

* :class:`StateSpace` packs configurations of finite-state protocols
  (those declaring :meth:`repro.core.Protocol.vertex_state_space`) into
  mixed-radix integer keys;
* :class:`TransitionSystem` expands, per configuration, *every* successor a
  daemon class admits (synchronous / central / distributed), over the full
  product space or the reachable closure of an initial region;
* :func:`solve` / :func:`verify_stabilization` run the adversarial game:
  certified legitimate attractor (greatest fixpoint), exact worst-case
  stabilization time (backward value iteration), divergence detection with
  an extracted :class:`LassoCounterexample`, and the exact speculation gap
  (:func:`exact_speculation_gap`).

See ``docs/verify.md`` for the encoding, the expansion rules, the solver
semantics, and when exact verification applies versus sampling.
"""

from .results import LassoCounterexample, SpeculationGapCertificate, VerificationResult
from .solver import (
    GameSolution,
    exact_speculation_gap,
    exact_worst_case_stabilization,
    solve,
    verify_stabilization,
)
from .statespace import DEFAULT_MAX_ENUMERATED, StateSpace
from .transitions import (
    DAEMON_CLASSES,
    ExploredSystem,
    TransitionSystem,
    daemon_class_selections,
)

__all__ = [
    "DAEMON_CLASSES",
    "DEFAULT_MAX_ENUMERATED",
    "ExploredSystem",
    "GameSolution",
    "LassoCounterexample",
    "SpeculationGapCertificate",
    "StateSpace",
    "TransitionSystem",
    "VerificationResult",
    "daemon_class_selections",
    "exact_speculation_gap",
    "exact_worst_case_stabilization",
    "solve",
    "verify_stabilization",
]
