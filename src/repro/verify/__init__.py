"""Exact adversarial model checking for finite-state protocol instances.

The simulation layer (:mod:`repro.core`) *samples* daemon schedules and
initial configurations, so every worst case it reports is a lower bound on
the truth (see the caveat in :mod:`repro.core.stabilization`).  This
package closes that gap on small instances by explicit-state game solving:

* :class:`StateSpace` packs configurations of finite-state protocols
  (those declaring :meth:`repro.core.Protocol.vertex_state_space`) into
  mixed-radix integer keys;
* :class:`TransitionSystem` expands, per configuration, *every* successor a
  daemon class admits (synchronous / central / distributed), over the full
  product space or the reachable closure of an initial region;
* :func:`solve` / :func:`verify_stabilization` run the adversarial game:
  certified legitimate attractor (greatest fixpoint), exact worst-case
  stabilization time (backward value iteration), divergence detection with
  an extracted :class:`LassoCounterexample`, and the exact speculation gap
  (:func:`exact_speculation_gap`).

Two orthogonal accelerations keep exactness while scaling the reach
(``verify_stabilization(engine=..., symmetry=...)`` turns them on):

* :class:`BatchedTransitionSystem` / :func:`solve_arrays`
  (:mod:`repro.verify.batched`) re-run the same exploration and game as
  NumPy array programs over the PR 3 kernel machinery — thousands of
  configurations expanded per kernel call, CSR frontier/value sweeps —
  bit-identical to the dict path and picked automatically when available;
* :class:`SymmetryReducer` (:mod:`repro.verify.symmetry`) quotients the
  exploration by the graph automorphism group when the protocol and the
  specification both declare ``vertex_symmetric`` (up to ``2n``-fold on
  rings).

See ``docs/verify.md`` for the encoding, the expansion rules, the solver
semantics, and when exact verification applies versus sampling.
"""

from .batched import (
    ArrayExploredSystem,
    ArrayGameSolution,
    ArrayPacker,
    BatchedTransitionSystem,
    solve_arrays,
)
from .results import LassoCounterexample, SpeculationGapCertificate, VerificationResult
from .solver import (
    GameSolution,
    batched_supported,
    exact_speculation_gap,
    exact_worst_case_stabilization,
    solve,
    verify_stabilization,
)
from .statespace import DEFAULT_MAX_ENUMERATED, StateSpace
from .symmetry import SymmetryReducer, ring_automorphisms
from .transitions import (
    DAEMON_CLASSES,
    ExploredSystem,
    TransitionSystem,
    daemon_class_selections,
)

__all__ = [
    "ArrayExploredSystem",
    "ArrayGameSolution",
    "ArrayPacker",
    "BatchedTransitionSystem",
    "DAEMON_CLASSES",
    "DEFAULT_MAX_ENUMERATED",
    "ExploredSystem",
    "GameSolution",
    "LassoCounterexample",
    "SpeculationGapCertificate",
    "StateSpace",
    "SymmetryReducer",
    "TransitionSystem",
    "VerificationResult",
    "batched_supported",
    "daemon_class_selections",
    "exact_speculation_gap",
    "exact_worst_case_stabilization",
    "ring_automorphisms",
    "solve",
    "solve_arrays",
    "verify_stabilization",
]
