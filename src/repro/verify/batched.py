"""The vectorized exact checker: batched expansion and array game solving.

The dict-based :class:`~repro.verify.TransitionSystem` pays one Python
decode, one Python safety call, ``|selections|`` Python firings and a dict
operation per successor *per configuration* — the cost that caps PR 4's
checker near ~10⁶ states.  This module re-runs the same exploration as
array programs over the PR 3 kernel machinery:

* **Batched expansion** (:class:`BatchedTransitionSystem`).  Thousands of
  frontier configurations are stacked into one ``(B·n, width)`` int64 state
  array over a block-diagonal :class:`~repro.core.vector.TiledGraphIndex`;
  the protocol's unmodified :class:`~repro.core.vector.ArrayKernel`
  evaluates every guard of every stacked configuration in one
  ``enabled_rules`` call and fires whole selection batches in one ``fire``
  call.  The synchronous class needs exactly one fire per frontier; the
  central/distributed classes fire one block per admitted selection, in
  the dict path's deterministic selection order (repr-rank within block).

* **State identity without bignums** (:class:`ArrayPacker`).  Mixed-radix
  keys overflow int64 already on SSME's ring(10) (``126¹⁰ > 2⁶³``), so the
  packer splits the radix vector into contiguous *groups* whose products
  stay below ``2⁶²``: a configuration's identity is a short tuple of int64
  "key columns" whose lexicographic order equals the numeric key order.
  Python-int keys are materialized only at result boundaries (lassos,
  ``value_of`` lookups, dict-system conversion), never per explored state.

* **Array frontier and solver** (:func:`solve_arrays`).  BFS dedup works on
  NumPy arrays plus one dict probe per *distinct* candidate; the attractor
  peel and backward value iteration run over CSR successor/predecessor
  arrays and boolean visited masks, touching every edge a constant number
  of times with no per-state Python.

Exactness is preserved end to end: the kernels are pinned to the stock
engine semantics by the engine equivalence suites, the expansion replicates
the dict path's selection enumeration and per-state successor dedup order,
and the equivalence tests assert bit-identical systems and values on every
instance the dict path can also afford.  The dict path stays the oracle —
NumPy remains an optional dependency and
:func:`~repro.verify.verify_stabilization` falls back to it automatically.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.protocol import Protocol
from ..core.specification import Specification
from ..core.state import Configuration
from ..core.vector import (
    ArrayCodec,
    ArrayKernel,
    GraphIndex,
    TiledGraphIndex,
    numpy_available,
    vector_eligible,
)
from ..exceptions import VerificationError
from .statespace import StateSpace
from .symmetry import SymmetryReducer
from .transitions import (
    DAEMON_CLASSES,
    DEFAULT_MAX_SELECTIONS,
    DEFAULT_MAX_STATES,
    ExploredSystem,
)

__all__ = [
    "ArrayExploredSystem",
    "ArrayGameSolution",
    "ArrayPacker",
    "BatchedTransitionSystem",
    "batched_supported",
    "solve_arrays",
]

#: Frontier configurations stacked per kernel call.  Large enough to
#: amortize per-call Python overhead into noise, small enough that the
#: per-call scratch arrays stay cache-friendly.
DEFAULT_BATCH_BLOCKS = 4096

#: Ceiling on the per-vertex codec lookup tables (guards against codecs
#: whose integer layout is so sparse that a dense table would balloon).
_MAX_TABLE_ENTRIES = 4_000_000

#: Key-column group capacity: products of group radices stay below this so
#: int64 column arithmetic can never overflow.
_GROUP_CAPACITY = 1 << 62


class ArrayPacker:
    """Bidirectional map between codec state rows, per-vertex domain
    indices, and grouped int64 key columns.

    Built once per (space, codec) pair.  ``indices`` are the mixed-radix
    digits of the packed key (vertex ``i``'s state index in its declared
    domain); ``rows`` are the codec's ``(n, width)`` int64 representation
    the kernels compute on; ``key columns`` are the grouped digits used for
    state identity and canonical-order comparisons.
    """

    __slots__ = (
        "_space",
        "_codec",
        "_n",
        "_width",
        "_dom_rows",
        "_dom_stack",
        "_lo",
        "_stride",
        "_span",
        "_table",
        "_group_starts",
        "_group_bases",
        "_local_mult",
        "_radices",
    )

    def __init__(self, space: StateSpace, codec: ArrayCodec) -> None:
        if not numpy_available():
            raise VerificationError("the batched checker requires NumPy")
        import numpy as np

        self._space = space
        self._codec = codec
        vertices = space.vertices
        domains = space.domains
        n = self._n = len(vertices)
        width = self._width = codec.width
        self._radices = tuple(len(domain) for domain in domains)

        # Per-vertex domain rows through the codec (the codec is the single
        # source of truth for the integer layout the kernels see).
        dom_rows: List = []
        for vertex, domain in zip(vertices, domains):
            try:
                rows = np.concatenate(
                    [codec.encode({vertex: state}, (vertex,)) for state in domain]
                )
            except (TypeError, ValueError, OverflowError) as error:
                raise VerificationError(
                    f"the array codec cannot encode the declared state space "
                    f"of vertex {vertex!r}: {error}"
                ) from error
            dom_rows.append(rows.astype(np.int64))
        self._dom_rows = dom_rows
        d_max = max(rows.shape[0] for rows in dom_rows)
        self._dom_stack = np.zeros((n, d_max, width), dtype=np.int64)
        for i, rows in enumerate(dom_rows):
            self._dom_stack[i, : rows.shape[0]] = rows

        # Dense per-vertex lookup tables: codec row -> domain index.  Rows
        # are first collapsed to a small "combined id" via per-column
        # offsets and strides, then looked up; -1 marks invalid rows.
        lo = np.empty((n, width), dtype=np.int64)
        span = np.empty((n, width), dtype=np.int64)
        stride = np.empty((n, width), dtype=np.int64)
        totals = []
        for i, rows in enumerate(dom_rows):
            lo[i] = rows.min(axis=0)
            span[i] = rows.max(axis=0) - lo[i] + 1
            stride[i, 0] = 1
            for j in range(1, width):
                stride[i, j] = stride[i, j - 1] * span[i, j - 1]
            totals.append(int(stride[i, width - 1] * span[i, width - 1]))
        if sum(totals) > _MAX_TABLE_ENTRIES:
            raise VerificationError(
                "the codec's integer layout is too sparse for dense lookup "
                f"tables ({sum(totals)} entries needed)"
            )
        self._lo, self._span, self._stride = lo, span, stride
        table = np.full((n, max(totals)), -1, dtype=np.int64)
        for i, rows in enumerate(dom_rows):
            combined = ((rows - lo[i]) * stride[i]).sum(axis=1)
            if np.unique(combined).size != rows.shape[0]:
                raise VerificationError(
                    f"the array codec maps two states of vertex "
                    f"{vertices[i]!r} to the same row; exact verification "
                    "needs an injective codec"
                )
            table[i, combined] = np.arange(rows.shape[0], dtype=np.int64)
        self._table = table

        # Key-column groups: contiguous runs of positions whose radix
        # product stays below the int64-safe capacity.  Column c of
        # ``key_columns`` holds the group's local mixed-radix value; the
        # full key is ``Σ column_c · group_bases[c]`` (Python ints — the
        # bases themselves may exceed int64).
        group_starts = [0]
        local_mult = np.empty(n, dtype=np.int64)
        product = 1
        for i, radix in enumerate(self._radices):
            if product * radix > _GROUP_CAPACITY and product > 1:
                group_starts.append(i)
                product = 1
            local_mult[i] = product
            product *= radix
        self._group_starts = np.asarray(group_starts, dtype=np.int64)
        self._group_bases = [space.multipliers[start] for start in group_starts]
        self._local_mult = local_mult

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def space(self) -> StateSpace:
        """The packed space this packer serves."""
        return self._space

    @property
    def packable(self) -> bool:
        """Whether full keys fit a single int64 column."""
        return len(self._group_bases) == 1

    @property
    def columns(self) -> int:
        """Number of key columns (1 when :attr:`packable`)."""
        return len(self._group_bases)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def rows_of(self, indices):
        """``(m, n, width)`` codec rows of an ``(m, n)`` index matrix."""
        import numpy as np

        return self._dom_stack[np.arange(self._n)[None, :], indices]

    def indices_of(self, rows):
        """``(m, n)`` domain indices of an ``(m, n, width)`` codec-row
        array, raising :class:`VerificationError` (naming the vertex and
        the offending value) when any row is outside a declared domain."""
        import numpy as np

        shifted = rows - self._lo
        in_box = ((shifted >= 0) & (shifted < self._span)).all(axis=2)
        combined = np.where(
            in_box[:, :, None], shifted, 0
        )  # clamp out-of-box rows to a valid table slot before the gather
        combined = (combined * self._stride).sum(axis=2)
        indices = self._table[np.arange(self._n)[None, :], combined]
        invalid = ~in_box | (indices < 0)
        if invalid.any():
            m_pos, v_pos = (int(x) for x in np.argwhere(invalid)[0])
            state = self._codec.decode(rows[m_pos, v_pos][None, :])[0]
            vertex = self._space.vertices[v_pos]
            raise VerificationError(
                f"state {state!r} of vertex {vertex!r} is outside the "
                "declared state space"
            )
        return indices

    def key_columns(self, indices):
        """``(m, C)`` grouped key columns of an ``(m, n)`` index matrix.

        Lexicographic order over the columns (most-significant column
        last) equals numeric order of the full mixed-radix keys.
        """
        import numpy as np

        return np.add.reduceat(indices * self._local_mult, self._group_starts, axis=1)

    def python_keys(self, indices) -> List[int]:
        """Exact Python-int mixed-radix keys of an ``(m, n)`` index matrix
        (arbitrary precision; used only at result boundaries)."""
        cols = self.key_columns(indices)
        if self.packable:
            return [int(k) for k in cols[:, 0].tolist()]
        bases = self._group_bases
        columns = [cols[:, c].tolist() for c in range(len(bases))]
        return [
            sum(columns[c][i] * bases[c] for c in range(len(bases)))
            for i in range(cols.shape[0])
        ]

    def indices_of_keys(self, keys: Sequence[int]):
        """``(m, n)`` index matrix of Python-int keys (inverse of
        :meth:`python_keys`; per-key divmod, for small seed regions)."""
        import numpy as np

        out = np.empty((len(keys), self._n), dtype=np.int64)
        for row, key in enumerate(keys):
            for i, radix in enumerate(self._radices):
                key, out[row, i] = divmod(key, radix)
        return out

    def configurations_of(self, indices) -> List[Configuration]:
        """Decoded configurations of an ``(m, n)`` index matrix (Python
        loop — the safety fallback and small result surfaces only)."""
        domains = self._space.domains
        vertices = self._space.vertices
        columns = indices.T.tolist()
        out = []
        for s in range(indices.shape[0]):
            out.append(
                Configuration._from_trusted_dict(
                    {
                        vertices[i]: domains[i][columns[i][s]]
                        for i in range(self._n)
                    }
                )
            )
        return out


def batched_supported(protocol: Protocol, specification: Specification) -> bool:
    """Whether the batched engine can run this instance at all.

    NumPy importable, kernel semantics valid (:func:`vector_eligible`), and
    both capability objects declared.  Construction of the packer (and its
    codec validation) happens inside :class:`BatchedTransitionSystem`; this
    is the cheap pre-probe ``engine="auto"`` uses.
    """
    del specification
    if not vector_eligible(protocol):
        return False
    return protocol.array_codec() is not None and protocol.array_kernel() is not None


class ArrayExploredSystem:
    """An explored transition system held in arrays.

    The array analogue of :class:`~repro.verify.ExploredSystem`: node ids
    are dense ints in discovery order; ``indptr``/``succ`` form the CSR
    successor relation (terminal nodes carry their self-loop explicitly);
    ``index_matrix`` holds every node's domain indices so keys and
    configurations can be materialized on demand.
    """

    __slots__ = (
        "space",
        "daemon_class",
        "exhaustive",
        "packer",
        "reducer",
        "index_matrix",
        "indptr",
        "succ",
        "safe",
        "terminal",
        "initial_nodes",
        "_keys_cache",
        "_node_of_key_cache",
    )

    def __init__(
        self,
        space: StateSpace,
        daemon_class: str,
        exhaustive: bool,
        packer: ArrayPacker,
        reducer: Optional[SymmetryReducer],
        index_matrix,
        indptr,
        succ,
        safe,
        terminal,
        initial_nodes,
    ) -> None:
        self.space = space
        self.daemon_class = daemon_class
        self.exhaustive = exhaustive
        self.packer = packer
        self.reducer = reducer
        self.index_matrix = index_matrix
        self.indptr = indptr
        self.succ = succ
        self.safe = safe
        self.terminal = terminal
        self.initial_nodes = initial_nodes
        self._keys_cache: Optional[List[int]] = None
        self._node_of_key_cache: Optional[Dict[int, int]] = None

    @property
    def state_count(self) -> int:
        """Number of explored configurations (orbits under a reducer)."""
        return int(self.index_matrix.shape[0])

    @property
    def transition_count(self) -> int:
        """Number of explored transitions (after per-state dedup)."""
        return int(self.succ.size)

    def keys(self) -> List[int]:
        """Python-int keys of every node, in discovery (node id) order."""
        if self._keys_cache is None:
            self._keys_cache = self.packer.python_keys(self.index_matrix)
        return self._keys_cache

    def node_of_key(self, key: int) -> Optional[int]:
        """The node id of a packed key (``None`` when unexplored)."""
        if self._node_of_key_cache is None:
            self._node_of_key_cache = {
                k: i for i, k in enumerate(self.keys())
            }
        return self._node_of_key_cache.get(key)

    def configuration(self, node: int) -> Configuration:
        """Decode one node back into a configuration."""
        return self.packer.configurations_of(self.index_matrix[node : node + 1])[0]

    def successors_of(self, node: int):
        """The successor node ids of ``node`` (CSR slice)."""
        return self.succ[self.indptr[node] : self.indptr[node + 1]]

    def to_explored_system(self) -> ExploredSystem:
        """The equivalent dict-based :class:`ExploredSystem`.

        Materializes Python keys and dicts for every node — meant for
        small systems (tests, lasso extraction), not the 10⁷-state runs.
        """
        keys = self.keys()
        indptr = self.indptr
        succ_list = self.succ.tolist()
        successors: Dict[int, Tuple[int, ...]] = {}
        safe_flags = self.safe.tolist()
        safe: Dict[int, bool] = {}
        for node, key in enumerate(keys):
            start, stop = int(indptr[node]), int(indptr[node + 1])
            successors[key] = tuple(keys[s] for s in succ_list[start:stop])
            safe[key] = bool(safe_flags[node])
        terminal_keys = frozenset(
            keys[node] for node in _nonzero_list(self.terminal)
        )
        initial_keys = [keys[node] for node in self.initial_nodes.tolist()]
        return ExploredSystem(
            space=self.space,
            daemon_class=self.daemon_class,
            keys=list(keys),
            successors=successors,
            safe=safe,
            initial_keys=initial_keys,
            terminal_keys=terminal_keys,
            exhaustive=self.exhaustive,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArrayExploredSystem({self.daemon_class!r}, "
            f"states={self.state_count}, transitions={self.transition_count}, "
            f"exhaustive={self.exhaustive})"
        )


def _nonzero_list(mask) -> List[int]:
    import numpy as np

    return np.nonzero(mask)[0].tolist()


class BatchedTransitionSystem:
    """Vectorized daemon-class expansion (see the module docstring).

    Drop-in analogue of :class:`~repro.verify.TransitionSystem`: same
    constructor semantics plus an optional :class:`SymmetryReducer`
    (``reducer``) that canonicalizes every discovered state to its orbit
    representative before dedup, and a ``batch_blocks`` knob for the number
    of configurations stacked per kernel call.
    """

    __slots__ = (
        "_protocol",
        "_specification",
        "_space",
        "_daemon_class",
        "_max_states",
        "_max_selections",
        "_reducer",
        "_blocks",
        "_packer",
        "_codec",
        "_base_index",
        "_tier_blocks",
        "_tiers",
        "_rank_of_row",
        "_order",
        "_safe_hook_broken",
    )

    def __init__(
        self,
        protocol: Protocol,
        specification: Specification,
        daemon_class: str = "synchronous",
        space: Optional[StateSpace] = None,
        max_states: int = DEFAULT_MAX_STATES,
        max_selections: int = DEFAULT_MAX_SELECTIONS,
        reducer: Optional[SymmetryReducer] = None,
        batch_blocks: int = DEFAULT_BATCH_BLOCKS,
    ) -> None:
        if daemon_class not in DAEMON_CLASSES:
            raise VerificationError(
                f"unknown daemon class {daemon_class!r}; known: {', '.join(DAEMON_CLASSES)}"
            )
        if not numpy_available():
            raise VerificationError(
                "the batched checker requires NumPy; use the dict engine"
            )
        if not vector_eligible(protocol):
            raise VerificationError(
                f"protocol {protocol.name!r} does not satisfy the vector-"
                "kernel semantics contract; use the dict engine"
            )
        codec = protocol.array_codec()
        kernel = protocol.array_kernel()
        if codec is None or kernel is None:
            raise VerificationError(
                f"protocol {protocol.name!r} declares no array codec/kernel; "
                "use the dict engine"
            )
        import numpy as np

        self._protocol = protocol
        self._specification = specification
        self._space = space if space is not None else StateSpace(protocol)
        self._daemon_class = daemon_class
        self._max_states = max_states
        self._max_selections = max_selections
        self._reducer = reducer
        self._blocks = max(1, int(batch_blocks))
        self._packer = ArrayPacker(self._space, codec)
        self._codec = codec
        self._base_index = GraphIndex(protocol.graph)
        if tuple(self._base_index.vertices) != tuple(self._space.vertices):
            # GraphIndex rows follow graph.vertices; the space follows
            # sorted_vertices.  Rebuild the index over the sorted order so
            # state columns and kernel rows line up one-to-one.
            self._base_index = _sorted_graph_index(protocol)
        # Tiered batch capacities: small frontiers (region closures are
        # often a few hundred states) run against a small tiled index
        # instead of padding to the full capacity every round.  Tiers are
        # built (and their kernel instances prepared) lazily on first use.
        self._tier_blocks = tuple(
            sorted({min(64, self._blocks), min(512, self._blocks), self._blocks})
        )
        self._tiers: Dict[int, Tuple[TiledGraphIndex, ArrayKernel]] = {}
        # Row position -> rank in the dict path's repr-sorted enabled order.
        order = sorted(range(self._base_index.n), key=lambda i: repr(self._space.vertices[i]))
        rank = np.empty(self._base_index.n, dtype=np.int64)
        for position, row in enumerate(order):
            rank[row] = position
        self._rank_of_row = rank
        self._order = self._space.vertices
        self._safe_hook_broken = False

    @property
    def space(self) -> StateSpace:
        """The packed configuration space."""
        return self._space

    @property
    def daemon_class(self) -> str:
        """The daemon class being expanded."""
        return self._daemon_class

    @property
    def reducer(self) -> Optional[SymmetryReducer]:
        """The symmetry reducer in effect (``None`` = no quotient)."""
        return self._reducer

    # ------------------------------------------------------------------ #
    # Entry points (same contract as TransitionSystem)
    # ------------------------------------------------------------------ #
    def explore(self, initial: Iterable[Configuration]) -> ArrayExploredSystem:
        """The reachable closure of ``initial`` under the daemon class."""
        initial_keys = self._space.encode_many(list(initial))
        if not initial_keys:
            raise VerificationError("the initial region is empty")
        seed_keys = list(dict.fromkeys(initial_keys))
        seed_idx = self._packer.indices_of_keys(seed_keys)
        return self._expand(seed_idx, exhaustive=False)

    def explore_full(self) -> ArrayExploredSystem:
        """The full product space (guarded by the exploration cap)."""
        if self._space.size > self._max_states:
            raise VerificationError(
                f"full state space has {self._space.size} configurations, above "
                f"the exploration cap of {self._max_states}"
            )
        return self._expand(None, exhaustive=True)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def _expand(self, seed_idx, exhaustive: bool) -> ArrayExploredSystem:
        import numpy as np

        state = _ExpansionState(self, exhaustive)
        if exhaustive:
            size = self._space.size
            if state.dense:
                initial_nodes = np.arange(size, dtype=np.int64)
            else:
                # Quotient (or multi-column) exhaustive mode: stream every
                # key through canonicalization + the registry first; the
                # closure then discovers nothing new.
                for start in range(0, size, self._blocks):
                    stop = min(start + self._blocks, size)
                    idx = self._dense_indices(start, stop)
                    state.nodes_of(self._canonical(idx))
                initial_nodes = np.arange(state.node_count, dtype=np.int64)
        else:
            idx = self._canonical(seed_idx)
            seed_nodes = state.nodes_of(idx)
            initial_nodes = np.asarray(
                list(dict.fromkeys(seed_nodes.tolist())), dtype=np.int64
            )
        # BFS: expand nodes strictly in discovery order, one batch of at
        # most ``batch_blocks`` per kernel round.
        while state.expanded < state.node_count or (
            state.dense and state.expanded < self._space.size
        ):
            total = self._space.size if state.dense else state.node_count
            stop = min(state.expanded + self._blocks, total)
            if state.dense:
                frontier_idx = self._dense_indices(state.expanded, stop)
            else:
                frontier_idx = state.rows_slice(state.expanded, stop)
            frontier_ids = np.arange(state.expanded, stop, dtype=np.int64)
            self._expand_batch(state, frontier_idx, frontier_ids)
            state.expanded = stop
        return state.finish(initial_nodes)

    def _dense_indices(self, start: int, stop: int):
        import numpy as np

        keys = np.arange(start, stop, dtype=np.int64)
        out = np.empty((stop - start, self._base_index.n), dtype=np.int64)
        remainder = keys
        for i, radix in enumerate(self._packer._radices):
            remainder, out[:, i] = np.divmod(remainder, radix)
        return out

    def _canonical(self, idx):
        if self._reducer is None:
            return idx
        return self._reducer.canonicalize_index_matrix(idx, self._packer)

    # -- one frontier batch ------------------------------------------- #
    def _expand_batch(self, state: "_ExpansionState", frontier_idx, frontier_ids) -> None:
        import numpy as np

        n = self._base_index.n
        F = frontier_idx.shape[0]
        rows3d = self._packer.rows_of(frontier_idx)
        rule_flat = self._eval_rules(rows3d)
        enabled_flat = rule_flat >= 0
        counts = enabled_flat.reshape(F, n).sum(axis=1)
        terminal = counts == 0
        safe = self._safe_of(frontier_idx, rows3d)

        if self._daemon_class == "synchronous":
            succ_parent, succ_idx = self._successors_synchronous(
                rows3d, rule_flat, terminal
            )
        elif self._daemon_class == "central":
            succ_parent, succ_idx = self._successors_central(
                rows3d, rule_flat, counts
            )
        else:
            succ_parent, succ_idx = self._successors_distributed(
                rows3d, rule_flat, counts
            )
        succ_idx = self._canonical(succ_idx)

        # Per-parent first-occurrence dedup, preserving the deterministic
        # selection order (the dict path's dict.fromkeys over encode_many).
        if succ_idx.shape[0]:
            cols = self._packer.key_columns(succ_idx)
            stacked = np.concatenate([succ_parent[:, None], cols], axis=1)
            _, first = np.unique(stacked, axis=0, return_index=True)
            keep = np.sort(first)
            succ_parent = succ_parent[keep]
            succ_idx = succ_idx[keep]
            succ_nodes = state.nodes_of(succ_idx)
        else:
            succ_nodes = np.empty(0, dtype=np.int64)
        dedup_counts = np.bincount(succ_parent, minlength=F)

        # Interleave with terminal self-loops, in frontier order.
        out_counts = np.where(terminal, 1, dedup_counts)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(out_counts)]
        )
        succ_out = np.empty(int(offsets[-1]), dtype=np.int64)
        if succ_nodes.size:
            position_in_parent = np.arange(succ_nodes.size, dtype=np.int64) - np.repeat(
                np.cumsum(dedup_counts) - dedup_counts, dedup_counts
            )
            succ_out[np.repeat(offsets[:-1], dedup_counts) + position_in_parent] = (
                succ_nodes
            )
        if terminal.any():
            succ_out[offsets[:-1][terminal]] = frontier_ids[terminal]
        state.commit(out_counts, succ_out, safe, terminal)

    # -- kernel plumbing ----------------------------------------------- #
    def _tier(self, blocks_needed: int):
        """The smallest prepared ``(tiled_index, kernel)`` tier holding at
        least ``blocks_needed`` stacked configurations."""
        for tier in self._tier_blocks:
            if tier >= blocks_needed:
                break
        cached = self._tiers.get(tier)
        if cached is None:
            index = TiledGraphIndex(self._base_index, tier)
            kernel = self._protocol.array_kernel()
            kernel.prepare(index)
            cached = self._tiers[tier] = (index, kernel)
        return tier, cached[0], cached[1]

    def _pad_states(self, states):
        """Pad a ``(b·n, width)`` state array to the capacity of the
        smallest fitting tier by tiling the first block (any valid rows
        do — padding blocks are evaluated but never selected or read)."""
        import numpy as np

        n = self._base_index.n
        blocks = states.shape[0] // n
        tier, index, kernel = self._tier(blocks)
        if blocks != tier:
            pad = np.tile(states[:n], (tier - blocks, 1))
            states = np.concatenate([states, pad])
        return states, index, kernel

    def _eval_rules(self, rows3d):
        """First-enabled rule ids for every vertex of every stacked
        configuration — chunked ``enabled_rules`` calls at capacity."""
        import numpy as np

        n = self._base_index.n
        F = rows3d.shape[0]
        flat = rows3d.reshape(F * n, self._packer._width)
        out = np.empty(F * n, dtype=np.int64)
        for start in range(0, F, self._blocks):
            stop = min(start + self._blocks, F)
            states, index, kernel = self._pad_states(flat[start * n : stop * n])
            rule_ids = kernel.enabled_rules(states, index)
            out[start * n : stop * n] = rule_ids[: (stop - start) * n]
        return out

    def _fire_blocks(self, big3d, fired_block, fired_row, rule_ids):
        """Fire one selection per block of ``big3d``: block ``b`` applies
        the rules of its fired vertices atomically.  Returns the successor
        ``(S, n, width)`` array."""
        import numpy as np

        n = self._base_index.n
        width = self._packer._width
        S = big3d.shape[0]
        out = np.ascontiguousarray(big3d).copy()
        flat = out.reshape(S * n, width)
        for start in range(0, S, self._blocks):
            stop = min(start + self._blocks, S)
            states, index, kernel = self._pad_states(flat[start * n : stop * n])
            mask = (fired_block >= start) & (fired_block < stop)
            selected = (fired_block[mask] - start) * n + fired_row[mask]
            new_rows = kernel.fire(states, selected, rule_ids[mask], index)
            flat[start * n + selected] = new_rows
        return out

    # -- per-daemon-class successor generation ------------------------- #
    def _successors_synchronous(self, rows3d, rule_flat, terminal):
        import numpy as np

        n = self._base_index.n
        parents = np.nonzero(~terminal)[0]
        if not parents.size:
            return np.empty(0, dtype=np.int64), np.empty(
                (0, n), dtype=np.int64
            )
        big3d = rows3d[parents]
        # Flat enabled positions, re-based onto the compacted block layout.
        enabled2d = (rule_flat >= 0).reshape(-1, n)[parents]
        fired_block, fired_row = np.nonzero(enabled2d)
        rules = rule_flat.reshape(-1, n)[parents][enabled2d]
        fired = self._fire_blocks(big3d, fired_block, fired_row, rules)
        return parents, self._packer.indices_of(fired)

    def _successors_central(self, rows3d, rule_flat, counts):
        import numpy as np

        n = self._base_index.n
        positions = np.nonzero(rule_flat >= 0)[0]
        if not positions.size:
            return np.empty(0, dtype=np.int64), np.empty((0, n), dtype=np.int64)
        block = positions // n
        row = positions % n
        # One successor per enabled vertex, ordered (parent, repr-rank) to
        # replicate daemon_class_selections' repr-sorted singleton order.
        order = np.lexsort((self._rank_of_row[row], block))
        positions = positions[order]
        block, row = block[order], positions % n
        big3d = np.repeat(rows3d, counts, axis=0)
        fired_block = np.arange(positions.size, dtype=np.int64)
        fired = self._fire_blocks(
            big3d, fired_block, row, rule_flat[positions]
        )
        return block, self._packer.indices_of(fired)

    def _successors_distributed(self, rows3d, rule_flat, counts):
        import numpy as np

        n = self._base_index.n
        rank = self._rank_of_row
        enabled2d = (rule_flat >= 0).reshape(-1, n)
        sel_parent: List[int] = []
        sel_rows: List[int] = []
        sel_blocks: List[int] = []
        selection_count = 0
        for parent in np.nonzero(counts > 0)[0].tolist():
            rows = np.nonzero(enabled2d[parent])[0]
            admitted = (1 << rows.size) - 1
            if admitted > self._max_selections:
                raise VerificationError(
                    f"distributed daemon class admits {admitted} selections "
                    f"for an enabled set of {rows.size} vertices, above the "
                    f"cap of {self._max_selections}; raise max_selections or "
                    "verify a smaller instance"
                )
            ordered = sorted(rows.tolist(), key=lambda r: rank[r])
            for size in range(1, len(ordered) + 1):
                for combination in itertools.combinations(ordered, size):
                    for fired_row in combination:
                        sel_rows.append(fired_row)
                        sel_blocks.append(selection_count)
                    sel_parent.append(parent)
                    selection_count += 1
        if not selection_count:
            return np.empty(0, dtype=np.int64), np.empty((0, n), dtype=np.int64)
        parent_arr = np.asarray(sel_parent, dtype=np.int64)
        fired_block = np.asarray(sel_blocks, dtype=np.int64)
        fired_row = np.asarray(sel_rows, dtype=np.int64)
        big3d = rows3d[parent_arr]
        rules = rule_flat[parent_arr[fired_block] * n + fired_row]
        fired = self._fire_blocks(big3d, fired_block, fired_row, rules)
        return parent_arr, self._packer.indices_of(fired)

    # -- safety --------------------------------------------------------- #
    def _safe_of(self, frontier_idx, rows3d):
        import numpy as np

        if not self._safe_hook_broken:
            flags = self._specification.safe_rows(
                rows3d, self._order, self._protocol
            )
            if flags is not None:
                return np.asarray(flags, dtype=bool)
            self._safe_hook_broken = True
        configurations = self._packer.configurations_of(frontier_idx)
        return np.fromiter(
            (
                bool(self._specification.is_safe(c, self._protocol))
                for c in configurations
            ),
            dtype=bool,
            count=len(configurations),
        )


def _sorted_graph_index(protocol: Protocol) -> GraphIndex:
    """A :class:`GraphIndex` whose rows follow ``sorted_vertices`` order
    (the packing order of :class:`StateSpace`)."""
    index = GraphIndex.__new__(GraphIndex)
    import numpy as np

    graph = protocol.graph
    vertices = tuple(graph.sorted_vertices())
    index.vertices = vertices
    index.position = {v: i for i, v in enumerate(vertices)}
    n = index.n = len(vertices)
    degrees = [0] * n
    columns: List[int] = []
    for i, v in enumerate(vertices):
        neighbors = sorted(index.position[u] for u in graph.neighbors(v))
        degrees[i] = len(neighbors)
        columns.extend(neighbors)
    index.indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.asarray(degrees, dtype=np.int64), out=index.indptr[1:])
    index.indices = np.asarray(columns, dtype=np.int64)
    index.edge_src = np.repeat(
        np.arange(n, dtype=np.int64), np.asarray(degrees, dtype=np.int64)
    )
    return index


class _ExpansionState:
    """Mutable exploration state: node registry, per-round output chunks."""

    __slots__ = (
        "_system",
        "_packer",
        "exhaustive",
        "dense",
        "node_count",
        "expanded",
        "_node_of",
        "_count_chunks",
        "_succ_chunks",
        "_safe_chunks",
        "_terminal_chunks",
        "_rows_buf",
        "_rows_len",
    )

    def __init__(self, system: BatchedTransitionSystem, exhaustive: bool) -> None:
        packer = system._packer
        self._system = system
        self._packer = packer
        self.exhaustive = exhaustive
        # Dense mode: exhaustive, no quotient, keys fit int64 — node id IS
        # the key, no registry at all.
        self.dense = exhaustive and system._reducer is None and packer.packable
        self.node_count = system.space.size if self.dense else 0
        self.expanded = 0
        self._node_of: Dict = {}
        self._count_chunks: List = []
        self._succ_chunks: List = []
        self._safe_chunks: List = []
        self._terminal_chunks: List = []
        self._rows_buf = None
        self._rows_len = 0

    # -- node registry -------------------------------------------------- #
    def nodes_of(self, idx):
        """Node ids of an ``(m, n)`` (canonical) index matrix, assigning
        fresh ids to unseen states in first-occurrence order."""
        import numpy as np

        packer = self._packer
        cols = packer.key_columns(idx)
        if self.dense:
            return cols[:, 0]
        if packer.packable:
            uniques, first, inverse = np.unique(
                cols[:, 0], return_index=True, return_inverse=True
            )
            labels = uniques.tolist()
        else:
            uniques, first, inverse = np.unique(
                cols, axis=0, return_index=True, return_inverse=True
            )
            labels = [tuple(row) for row in uniques.tolist()]
        node_of = self._node_of
        lookup = np.empty(len(labels), dtype=np.int64)
        misses: List[Tuple[int, int]] = []
        for upos, label in enumerate(labels):
            node = node_of.get(label, -1)
            lookup[upos] = node
            if node < 0:
                misses.append((int(first[upos]), upos))
        if misses:
            misses.sort()
            new_rows = np.empty((len(misses), idx.shape[1]), dtype=np.int64)
            for offset, (first_ix, upos) in enumerate(misses):
                node = self.node_count
                self.node_count += 1
                node_of[labels[upos]] = node
                lookup[upos] = node
                new_rows[offset] = idx[first_ix]
            self._append_rows(new_rows)
            if self.node_count > self._system._max_states:
                raise VerificationError(
                    f"reachable region exceeds the exploration cap of "
                    f"{self._system._max_states} configurations"
                )
        return lookup[inverse.ravel()]

    def _append_rows(self, rows) -> None:
        # Amortized-doubling append: the registry grows by a few thousand
        # rows per round over potentially millions of rounds' worth of
        # nodes, so per-round reallocation must stay O(appended), not
        # O(total).
        import numpy as np

        m = rows.shape[0]
        need = self._rows_len + m
        if self._rows_buf is None:
            capacity = max(4096, m)
            self._rows_buf = np.empty((capacity, rows.shape[1]), dtype=np.int64)
        elif need > self._rows_buf.shape[0]:
            capacity = self._rows_buf.shape[0]
            while capacity < need:
                capacity *= 2
            grown = np.empty((capacity, self._rows_buf.shape[1]), dtype=np.int64)
            grown[: self._rows_len] = self._rows_buf[: self._rows_len]
            self._rows_buf = grown
        self._rows_buf[self._rows_len : need] = rows
        self._rows_len = need

    def rows_slice(self, start: int, stop: int):
        """Index-matrix rows of nodes ``start..stop`` (discovery order)."""
        return self._rows_buf[start:stop]

    # -- per-round output ----------------------------------------------- #
    def commit(self, out_counts, succ_out, safe, terminal) -> None:
        self._count_chunks.append(out_counts)
        self._succ_chunks.append(succ_out)
        self._safe_chunks.append(safe)
        self._terminal_chunks.append(terminal)

    def finish(self, initial_nodes) -> ArrayExploredSystem:
        import numpy as np

        system = self._system
        counts = (
            np.concatenate(self._count_chunks)
            if self._count_chunks
            else np.empty(0, dtype=np.int64)
        )
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        succ = (
            np.concatenate(self._succ_chunks)
            if self._succ_chunks
            else np.empty(0, dtype=np.int64)
        )
        safe = (
            np.concatenate(self._safe_chunks)
            if self._safe_chunks
            else np.empty(0, dtype=bool)
        )
        terminal = (
            np.concatenate(self._terminal_chunks)
            if self._terminal_chunks
            else np.empty(0, dtype=bool)
        )
        if self.dense:
            index_matrix = np.concatenate(
                [
                    system._dense_indices(start, min(start + (1 << 16), self.node_count))
                    for start in range(0, self.node_count, 1 << 16)
                ]
            ) if self.node_count else np.empty((0, system._base_index.n), dtype=np.int64)
        else:
            index_matrix = (
                self.rows_slice(0, self.node_count)
                if self.node_count
                else np.empty((0, system._base_index.n), dtype=np.int64)
            )
        if succ.size and self.node_count < (1 << 31):
            succ = succ.astype(np.int32)
        return ArrayExploredSystem(
            space=system.space,
            daemon_class=system.daemon_class,
            exhaustive=self.exhaustive,
            packer=system._packer,
            reducer=system._reducer,
            index_matrix=index_matrix,
            indptr=indptr,
            succ=succ,
            safe=safe,
            terminal=terminal,
            initial_nodes=initial_nodes,
        )


# ---------------------------------------------------------------------- #
# The array game solver
# ---------------------------------------------------------------------- #
class ArrayGameSolution:
    """The solved stabilization game over an :class:`ArrayExploredSystem`.

    ``values[node]`` is the exact worst-case stabilization time of the
    node's configuration (``-1`` = diverging); ``legitimate`` is the
    certified attractor as a boolean mask.
    """

    __slots__ = ("system", "values", "legitimate", "diverging")

    def __init__(self, system: ArrayExploredSystem, values, legitimate, diverging) -> None:
        self.system = system
        self.values = values
        self.legitimate = legitimate
        self.diverging = diverging

    @property
    def legitimate_count(self) -> int:
        """Number of certified legitimate nodes."""
        return int(self.legitimate.sum())

    @property
    def diverging_count(self) -> int:
        """Number of diverging nodes."""
        return int(self.diverging.sum())

    def worst_value_over(self, nodes) -> Optional[int]:
        """Max value over node ids — ``None`` if any of them diverges."""
        import numpy as np

        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        values = self.values[nodes]
        if (values < 0).any():
            return None
        return int(values.max())

    @property
    def exact_worst_case(self) -> Optional[int]:
        """Worst value over the system's initial region."""
        return self.worst_value_over(self.system.initial_nodes)

    def to_game_solution(self):
        """The dict-based :class:`~repro.verify.GameSolution` equivalent
        (small systems: materializes Python keys and dicts)."""
        from .solver import GameSolution

        system = self.system.to_explored_system()
        keys = self.system.keys()
        values_list = self.values.tolist()
        values = {
            keys[node]: value
            for node, value in enumerate(values_list)
            if value >= 0
        }
        legitimate = frozenset(
            keys[node] for node in _nonzero_list(self.legitimate)
        )
        diverging = frozenset(
            keys[node] for node in _nonzero_list(self.diverging)
        )
        return GameSolution(
            system=system,
            legitimate=legitimate,
            values=values,
            diverging=diverging,
            reducer=self.system.reducer,
        )

    def lasso(self):
        """A concrete divergence witness (``None`` when none exists).

        Builds the dict-based solver's lasso on the *diverging subsystem
        only* — stem/cycle extraction touches just the diverging region, so
        a huge stabilizing system with a small diverging core stays cheap.
        """
        from .solver import GameSolution

        import numpy as np

        if not self.diverging.any():
            return None
        asys = self.system
        keys = asys.keys()
        diverging_nodes = np.nonzero(self.diverging)[0]
        successors: Dict[int, Tuple[int, ...]] = {}
        safe: Dict[int, bool] = {}
        safe_list = asys.safe.tolist()
        for node in diverging_nodes.tolist():
            start, stop = int(asys.indptr[node]), int(asys.indptr[node + 1])
            successors[keys[node]] = tuple(
                keys[int(s)] for s in asys.succ[start:stop]
            )
            safe[keys[node]] = bool(safe_list[node])
        diverging_keys = [keys[node] for node in diverging_nodes.tolist()]
        initial_keys = [
            keys[int(node)]
            for node in asys.initial_nodes.tolist()
            if self.diverging[int(node)]
        ]
        subsystem = ExploredSystem(
            space=asys.space,
            daemon_class=asys.daemon_class,
            keys=diverging_keys,
            successors=successors,
            safe=safe,
            initial_keys=initial_keys,
            terminal_keys=frozenset(),
            exhaustive=False,
        )
        return GameSolution(
            system=subsystem,
            legitimate=frozenset(),
            values={},
            diverging=frozenset(diverging_keys),
            reducer=asys.reducer,
        ).lasso()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArrayGameSolution(states={self.system.state_count}, "
            f"legitimate={self.legitimate_count}, diverging={self.diverging_count})"
        )


def solve_arrays(system: ArrayExploredSystem) -> ArrayGameSolution:
    """Solve the stabilization game over CSR arrays (see module docstring).

    Same three phases as :func:`repro.verify.solve` — greatest-fixpoint
    attractor, backward value iteration, divergence — each as frontier
    sweeps over boolean masks and ``reduceat`` segments.
    """
    import numpy as np

    N = system.state_count
    indptr = system.indptr
    succ = system.succ.astype(np.int64, copy=False)
    counts = indptr[1:] - indptr[:-1]

    # Reverse CSR: predecessors of every node.
    edge_owner = np.repeat(np.arange(N, dtype=np.int64), counts)
    order = np.argsort(succ, kind="stable")
    pred_src = edge_owner[order]
    pred_indptr = np.zeros(N + 1, dtype=np.int64)
    np.cumsum(np.bincount(succ, minlength=N), out=pred_indptr[1:])

    def predecessors_of(nodes):
        starts = pred_indptr[nodes]
        stops = pred_indptr[nodes + 1]
        return pred_src[_concat_ranges_np(starts, stops)]

    # 1. Greatest fixpoint: peel unsafe-reachable states off the safe set.
    legitimate = system.safe.copy()
    frontier = np.nonzero(~system.safe)[0]
    while frontier.size:
        preds = predecessors_of(frontier)
        candidates = preds[legitimate[preds]]
        if not candidates.size:
            break
        candidates = np.unique(candidates)
        legitimate[candidates] = False
        frontier = candidates

    # 2. Backward value iteration (adversary maximizes time to L).
    values = np.full(N, -1, dtype=np.int64)
    values[legitimate] = 0
    finalized = legitimate.copy()
    pending = counts.copy()
    frontier = np.nonzero(legitimate)[0]
    while frontier.size:
        preds = predecessors_of(frontier)
        np.subtract.at(pending, preds, 1)
        candidates = preds[(pending[preds] == 0) & ~finalized[preds]]
        if not candidates.size:
            break
        candidates = np.unique(candidates)
        # Every successor of a candidate is finalized; V = 1 + max.
        starts = indptr[candidates]
        stops = indptr[candidates + 1]
        segment_values = values[succ[_concat_ranges_np(starts, stops)]]
        boundaries = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(stops - starts)]
        )[:-1]
        values[candidates] = 1 + np.maximum.reduceat(segment_values, boundaries)
        finalized[candidates] = True
        frontier = candidates

    # 3. Whatever was never finalized diverges.
    return ArrayGameSolution(
        system=system,
        values=values,
        legitimate=legitimate,
        diverging=~finalized,
    )


class _ArrayValues:
    """Dict-like view of an :class:`ArrayGameSolution`'s value vector,
    keyed by Python-int packed keys (what :class:`VerificationResult`
    stores as ``values``).  Diverging nodes have no entry."""

    __slots__ = ("_solution",)

    def __init__(self, solution: ArrayGameSolution) -> None:
        self._solution = solution

    def get(self, key: int, default=None):
        node = self._solution.system.node_of_key(key)
        if node is None:
            return default
        value = int(self._solution.values[node])
        return default if value < 0 else value

    def __getitem__(self, key: int) -> int:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._solution.system.state_count - self._solution.diverging_count

    def __iter__(self):
        keys = self._solution.system.keys()
        values = self._solution.values
        return (key for node, key in enumerate(keys) if values[node] >= 0)

    def items(self):
        """``(key, value)`` pairs of every non-diverging node."""
        keys = self._solution.system.keys()
        values = self._solution.values.tolist()
        return (
            (key, value)
            for key, value in zip(keys, values)
            if value >= 0
        )


class _ArrayKeySet:
    """Set-like view of an :class:`ArrayGameSolution`'s legitimate mask,
    keyed by Python-int packed keys."""

    __slots__ = ("_solution",)

    def __init__(self, solution: ArrayGameSolution) -> None:
        self._solution = solution

    def __contains__(self, key) -> bool:
        node = self._solution.system.node_of_key(key)
        return node is not None and bool(self._solution.legitimate[node])

    def __len__(self) -> int:
        return self._solution.legitimate_count

    def __iter__(self):
        keys = self._solution.system.keys()
        legitimate = self._solution.legitimate
        return (key for node, key in enumerate(keys) if legitimate[node])


def _concat_ranges_np(starts, stops):
    import numpy as np

    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)
