"""Result objects of the exact model checker.

Everything the solver certifies is surfaced through these value objects:
the exact worst-case stabilization time (:class:`VerificationResult`), the
extracted non-stabilization witness (:class:`LassoCounterexample`), and the
exact speculation gap (:class:`SpeculationGapCertificate`).  They are plain
data holders — the mathematics lives in :mod:`repro.verify.solver` — but
they phrase the numbers in the vocabulary of the paper (Definition 3
stabilization, Definition 4 speculation) so experiment drivers and tests
can assert against them directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.state import Configuration
from ..types import VertexId

__all__ = [
    "LassoCounterexample",
    "VerificationResult",
    "SpeculationGapCertificate",
]


class LassoCounterexample:
    """A concrete infinite execution that never stabilizes.

    The execution follows ``stem`` and then repeats ``cycle`` forever; each
    consecutive pair is one action of the daemon class (``selections`` give
    the activated sets, aligned with the transitions of stem + cycle).  The
    cycle lies entirely outside the legitimate attractor, so the execution
    never reaches a configuration from which the specification is
    guaranteed — the Definition 3 stabilization time from ``stem[0]`` is
    infinite.  When :attr:`violates_safety` is True the cycle even contains
    an unsafe configuration, i.e. safety is violated infinitely often.
    """

    __slots__ = ("stem", "cycle", "stem_selections", "cycle_selections", "violates_safety")

    def __init__(
        self,
        stem: Sequence[Configuration],
        cycle: Sequence[Configuration],
        stem_selections: Sequence[FrozenSet[VertexId]],
        cycle_selections: Sequence[FrozenSet[VertexId]],
        violates_safety: bool,
    ) -> None:
        self.stem = tuple(stem)
        self.cycle = tuple(cycle)
        self.stem_selections = tuple(stem_selections)
        self.cycle_selections = tuple(cycle_selections)
        self.violates_safety = violates_safety

    @property
    def initial(self) -> Configuration:
        """The configuration the diverging execution starts from."""
        return self.stem[0] if self.stem else self.cycle[0]

    def describe(self) -> str:
        """A short human-readable account of the counterexample."""
        return (
            f"lasso: stem of {len(self.stem_selections)} actions into a cycle "
            f"of {len(self.cycle)} configurations"
            + (" violating safety infinitely often" if self.violates_safety else "")
        )

    def __repr__(self) -> str:
        return (
            f"LassoCounterexample(stem={len(self.stem)}, cycle={len(self.cycle)}, "
            f"violates_safety={self.violates_safety})"
        )


class VerificationResult:
    """Outcome of exactly model-checking one (protocol, spec, daemon class).

    Attributes
    ----------
    exact_worst_case:
        The exact Definition 3 worst-case stabilization time over the
        verified initial region — the number of actions an optimal
        adversary of the daemon class can force before the system enters
        the legitimate attractor — or ``None`` when some initial
        configuration diverges (infinite worst case).
    stabilizes:
        Whether every initial configuration of the region stabilizes under
        every schedule of the daemon class.
    legitimate_count:
        Size of the certified legitimate attractor: the largest set of safe
        configurations closed under every daemon-class transition.  Every
        explored execution suffix inside it satisfies safety forever.
    counterexample:
        A :class:`LassoCounterexample` when ``stabilizes`` is False.
    """

    __slots__ = (
        "protocol_name",
        "specification_name",
        "daemon_class",
        "exhaustive",
        "state_count",
        "transition_count",
        "legitimate_count",
        "diverging_count",
        "exact_worst_case",
        "stabilizes",
        "counterexample",
        "_values",
        "_legitimate_keys",
        "_space",
        "_reducer",
    )

    def __init__(
        self,
        protocol_name: str,
        specification_name: str,
        daemon_class: str,
        exhaustive: bool,
        state_count: int,
        transition_count: int,
        legitimate_count: int,
        diverging_count: int,
        exact_worst_case: Optional[int],
        stabilizes: bool,
        counterexample: Optional[LassoCounterexample],
        values: Dict[int, int],
        legitimate_keys: FrozenSet[int],
        space,
        reducer=None,
    ) -> None:
        self.protocol_name = protocol_name
        self.specification_name = specification_name
        self.daemon_class = daemon_class
        self.exhaustive = exhaustive
        self.state_count = state_count
        self.transition_count = transition_count
        self.legitimate_count = legitimate_count
        self.diverging_count = diverging_count
        self.exact_worst_case = exact_worst_case
        self.stabilizes = stabilizes
        self.counterexample = counterexample
        self._values = values
        self._legitimate_keys = legitimate_keys
        self._space = space
        # Under a symmetry quotient, stored keys are orbit representatives:
        # per-configuration queries canonicalize before lookup, so callers
        # see exactly the full-system answers (values are orbit-invariant).
        self._reducer = reducer

    # ------------------------------------------------------------------ #
    # Per-configuration queries
    # ------------------------------------------------------------------ #
    def _key_of(self, configuration: Configuration) -> int:
        key = self._space.encode(configuration)
        if self._reducer is not None:
            key = self._reducer.canonical_key(key)
        return key

    def value_of(self, configuration: Configuration) -> Optional[int]:
        """The exact worst-case stabilization time from ``configuration``
        (``None`` when the adversary can prevent stabilization from it).
        The configuration must belong to the verified region."""
        return self._values.get(self._key_of(configuration))

    def is_certified_legitimate(self, configuration: Configuration) -> bool:
        """Whether ``configuration`` belongs to the certified attractor."""
        return self._key_of(configuration) in self._legitimate_keys

    def legitimate_configurations(self) -> List[Configuration]:
        """The decoded certified legitimate attractor (small instances)."""
        return [self._space.decode(key) for key in sorted(self._legitimate_keys)]

    def __repr__(self) -> str:
        return (
            f"VerificationResult({self.protocol_name!r}, {self.daemon_class!r}, "
            f"states={self.state_count}, exact_worst_case={self.exact_worst_case}, "
            f"stabilizes={self.stabilizes})"
        )


class SpeculationGapCertificate:
    """The exact Definition 4 gap on one instance.

    Both sides are exact: ``strong`` verifies the stronger daemon class
    (more schedules — central or distributed), ``weak`` the speculated
    frequent one (synchronous).  The gap factor mirrors
    :attr:`repro.core.SpeculationMeasurement.speculation_factor`:
    strong/weak exact worst cases, ``inf`` when the weak side stabilizes
    immediately, ``None`` when either side diverges.
    """

    __slots__ = ("strong", "weak")

    def __init__(self, strong: VerificationResult, weak: VerificationResult) -> None:
        self.strong = strong
        self.weak = weak

    @property
    def gap_factor(self) -> Optional[float]:
        """Exact strong/weak worst-case ratio (the speculation gap)."""
        strong, weak = self.strong.exact_worst_case, self.weak.exact_worst_case
        if strong is None or weak is None:
            return None
        if weak == 0:
            return float("inf") if strong > 0 else 1.0
        return strong / weak

    @property
    def speculation_pays(self) -> bool:
        """Whether the speculated (weak) daemon is strictly faster."""
        factor = self.gap_factor
        return factor is not None and factor > 1.0

    def __repr__(self) -> str:
        return (
            f"SpeculationGapCertificate(strong[{self.strong.daemon_class}]="
            f"{self.strong.exact_worst_case}, weak[{self.weak.daemon_class}]="
            f"{self.weak.exact_worst_case}, gap={self.gap_factor})"
        )
