"""The adversarial game solver: exact worst-case stabilization by fixpoint.

Definition 3 phrases stabilization as a two-player game: the daemon
(adversary) picks, at every configuration, any selection its class admits;
the protocol answers deterministically.  The stabilization time of a
configuration is the number of actions the *optimal* adversary can force
before the system reaches a configuration from which the specification is
guaranteed.  On the explicit transition systems of
:mod:`repro.verify.transitions` this game is solved exactly:

1. **Legitimate attractor** (greatest fixpoint).  The certified legitimate
   set ``L`` is the largest set of *safe* configurations closed under every
   daemon-class transition: start from all safe states and repeatedly
   discard any state with a successor outside the candidate set.  From
   every state of ``L`` all executions satisfy safety forever — the
   Definition 3 target.  (For the unison specification, whose safety *is*
   Γ₁ membership and whose Γ₁ is closed, ``L`` provably equals Γ₁; the
   solver recomputes it from the transition relation alone, which is what
   makes the closure check a certificate rather than an assumption.)

2. **Value iteration** (backward induction).  ``V(γ) = 0`` on ``L`` and
   ``V(γ) = 1 + max over successors`` elsewhere — the adversary maximizes.
   Values are propagated backwards: a state is finalized once all its
   successors are, so each transition is touched exactly once.

3. **Divergence**.  States never finalized are exactly those from which
   the adversary can avoid ``L`` forever (each has a successor in the same
   predicament, yielding an infinite ``L``-avoiding play).  A lasso
   counterexample — a stem into a cycle outside the attractor, preferring
   cycles that revisit unsafe configurations — is extracted as the
   machine-checkable witness of non-stabilization.

Exactness caveat: over a reachable region the numbers are exact *for that
region* (the closure contains every configuration any schedule can reach
from it); over :meth:`~repro.verify.TransitionSystem.explore_full` they are
exact over all initial configurations, full stop.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.protocol import Protocol
from ..core.specification import Specification
from ..core.state import Configuration
from ..exceptions import VerificationError
from .results import LassoCounterexample, SpeculationGapCertificate, VerificationResult
from .statespace import StateSpace
from .symmetry import SymmetryReducer
from .transitions import ExploredSystem, TransitionSystem, daemon_class_selections


def batched_supported(protocol: Protocol, specification: Specification) -> bool:
    """Re-exported probe (see :func:`repro.verify.batched.batched_supported`);
    imported lazily so the solver module itself never touches NumPy."""
    from .batched import batched_supported as probe

    return probe(protocol, specification)

__all__ = [
    "GameSolution",
    "batched_supported",
    "solve",
    "verify_stabilization",
    "exact_worst_case_stabilization",
    "exact_speculation_gap",
]


class GameSolution:
    """The solved game on one explored system (see the module docstring)."""

    __slots__ = ("system", "legitimate", "values", "diverging", "reducer")

    def __init__(
        self,
        system: ExploredSystem,
        legitimate: FrozenSet[int],
        values: Dict[int, int],
        diverging: FrozenSet[int],
        reducer=None,
    ) -> None:
        self.system = system
        self.legitimate = legitimate
        self.values = values
        self.diverging = diverging
        #: The symmetry reducer the system was explored under: keys are
        #: orbit representatives and lassos need concrete unrolling.
        self.reducer = reducer

    def worst_value_over(self, keys: Iterable[int]) -> Optional[int]:
        """Max value over ``keys`` — ``None`` if any of them diverges."""
        worst = 0
        for key in keys:
            value = self.values.get(key)
            if value is None:
                return None
            worst = max(worst, value)
        return worst

    @property
    def exact_worst_case(self) -> Optional[int]:
        """Worst value over the system's initial region."""
        return self.worst_value_over(self.system.initial_keys)

    # ------------------------------------------------------------------ #
    # Counterexample extraction
    # ------------------------------------------------------------------ #
    def lasso(self) -> Optional[LassoCounterexample]:
        """A stem-plus-cycle witness of divergence (``None`` if none exists).

        Starts from a diverging initial-region state when one exists, and
        steers towards unsafe diverging states so the cycle demonstrates a
        recurring safety violation whenever the region contains one.
        """
        system = self.system
        diverging = self.diverging
        if not diverging:
            return None
        start = next(
            (key for key in system.initial_keys if key in diverging),
            None,
        )
        if start is None:
            start = next(key for key in system.keys if key in diverging)
        # Distance (within the diverging region) to an unsafe diverging
        # state: walking along decreasing distances steers the lasso into a
        # safety-violating cycle when the region can reach one.
        unsafe = [key for key in diverging if not system.safe[key]]
        distance: Dict[int, int] = {key: 0 for key in unsafe}
        predecessors: Dict[int, List[int]] = {key: [] for key in diverging}
        for key in diverging:
            for successor in system.successors[key]:
                if successor in predecessors:
                    predecessors[successor].append(key)
        queue = deque(unsafe)
        while queue:
            key = queue.popleft()
            for predecessor in predecessors[key]:
                if predecessor not in distance:
                    distance[predecessor] = distance[key] + 1
                    queue.append(predecessor)

        def next_in_lasso(key: int) -> int:
            candidates = [s for s in system.successors[key] if s in diverging]
            # Every diverging state keeps a diverging successor (otherwise
            # value iteration would have finalized it).
            reachable = [s for s in candidates if s in distance]
            if reachable:
                return min(reachable, key=lambda s: (distance[s], s))
            return candidates[0]

        path: List[int] = []
        seen: Dict[int, int] = {}
        current = start
        while current not in seen:
            seen[current] = len(path)
            path.append(current)
            current = next_in_lasso(current)
        split = seen[current]
        stem_keys, cycle_keys = path[:split], path[split:]
        violates_safety = any(not self.system.safe[key] for key in cycle_keys)
        if self.reducer is not None:
            return self._concretize_lasso(stem_keys, cycle_keys, violates_safety)
        stem, stem_selections = self._decode_walk(stem_keys + cycle_keys[:1])
        cycle, cycle_selections = self._decode_walk(cycle_keys + [current])
        return LassoCounterexample(
            stem=stem[:-1] if stem_keys else [],
            cycle=cycle[:-1],
            stem_selections=stem_selections,
            cycle_selections=cycle_selections,
            violates_safety=violates_safety,
        )

    def _concretize_lasso(
        self,
        stem_keys: Sequence[int],
        cycle_keys: Sequence[int],
        violates_safety: bool,
    ) -> LassoCounterexample:
        """Unroll a quotient lasso into a genuinely replayable one.

        The quotient walk is over orbit representatives: the concrete
        successor of a representative need not be the representative of
        the next orbit, so decoding the quotient keys directly would not
        yield an execution.  Instead the walk is replayed with *concrete*
        configurations — each transition picks a selection whose concrete
        successor lands in the right orbit — and the cycle is followed
        until a (cycle position, concrete configuration) pair repeats.
        Each lap around the quotient cycle applies a fixed automorphism to
        the concrete trace, so a pair repeats within ``|G|`` laps and the
        concrete cycle covers every quotient position at least once
        (``violates_safety`` transfers: safety is orbit-invariant by the
        reducer's contract).
        """
        space = self.system.space
        start_key = stem_keys[0] if stem_keys else cycle_keys[0]
        current = space.decode(start_key)
        stem_configs: List[Configuration] = []
        stem_selections: List[FrozenSet] = []
        if stem_keys:  # an empty stem starts on the cycle: no step to take
            for target in list(stem_keys[1:]) + [cycle_keys[0]]:
                stem_configs.append(current)
                selection, current = self._concrete_step(current, target)
                stem_selections.append(selection)
        length = len(cycle_keys)
        walk_configs: List[Configuration] = []
        walk_selections: List[FrozenSet] = []
        seen: Dict[Tuple[int, int], int] = {}
        position = 0
        while (position, space.encode(current)) not in seen:
            seen[(position, space.encode(current))] = len(walk_configs)
            walk_configs.append(current)
            target = cycle_keys[(position + 1) % length]
            selection, current = self._concrete_step(current, target)
            walk_selections.append(selection)
            position = (position + 1) % length
        cycle_start = seen[(position, space.encode(current))]
        return LassoCounterexample(
            stem=stem_configs + walk_configs[:cycle_start],
            cycle=walk_configs[cycle_start:],
            stem_selections=stem_selections + walk_selections[:cycle_start],
            cycle_selections=walk_selections[cycle_start:],
            violates_safety=violates_safety,
        )

    def _concrete_step(
        self, configuration: Configuration, target_orbit_key: int
    ) -> Tuple[FrozenSet, Configuration]:
        """One concrete transition into the orbit ``target_orbit_key``."""
        space = self.system.space
        protocol = space.protocol
        reducer = self.reducer
        enabled, prepared = protocol.prepared_step(configuration)
        if not enabled:
            return frozenset(), configuration
        for selection in daemon_class_selections(
            self.system.daemon_class, enabled, max_selections=1 << 62
        ):
            successor, _records = protocol.apply(
                configuration, selection, prepared=prepared
            )
            if reducer.canonical_key(space.encode(successor)) == target_orbit_key:
                return selection, successor
        raise VerificationError(
            "failed to reconstruct a quotient lasso selection"
        )  # pragma: no cover - the walk came from the relation

    def _decode_walk(
        self, keys: Sequence[int]
    ) -> Tuple[List[Configuration], List[FrozenSet]]:
        """Decode a key walk and recover one selection per transition."""
        system = self.system
        space = system.space
        protocol = space.protocol
        configurations = [system.configuration(key) for key in keys]
        selections = []
        for position in range(len(keys) - 1):
            configuration, target = configurations[position], keys[position + 1]
            # Re-derive the concrete selection realizing this transition.
            enabled, prepared = protocol.prepared_step(configuration)
            if not enabled:
                selections.append(frozenset())
                continue
            # The transition already exists in the relation, so re-expansion
            # must not trip the selection cap the exploration ran under.
            for selection in daemon_class_selections(
                system.daemon_class, enabled, max_selections=1 << 62
            ):
                successor, _records = protocol.apply(
                    configuration, selection, prepared=prepared
                )
                if space.encode(successor) == target:
                    selections.append(selection)
                    break
            else:  # pragma: no cover - the walk came from the relation
                raise VerificationError("failed to reconstruct a lasso selection")
        return configurations, selections


def solve(system: ExploredSystem) -> GameSolution:
    """Solve the adversarial stabilization game on an explored system."""
    successors = system.successors
    safe = system.safe
    # Reverse edges once; both fixpoints below consume them.
    predecessors: Dict[int, List[int]] = {key: [] for key in system.keys}
    for key in system.keys:
        for successor in successors[key]:
            predecessors[successor].append(key)

    # 1. Greatest fixpoint: peel unsafe-reachable states off the safe set.
    legitimate = {key for key in system.keys if safe[key]}
    worklist = [key for key in system.keys if key not in legitimate]
    while worklist:
        lost = worklist.pop()
        for predecessor in predecessors[lost]:
            if predecessor in legitimate:
                legitimate.discard(predecessor)
                worklist.append(predecessor)

    # 2. Backward value iteration (adversary maximizes time to L).
    values: Dict[int, int] = {key: 0 for key in legitimate}
    pending: Dict[int, int] = {
        key: len(successors[key]) for key in system.keys if key not in legitimate
    }
    queue = deque(legitimate)
    while queue:
        finalized = queue.popleft()
        for predecessor in predecessors[finalized]:
            remaining = pending.get(predecessor)
            if remaining is None:
                continue
            remaining -= 1
            if remaining:
                pending[predecessor] = remaining
            else:
                del pending[predecessor]
                values[predecessor] = 1 + max(
                    values[successor] for successor in successors[predecessor]
                )
                queue.append(predecessor)

    # 3. Whatever was never finalized diverges.
    diverging = frozenset(pending)
    return GameSolution(
        system=system,
        legitimate=frozenset(legitimate),
        values=values,
        diverging=diverging,
        reducer=getattr(system, "reducer", None),
    )


# ---------------------------------------------------------------------- #
# High-level entry points
# ---------------------------------------------------------------------- #
def verify_stabilization(
    protocol: Protocol,
    specification: Specification,
    daemon_class: str = "synchronous",
    initial: Optional[Iterable[Configuration]] = None,
    space: Optional[StateSpace] = None,
    max_states: Optional[int] = None,
    max_selections: Optional[int] = None,
    engine: str = "auto",
    symmetry=False,
) -> VerificationResult:
    """Exactly verify one (protocol, specification, daemon class) instance.

    ``initial=None`` verifies the **full product space** — every initial
    configuration the transient-fault model allows — and is only feasible
    when the space fits the enumeration cap.  Passing an iterable of
    configurations verifies the reachable closure of that region instead:
    exact for every schedule of the daemon class from those initials, and
    feasible even when the product space is astronomical (SSME).

    ``engine`` selects the exploration backend: ``"dict"`` is the
    pure-Python reference path, ``"batched"`` the NumPy-vectorized one
    (:mod:`repro.verify.batched`), and ``"auto"`` (default) picks batched
    whenever the protocol declares the array capabilities and NumPy is
    importable — both engines produce bit-identical results by design, so
    the choice is purely a matter of speed.

    ``symmetry`` opts into the automorphism quotient
    (:mod:`repro.verify.symmetry`): ``False`` (default) explores concrete
    configurations, ``True`` requires a sound reducer (raising when the
    instance declares none), ``"auto"`` quotients when sound and falls back
    to concrete exploration otherwise.  Under a quotient, state, transition
    and legitimate *counts* are per-orbit; per-configuration values and the
    stabilization verdict are preserved exactly.
    """
    if engine not in ("auto", "dict", "batched"):
        raise VerificationError(
            f"unknown engine {engine!r}; known: auto, dict, batched"
        )
    if symmetry not in (False, True, "auto"):
        raise VerificationError(
            f"unknown symmetry mode {symmetry!r}; known: False, True, 'auto'"
        )
    space = space if space is not None else StateSpace(protocol)
    reducer = None
    if symmetry is not False:
        reducer = SymmetryReducer.for_instance(protocol, specification, space)
        if reducer is None and symmetry is True:
            raise VerificationError(
                f"no sound symmetry reducer for protocol {protocol.name!r} "
                f"under specification {specification.name!r}: both must "
                "declare vertex_symmetric (and the automorphism group must "
                "be non-trivial)"
            )
    kwargs = {}
    if max_states is not None:
        kwargs["max_states"] = max_states
    if max_selections is not None:
        kwargs["max_selections"] = max_selections
    use_batched = engine == "batched"
    if engine == "auto" and batched_supported(protocol, specification):
        use_batched = True
    if use_batched:
        try:
            return _verify_batched(
                protocol,
                specification,
                daemon_class,
                initial,
                space,
                reducer,
                kwargs,
            )
        except VerificationError:
            if engine == "batched":
                raise
            # auto: the cheap probe passed but construction found a reason
            # the batched path cannot run (e.g. a codec layout too sparse
            # to table) — the dict engine below is always available.
    transition_system = TransitionSystem(
        protocol, specification, daemon_class, space=space, reducer=reducer, **kwargs
    )
    if initial is None:
        system = transition_system.explore_full()
    else:
        system = transition_system.explore(initial)
    solution = solve(system)
    exact = solution.exact_worst_case
    stabilizes = exact is not None
    return VerificationResult(
        protocol_name=protocol.name,
        specification_name=specification.name,
        daemon_class=system.daemon_class,
        exhaustive=system.exhaustive,
        state_count=system.state_count,
        transition_count=system.transition_count,
        legitimate_count=len(solution.legitimate),
        diverging_count=len(solution.diverging),
        exact_worst_case=exact,
        stabilizes=stabilizes,
        counterexample=None if stabilizes else solution.lasso(),
        values=solution.values,
        legitimate_keys=solution.legitimate,
        space=transition_system.space,
        reducer=reducer,
    )


def _verify_batched(
    protocol: Protocol,
    specification: Specification,
    daemon_class: str,
    initial: Optional[Iterable[Configuration]],
    space: StateSpace,
    reducer,
    kwargs: Dict,
) -> VerificationResult:
    """The batched-engine body of :func:`verify_stabilization`."""
    from .batched import (
        BatchedTransitionSystem,
        _ArrayKeySet,
        _ArrayValues,
        solve_arrays,
    )

    transition_system = BatchedTransitionSystem(
        protocol, specification, daemon_class, space=space, reducer=reducer, **kwargs
    )
    if initial is None:
        system = transition_system.explore_full()
    else:
        system = transition_system.explore(initial)
    solution = solve_arrays(system)
    exact = solution.exact_worst_case
    stabilizes = exact is not None
    return VerificationResult(
        protocol_name=protocol.name,
        specification_name=specification.name,
        daemon_class=system.daemon_class,
        exhaustive=system.exhaustive,
        state_count=system.state_count,
        transition_count=system.transition_count,
        legitimate_count=solution.legitimate_count,
        diverging_count=solution.diverging_count,
        exact_worst_case=exact,
        stabilizes=stabilizes,
        counterexample=None if stabilizes else solution.lasso(),
        values=_ArrayValues(solution),
        legitimate_keys=_ArrayKeySet(solution),
        space=space,
        reducer=reducer,
    )


def exact_worst_case_stabilization(
    protocol: Protocol,
    specification: Specification,
    daemon_class: str = "synchronous",
    initial: Optional[Iterable[Configuration]] = None,
    **kwargs,
) -> Optional[int]:
    """Shorthand: just the exact worst-case value of
    :func:`verify_stabilization` (``None`` = the adversary wins forever)."""
    return verify_stabilization(
        protocol, specification, daemon_class, initial, **kwargs
    ).exact_worst_case


def exact_speculation_gap(
    protocol: Protocol,
    specification: Specification,
    strong_class: str = "central",
    weak_class: str = "synchronous",
    initial: Optional[Iterable[Configuration]] = None,
    space: Optional[StateSpace] = None,
    max_states: Optional[int] = None,
    max_selections: Optional[int] = None,
    engine: str = "auto",
    symmetry=False,
) -> SpeculationGapCertificate:
    """The exact Definition 4 gap: both daemon classes solved on the *same*
    instance and the *same* initial region, no sampling on either side."""
    initial = list(initial) if initial is not None else None
    space = space if space is not None else StateSpace(protocol)
    strong = verify_stabilization(
        protocol,
        specification,
        strong_class,
        initial,
        space=space,
        max_states=max_states,
        max_selections=max_selections,
        engine=engine,
        symmetry=symmetry,
    )
    weak = verify_stabilization(
        protocol,
        specification,
        weak_class,
        initial,
        space=space,
        max_states=max_states,
        max_selections=max_selections,
        engine=engine,
        symmetry=symmetry,
    )
    return SpeculationGapCertificate(strong=strong, weak=weak)
