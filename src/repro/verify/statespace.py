"""Enumerable configuration spaces with integer-key packing.

The exact model checker stores millions of configurations, so it cannot
afford one dict (plus hash of a frozenset of items) per configuration the
way :class:`~repro.core.Configuration` does.  A :class:`StateSpace` instead
packs every configuration of a finite-state protocol into a single
**mixed-radix integer key**: vertex ``i``'s state is mapped to its index in
the protocol's :meth:`~repro.core.Protocol.vertex_state_space` domain, and
the indices are combined positionally (``key = Σ index_i · multiplier_i``).
Keys are exact, total over the product space, hashable, compact, and cheap
to compare — the properties every explicit-state set/queue below needs.

When NumPy and the protocol's array codec (:meth:`~repro.core.Protocol.
array_codec`, the PR 3 machinery) are available and every domain is a
contiguous integer range, bulk packing goes through the codec: a batch of
configurations becomes one ``(m, n·width)`` int64 array and one matrix
product with the multiplier vector.  A pure-Python per-vertex path computes
the identical keys without NumPy (it stays an optional dependency), and is
also the single-configuration fast path — for one configuration a dict
lookup per vertex beats building an array.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.protocol import Protocol
from ..core.state import Configuration
from ..core.vector import numpy_available
from ..exceptions import VerificationError
from ..types import VertexId, VertexStateLike

__all__ = ["StateSpace", "DEFAULT_MAX_ENUMERATED"]

#: Default ceiling on full-space enumeration (``StateSpace.keys``): beyond
#: this, exhaustive verification would not finish interactively and callers
#: must either shrink the instance or verify a reachable region instead.
DEFAULT_MAX_ENUMERATED = 2_000_000


class StateSpace:
    """The product of the per-vertex state spaces of a finite-state protocol.

    Parameters
    ----------
    protocol:
        A protocol whose :meth:`~repro.core.Protocol.vertex_state_space`
        returns a finite domain for every vertex.
    max_enumerated:
        Ceiling on :meth:`keys`/:meth:`configurations` (full enumeration
        only; :meth:`encode`/:meth:`decode` work for any size).

    Examples
    --------
    >>> from repro.mutex import DijkstraTokenRing
    >>> space = StateSpace(DijkstraTokenRing.on_ring(3))
    >>> space.size  # K^n = 4^3
    64
    >>> space.decode(space.encode({0: 1, 1: 3, 2: 0}))
    Configuration({0: 1, 1: 3, 2: 0})
    """

    __slots__ = (
        "_protocol",
        "_vertices",
        "_domains",
        "_value_index",
        "_multipliers",
        "_size",
        "_max_enumerated",
        "_int_ranges",
    )

    def __init__(
        self, protocol: Protocol, max_enumerated: int = DEFAULT_MAX_ENUMERATED
    ) -> None:
        self._protocol = protocol
        self._vertices: Tuple[VertexId, ...] = tuple(protocol.graph.sorted_vertices())
        domains: List[Tuple[VertexStateLike, ...]] = []
        for vertex in self._vertices:
            domain = protocol.vertex_state_space(vertex)
            if domain is None:
                raise VerificationError(
                    f"protocol {protocol.name!r} declares no finite state space "
                    f"for vertex {vertex!r} (vertex_state_space returned None); "
                    "exact verification needs the capability"
                )
            domain = tuple(domain)
            if not domain:
                raise VerificationError(
                    f"empty state space for vertex {vertex!r}"
                )
            if len(set(domain)) != len(domain):
                raise VerificationError(
                    f"state space of vertex {vertex!r} lists duplicate states"
                )
            domains.append(domain)
        self._domains = tuple(domains)
        self._value_index: Tuple[Dict[VertexStateLike, int], ...] = tuple(
            {state: index for index, state in enumerate(domain)}
            for domain in domains
        )
        multipliers: List[int] = []
        size = 1
        for domain in domains:
            multipliers.append(size)
            size *= len(domain)
        self._multipliers = tuple(multipliers)
        self._size = size
        self._max_enumerated = max_enumerated
        # Contiguous-int domains (cherry values, Dijkstra counters) allow the
        # arithmetic index ``state - lo`` and hence the codec bulk path.
        int_ranges: List[Optional[int]] = []
        for domain in domains:
            if all(isinstance(s, int) and not isinstance(s, bool) for s in domain) and list(
                domain
            ) == list(range(domain[0], domain[0] + len(domain))):
                int_ranges.append(domain[0])
            else:
                int_ranges.append(None)
        self._int_ranges = tuple(int_ranges)

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def protocol(self) -> Protocol:
        """The protocol whose configurations this space packs."""
        return self._protocol

    @property
    def vertices(self) -> Tuple[VertexId, ...]:
        """The vertices in packing order (the graph's sorted order)."""
        return self._vertices

    @property
    def size(self) -> int:
        """Number of configurations in the product space."""
        return self._size

    @property
    def domains(self) -> Tuple[Tuple[VertexStateLike, ...], ...]:
        """Per-vertex declared domains, aligned with :attr:`vertices`."""
        return self._domains

    @property
    def multipliers(self) -> Tuple[int, ...]:
        """Mixed-radix positional multipliers, aligned with :attr:`vertices`
        (``key = Σ index_i · multipliers[i]``)."""
        return self._multipliers

    def domain(self, vertex: VertexId) -> Tuple[VertexStateLike, ...]:
        """The declared state space of ``vertex``."""
        try:
            position = self._vertices.index(vertex)
        except ValueError:
            raise VerificationError(f"unknown vertex {vertex!r}") from None
        return self._domains[position]

    # ------------------------------------------------------------------ #
    # Packing
    # ------------------------------------------------------------------ #
    def encode(self, configuration: Mapping[VertexId, VertexStateLike]) -> int:
        """The mixed-radix integer key of ``configuration``."""
        key = 0
        try:
            for position, vertex in enumerate(self._vertices):
                key += self._value_index[position][configuration[vertex]] * self._multipliers[position]
        except KeyError:
            # Distinguish a missing vertex from an out-of-domain state.
            for position, vertex in enumerate(self._vertices):
                if vertex not in configuration:
                    raise VerificationError(
                        f"configuration has no state for vertex {vertex!r}"
                    ) from None
                if configuration[vertex] not in self._value_index[position]:
                    raise VerificationError(
                        f"state {configuration[vertex]!r} of vertex {vertex!r} "
                        "is outside the declared state space"
                    ) from None
            raise
        return key

    def decode(self, key: int) -> Configuration:
        """The configuration packed as ``key`` (inverse of :meth:`encode`)."""
        if not 0 <= key < self._size:
            raise VerificationError(
                f"key {key} outside the state space (size {self._size})"
            )
        states: Dict[VertexId, VertexStateLike] = {}
        for position, vertex in enumerate(self._vertices):
            domain = self._domains[position]
            key, index = divmod(key, len(domain))
            states[vertex] = domain[index]
        return Configuration._from_trusted_dict(states)

    def encode_many(
        self, configurations: Sequence[Mapping[VertexId, VertexStateLike]]
    ) -> List[int]:
        """The keys of a batch of configurations.

        Routes through the protocol's array codec when NumPy is importable,
        the protocol declares one, and every domain is a contiguous integer
        range — one ``(m, n·width)`` encode plus a matrix product instead of
        ``m·n`` dict lookups.  Falls back to per-configuration
        :meth:`encode` (identical keys) otherwise — including for small
        batches, where the per-vertex loop beats the array setup cost —
        so NumPy stays optional.
        """
        if len(configurations) >= 8 and all(lo is not None for lo in self._int_ranges):
            keys = self._encode_many_codec(configurations)
            if keys is not None:
                return keys
        return [self.encode(configuration) for configuration in configurations]

    def _encode_many_codec(
        self, configurations: Sequence[Mapping[VertexId, VertexStateLike]]
    ) -> Optional[List[int]]:
        if not numpy_available():
            return None
        codec = self._protocol.array_codec()
        if codec is None or codec.width != 1:
            # Width-1 codecs (IntCodec) line up one column per vertex with
            # the mixed-radix layout; wider codecs would need a per-column
            # radix split that none of the library's protocols requires yet.
            return None
        import numpy as np

        try:
            rows = np.stack(
                [codec.encode(configuration, self._vertices)[:, 0] for configuration in configurations]
            )
        except (TypeError, ValueError, OverflowError):
            return None
        lows = np.asarray(self._int_ranges, dtype=np.int64)
        sizes = np.asarray([len(d) for d in self._domains], dtype=np.int64)
        indices = rows - lows
        out_of_range = (indices < 0) | (indices >= sizes)
        if out_of_range.any():
            # Name the offending vertex and value: a generic message on a
            # thousand-configuration batch is undebuggable, and silently
            # producing a wrong packed key would be worse.
            row, column = (int(x) for x in np.argwhere(out_of_range)[0])
            vertex = self._vertices[column]
            raise VerificationError(
                f"state {configurations[row][vertex]!r} of vertex {vertex!r} "
                "is outside the declared state space"
            )
        # Object dtype: multipliers (and hence keys) can exceed int64 on
        # large products, and Python ints never overflow.
        multipliers = np.asarray(self._multipliers, dtype=object)
        return [int(k) for k in (indices.astype(object) * multipliers).sum(axis=1)]

    # ------------------------------------------------------------------ #
    # Enumeration
    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[int]:
        """Every key of the product space, in increasing order.

        Guarded by ``max_enumerated``: exhaustive enumeration beyond the cap
        raises instead of silently running forever — shrink the instance or
        verify a reachable region (:meth:`repro.verify.TransitionSystem.explore`).
        """
        if self._size > self._max_enumerated:
            raise VerificationError(
                f"state space has {self._size} configurations, above the "
                f"enumeration cap of {self._max_enumerated}; verify a "
                "reachable region instead or raise max_enumerated"
            )
        return iter(range(self._size))

    def configurations(self) -> Iterator[Configuration]:
        """Every configuration of the product space (same cap as :meth:`keys`)."""
        return (self.decode(key) for key in self.keys())

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StateSpace(n={len(self._vertices)}, size={self._size})"
