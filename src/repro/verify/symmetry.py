"""Symmetry quotient for the exact checker: canonical keys under graph
automorphisms.

On a ring, rotating (or reflecting) a configuration of an *anonymous*
protocol yields a configuration with exactly the same future: every rule
reads only the local state and the neighbour state multiset, so an
automorphism ``g`` maps executions to executions step for step.  When the
specification's safety predicate is equally invariant, the whole
stabilization game is equivariant — ``V(g·γ) = V(γ)`` for every
configuration and the legitimate attractor is a union of orbits.  The
checker may therefore explore one representative per orbit: a
:class:`SymmetryReducer` canonicalizes every packed key to the minimum key
of its orbit *before* dedup, dividing states stored and expanded by up to
``|Aut(g)|`` (``2n`` on rings).

Both preconditions are opt-in capability flags —
:attr:`repro.core.Protocol.vertex_symmetric` and
:attr:`repro.core.Specification.vertex_symmetric` — because they are
semantic properties no amount of introspection can prove: SSME *looks*
symmetric (it subclasses the symmetric unison) but its privileged values
are spaced by vertex identity, which breaks equivariance of the
mutual-exclusion layer.  :meth:`SymmetryReducer.for_instance` returns
``None`` unless both flags are set, the per-vertex domains are aligned
under every automorphism, and the group is non-trivial.

The quotient changes what counts *mean*: state/transition/legitimate
counts are per-orbit, not per-configuration.  Per-state values are
preserved exactly (the Hypothesis suite pins quotient == full worst-case
values on rings), and divergence witnesses are mapped back to concrete
executions by :func:`unroll_quotient_walk` so lassos still replay
transition-by-transition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.protocol import Protocol
from ..core.specification import Specification
from ..core.vector import numpy_available
from ..exceptions import VerificationError
from ..graphs import Graph
from ..types import VertexId
from .statespace import StateSpace

__all__ = ["SymmetryReducer", "ring_automorphisms"]


def _ring_cycle_order(graph: Graph) -> Optional[List[VertexId]]:
    """The vertices of ``graph`` in cyclic order, or ``None`` if it is not
    a ring (connected, n >= 3, every degree exactly 2)."""
    if graph.n < 3:
        return None
    if any(graph.degree(v) != 2 for v in graph.vertices):
        return None
    start = graph.sorted_vertices()[0]
    cycle = [start]
    previous: Optional[VertexId] = None
    current = start
    while True:
        neighbors = [u for u in graph.neighbors(current) if u != previous]
        # On a degree-2 graph there is exactly one way forward (two from
        # the start; either orientation works, pick deterministically).
        following = min(neighbors, key=repr)
        if following == start:
            break
        cycle.append(following)
        previous, current = current, following
    if len(cycle) != graph.n:
        return None  # two disjoint cycles: degree-2 but disconnected
    return cycle


def ring_automorphisms(graph: Graph) -> Optional[List[Dict[VertexId, VertexId]]]:
    """Closed-form automorphism group of a ring: the ``2n`` rotations and
    reflections of its cyclic order (``None`` when ``graph`` is no ring).

    The generic :meth:`repro.graphs.Graph.automorphisms` backtracking finds
    the same group; the closed form skips the search entirely on the one
    topology the paper's experiments sweep.
    """
    cycle = _ring_cycle_order(graph)
    if cycle is None:
        return None
    n = len(cycle)
    maps: List[Dict[VertexId, VertexId]] = []
    for shift in range(n):
        maps.append({cycle[i]: cycle[(i + shift) % n] for i in range(n)})
        maps.append({cycle[i]: cycle[(shift - i) % n] for i in range(n)})
    return maps


class SymmetryReducer:
    """Canonicalizes packed keys to the minimum key of their orbit.

    Parameters
    ----------
    space:
        The packed configuration space the keys live in.
    vertex_maps:
        The automorphism group as vertex -> image mappings (identity
        included or not; duplicates are removed).  Every map must align the
        per-vertex domains exactly — permuting state *indices* between
        vertices is only meaningful when the domains agree elementwise.
    """

    __slots__ = ("_space", "_perms", "_radices", "_multipliers")

    def __init__(
        self, space: StateSpace, vertex_maps: Iterable[Dict[VertexId, VertexId]]
    ) -> None:
        vertices = space.vertices
        position = {v: i for i, v in enumerate(vertices)}
        domains = [space.domain(v) for v in vertices]
        perms: List[Tuple[int, ...]] = []
        for vertex_map in vertex_maps:
            # b = a[perm]: vertex order[j] receives the state of g(order[j]).
            perm = tuple(position[vertex_map[v]] for v in vertices)
            for j, source in enumerate(perm):
                if domains[j] != domains[source]:
                    raise VerificationError(
                        f"automorphism maps vertex {vertices[source]!r} onto "
                        f"{vertices[j]!r} but their declared state spaces "
                        "differ; the symmetry quotient needs aligned domains"
                    )
            perms.append(perm)
        if not perms:
            raise VerificationError("the automorphism group is empty")
        # The identity is always an automorphism; guaranteeing its presence
        # lets the array canonicalization initialize its running minimum
        # from the unpermuted matrix (identity sorts first: it is the
        # lexicographically smallest permutation).
        perms.append(tuple(range(len(vertices))))
        unique = sorted(set(perms))
        self._space = space
        self._perms = tuple(unique)
        self._radices = tuple(len(domain) for domain in domains)
        self._multipliers = tuple(space.multipliers)

    @property
    def space(self) -> StateSpace:
        """The packed space the reducer canonicalizes over."""
        return self._space

    @property
    def group_size(self) -> int:
        """Number of (distinct) automorphisms, identity included."""
        return len(self._perms)

    @property
    def permutations(self) -> Tuple[Tuple[int, ...], ...]:
        """Position permutations: ``b = a[perm]`` per automorphism."""
        return self._perms

    # ------------------------------------------------------------------ #
    # Construction from an instance
    # ------------------------------------------------------------------ #
    @classmethod
    def for_instance(
        cls,
        protocol: Protocol,
        specification: Specification,
        space: Optional[StateSpace] = None,
    ) -> Optional["SymmetryReducer"]:
        """The reducer for an instance, or ``None`` when quotienting is
        unsound (either capability flag unset), impossible (domains not
        aligned under the group) or pointless (trivial group)."""
        if not (protocol.vertex_symmetric and specification.vertex_symmetric):
            return None
        space = space if space is not None else StateSpace(protocol)
        graph = protocol.graph
        vertex_maps = ring_automorphisms(graph)
        if vertex_maps is None:
            vertex_maps = graph.automorphisms()
        try:
            reducer = cls(space, vertex_maps)
        except VerificationError:
            return None
        if reducer.group_size <= 1:
            return None
        return reducer

    # ------------------------------------------------------------------ #
    # Canonicalization (pure Python — NumPy stays optional)
    # ------------------------------------------------------------------ #
    def _indices_of_key(self, key: int) -> List[int]:
        indices: List[int] = []
        for radix in self._radices:
            key, index = divmod(key, radix)
            indices.append(index)
        return indices

    def _key_of_indices(self, indices: Sequence[int]) -> int:
        key = 0
        for index, multiplier in zip(indices, self._multipliers):
            key += index * multiplier
        return key

    def canonical_key(self, key: int) -> int:
        """The minimum key of ``key``'s orbit (idempotent by construction)."""
        indices = self._indices_of_key(key)
        best = key
        for perm in self._perms:
            candidate = self._key_of_indices([indices[j] for j in perm])
            if candidate < best:
                best = candidate
        return best

    def canonical_keys(self, keys: Iterable[int]) -> List[int]:
        """Bulk :meth:`canonical_key`."""
        return [self.canonical_key(key) for key in keys]

    def orbit_keys(self, key: int) -> List[int]:
        """Every distinct key of ``key``'s orbit, ascending."""
        indices = self._indices_of_key(key)
        return sorted(
            {self._key_of_indices([indices[j] for j in perm]) for perm in self._perms}
        )

    # ------------------------------------------------------------------ #
    # Array canonicalization (the batched checker's hot path)
    # ------------------------------------------------------------------ #
    def permutation_matrix(self):
        """The ``(|G|, n)`` int64 permutation matrix for array gathers."""
        if not numpy_available():  # pragma: no cover - callers gate on numpy
            raise VerificationError("array canonicalization requires NumPy")
        import numpy as np

        return np.asarray(self._perms, dtype=np.int64)

    def canonicalize_index_matrix(self, index_matrix, packer):
        """Canonical per-orbit representative of every row of an ``(m, n)``
        domain-index matrix, chosen as the row with the minimum mixed-radix
        key (ties impossible: equal keys are equal rows).

        ``packer`` supplies :meth:`~repro.verify.batched.ArrayPacker.
        key_columns` — grouped int64 key columns whose lexicographic order
        equals the numeric key order even when the full key overflows
        int64.  Returns the canonical ``(m, n)`` matrix.
        """
        import numpy as np

        perm_matrix = self.permutation_matrix()
        m = index_matrix.shape[0]
        best_cols = packer.key_columns(index_matrix)
        best_perm = np.zeros(m, dtype=np.int64)
        for g in range(perm_matrix.shape[0]):
            permuted = index_matrix[:, perm_matrix[g]]
            cols = packer.key_columns(permuted)
            better = _lex_less(cols, best_cols)
            if better.any():
                best_cols[better] = cols[better]
                best_perm[better] = g
        return index_matrix[
            np.arange(m, dtype=np.int64)[:, None], perm_matrix[best_perm]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SymmetryReducer(group_size={self.group_size}, n={len(self._radices)})"


def _lex_less(left, right):
    """Row-wise ``left < right`` for ``(m, C)`` column matrices compared
    lexicographically, most-significant column last (mixed-radix layout:
    later groups hold higher-significance digits)."""
    import numpy as np

    m = left.shape[0]
    less = np.zeros(m, dtype=bool)
    equal_so_far = np.ones(m, dtype=bool)
    for c in range(left.shape[1] - 1, -1, -1):
        column_less = left[:, c] < right[:, c]
        less |= equal_so_far & column_less
        equal_so_far &= left[:, c] == right[:, c]
    return less
