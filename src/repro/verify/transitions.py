"""Daemon-class transition systems over packed configuration keys.

Sampling runs one schedule per seed; exact verification must consider *all*
schedules a daemon class admits.  A :class:`TransitionSystem` expands, per
configuration, the full successor set induced by a daemon class:

* ``"synchronous"`` — the unique dense step (every enabled vertex fires);
* ``"central"`` — one enabled vertex per step (all ``|enabled|`` choices);
* ``"distributed"`` — every non-empty subset of the enabled set, the unfair
  distributed daemon ``ud`` of the paper (``2^|enabled| - 1`` choices,
  guarded by a configurable cap so the expansion stays explicit-state).

Successors are computed with the same single-step primitives every
simulation engine is built on — :meth:`repro.core.Protocol.prepared_step`
evaluates each guard once per vertex, :meth:`repro.core.Protocol.apply`
fires a selection on the shared evaluations — so the expanded relation is
the operational semantics of Section 2 by construction, not a re-encoding
of it.  Terminal configurations (no enabled vertex) get a self-loop: an
execution that reaches one repeats it forever, which is exactly how the
stabilization semantics treats them.

The expansion works in two modes.  :meth:`TransitionSystem.explore` builds
the *reachable closure* of an initial region — every configuration any
schedule of the class can reach from the region — which is exact for
worst-case analysis over that region while never enumerating the full
product space (SSME's clock makes the product astronomically large even on
8 vertices, but the closed region a workload reaches stays tiny).
:meth:`TransitionSystem.explore_full` expands the entire product space,
giving verification over *all* initial configurations on instances small
enough to enumerate.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.protocol import Protocol
from ..core.specification import Specification
from ..core.state import Configuration
from ..exceptions import VerificationError
from ..types import VertexId
from .statespace import StateSpace

__all__ = [
    "DAEMON_CLASSES",
    "ExploredSystem",
    "TransitionSystem",
    "daemon_class_selections",
]

#: The daemon classes the checker can expand, weakest to strongest.
DAEMON_CLASSES = ("synchronous", "central", "distributed")

#: Default ceiling on reachable-region exploration.
DEFAULT_MAX_STATES = 500_000

#: Default ceiling on per-configuration selections (distributed class).
DEFAULT_MAX_SELECTIONS = 256


def daemon_class_selections(
    daemon_class: str,
    enabled: FrozenSet[VertexId],
    max_selections: int = DEFAULT_MAX_SELECTIONS,
) -> List[FrozenSet[VertexId]]:
    """Every selection the daemon class admits for ``enabled`` (non-empty).

    The order is deterministic (repr-sorted vertices, subsets by size then
    lexicographically), so explorations — and therefore every exact value
    derived from them — are reproducible.
    """
    if daemon_class not in DAEMON_CLASSES:
        raise VerificationError(
            f"unknown daemon class {daemon_class!r}; known: {', '.join(DAEMON_CLASSES)}"
        )
    if not enabled:
        return []
    if daemon_class == "synchronous":
        return [enabled]
    ordered = sorted(enabled, key=repr)
    if daemon_class == "central":
        return [frozenset({vertex}) for vertex in ordered]
    count = (1 << len(ordered)) - 1
    if count > max_selections:
        raise VerificationError(
            f"distributed daemon class admits {count} selections for an "
            f"enabled set of {len(ordered)} vertices, above the cap of "
            f"{max_selections}; raise max_selections or verify a smaller "
            "instance"
        )
    return [
        frozenset(combination)
        for size in range(1, len(ordered) + 1)
        for combination in itertools.combinations(ordered, size)
    ]


class ExploredSystem:
    """An explicitly expanded transition system over packed keys.

    Attributes
    ----------
    keys:
        Explored keys in discovery order.
    successors:
        ``key -> tuple of successor keys`` (deduplicated, deterministic
        order; terminal keys map to ``(key,)``).
    safe:
        ``key -> bool``, the specification's safety verdict per state.
    initial_keys:
        The keys of the initial region (all keys in exhaustive mode).
    """

    __slots__ = (
        "space",
        "daemon_class",
        "keys",
        "successors",
        "safe",
        "initial_keys",
        "terminal_keys",
        "exhaustive",
        "reducer",
    )

    def __init__(
        self,
        space: StateSpace,
        daemon_class: str,
        keys: List[int],
        successors: Dict[int, Tuple[int, ...]],
        safe: Dict[int, bool],
        initial_keys: List[int],
        terminal_keys: FrozenSet[int],
        exhaustive: bool,
        reducer=None,
    ) -> None:
        self.space = space
        self.daemon_class = daemon_class
        self.keys = keys
        self.successors = successors
        self.safe = safe
        self.initial_keys = initial_keys
        self.terminal_keys = terminal_keys
        self.exhaustive = exhaustive
        #: The symmetry reducer the exploration quotiented under (``None``
        #: when keys are concrete configurations, not orbit representatives).
        self.reducer = reducer

    @property
    def state_count(self) -> int:
        """Number of explored configurations."""
        return len(self.keys)

    @property
    def transition_count(self) -> int:
        """Number of explored transitions (after per-state deduplication)."""
        return sum(len(successors) for successors in self.successors.values())

    def configuration(self, key: int) -> Configuration:
        """Decode ``key`` back into a configuration."""
        return self.space.decode(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ExploredSystem({self.daemon_class!r}, states={self.state_count}, "
            f"transitions={self.transition_count}, exhaustive={self.exhaustive})"
        )


class TransitionSystem:
    """Expands a protocol's transition relation under a daemon class."""

    __slots__ = (
        "_protocol",
        "_specification",
        "_space",
        "_daemon_class",
        "_max_states",
        "_max_selections",
        "_reducer",
    )

    def __init__(
        self,
        protocol: Protocol,
        specification: Specification,
        daemon_class: str = "synchronous",
        space: Optional[StateSpace] = None,
        max_states: int = DEFAULT_MAX_STATES,
        max_selections: int = DEFAULT_MAX_SELECTIONS,
        reducer=None,
    ) -> None:
        if daemon_class not in DAEMON_CLASSES:
            raise VerificationError(
                f"unknown daemon class {daemon_class!r}; known: {', '.join(DAEMON_CLASSES)}"
            )
        self._protocol = protocol
        self._specification = specification
        self._space = space if space is not None else StateSpace(protocol)
        self._daemon_class = daemon_class
        self._max_states = max_states
        self._max_selections = max_selections
        # Optional SymmetryReducer: every discovered key is canonicalized
        # to its orbit representative before dedup, so the exploration
        # builds the quotient system (soundness is the reducer's contract,
        # see repro.verify.symmetry).
        self._reducer = reducer

    @property
    def space(self) -> StateSpace:
        """The packed configuration space."""
        return self._space

    @property
    def daemon_class(self) -> str:
        """The daemon class being expanded."""
        return self._daemon_class

    # ------------------------------------------------------------------ #
    # Per-configuration expansion
    # ------------------------------------------------------------------ #
    def successor_configurations(
        self, configuration: Configuration
    ) -> List[Tuple[Optional[FrozenSet[VertexId]], Configuration]]:
        """All ``(selection, successor)`` pairs of one configuration.

        A terminal configuration yields the single pair
        ``(None, configuration)`` — the implicit self-loop.
        """
        protocol = self._protocol
        enabled, prepared = protocol.prepared_step(configuration)
        if not enabled:
            return [(None, configuration)]
        pairs: List[Tuple[Optional[FrozenSet[VertexId]], Configuration]] = []
        for selection in daemon_class_selections(
            self._daemon_class, enabled, self._max_selections
        ):
            successor, _records = protocol.apply(configuration, selection, prepared=prepared)
            pairs.append((selection, successor))
        return pairs

    # ------------------------------------------------------------------ #
    # Region and full expansion
    # ------------------------------------------------------------------ #
    def explore(self, initial: Iterable[Configuration]) -> ExploredSystem:
        """The reachable closure of ``initial`` under the daemon class."""
        initial_keys = self._space.encode_many(list(initial))
        if not initial_keys:
            raise VerificationError("the initial region is empty")
        if self._reducer is not None:
            initial_keys = self._reducer.canonical_keys(initial_keys)
        return self._expand(
            dict.fromkeys(initial_keys), list(dict.fromkeys(initial_keys)), exhaustive=False
        )

    def explore_full(self) -> ExploredSystem:
        """The full product space (guarded by the space's enumeration cap)."""
        if self._space.size > self._max_states:
            raise VerificationError(
                f"full state space has {self._space.size} configurations, above "
                f"the exploration cap of {self._max_states}"
            )
        keys = list(self._space.keys())
        if self._reducer is not None:
            keys = list(dict.fromkeys(self._reducer.canonical_keys(keys)))
        return self._expand(dict.fromkeys(keys), keys, exhaustive=True)

    def _expand(
        self, frontier: Dict[int, None], initial_keys: List[int], exhaustive: bool
    ) -> ExploredSystem:
        space = self._space
        specification = self._specification
        protocol = self._protocol
        keys: List[int] = []
        successors: Dict[int, Tuple[int, ...]] = {}
        safe: Dict[int, bool] = {}
        terminal: List[int] = []
        stack = list(frontier)
        stack.reverse()  # pop() then visits the region in its given order
        while stack:
            key = stack.pop()
            if key in successors:
                continue
            configuration = space.decode(key)
            keys.append(key)
            safe[key] = bool(specification.is_safe(configuration, protocol))
            pairs = self.successor_configurations(configuration)
            if pairs[0][0] is None:
                terminal.append(key)
                successors[key] = (key,)
                continue
            # Deduplicate while preserving the deterministic selection order
            # (encode_many bulk-packs the batch through the array codec on
            # wide expansions, per-vertex lookups otherwise).  Under a
            # symmetry quotient, canonicalize before dedup so orbit-equal
            # successors collapse to one representative edge.
            raw_keys = space.encode_many(
                [successor for _selection, successor in pairs]
            )
            if self._reducer is not None:
                raw_keys = self._reducer.canonical_keys(raw_keys)
            successor_keys = tuple(dict.fromkeys(raw_keys))
            successors[key] = successor_keys
            if len(successors) > self._max_states:
                raise VerificationError(
                    f"reachable region exceeds the exploration cap of "
                    f"{self._max_states} configurations"
                )
            for successor_key in successor_keys:
                if successor_key not in successors:
                    stack.append(successor_key)
        return ExploredSystem(
            space=space,
            daemon_class=self._daemon_class,
            keys=keys,
            successors=successors,
            safe=safe,
            initial_keys=initial_keys,
            terminal_keys=frozenset(terminal),
            exhaustive=exhaustive,
            reducer=self._reducer,
        )
