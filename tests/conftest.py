"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    grid_graph,
    path_graph,
    ring_graph,
    star_graph,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded random generator."""
    return random.Random(12345)


@pytest.fixture
def ring6() -> Graph:
    return ring_graph(6)


@pytest.fixture
def path5() -> Graph:
    return path_graph(5)


@pytest.fixture
def star5() -> Graph:
    return star_graph(5)


@pytest.fixture
def grid3x3() -> Graph:
    return grid_graph(3, 3)


@pytest.fixture
def complete4() -> Graph:
    return complete_graph(4)


@pytest.fixture(params=["ring", "path", "star", "grid", "complete"])
def small_graph(request) -> Graph:
    """A parametrized family of small connected graphs."""
    return {
        "ring": ring_graph(6),
        "path": path_graph(5),
        "star": star_graph(5),
        "grid": grid_graph(3, 3),
        "complete": complete_graph(4),
    }[request.param]
