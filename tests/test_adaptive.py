"""Tests for :mod:`repro.adaptive` — detector, engine switching, protocol.

Three contracts are pinned here:

* the :class:`RegimeDetector` is a pure function of its observation
  stream (Hypothesis: identical streams produce identical estimate
  streams, and ``reset()`` restores a fresh detector);
* ``engine="adaptive"`` is observationally identical to the fixed
  backends — under pure-dense (sd), pure-sparse (cd) and regime-switching
  schedules, in both trace modes, with a gapless ``stop_when`` stream —
  and degrades to a single dict segment without NumPy;
* :class:`AdaptiveProtocol` stabilizes across rule-set switches and
  reports a deterministic, internally consistent run record.

The whole module runs with and without NumPy installed (the no-NumPy CI
job runs it too): the with-NumPy-only promotion assertions guard on
``numpy_available()``.
"""

from __future__ import annotations

import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptiveProtocol,
    RegimeDetector,
    SwitchEvent,
)
from repro.core import (
    CentralDaemon,
    RegimeSwitchingDaemon,
    Simulator,
    SynchronousDaemon,
    make_daemon,
    numpy_available,
)
from repro.exceptions import DaemonError, SimulationError
from repro.graphs import ring_graph
from repro.mutex import SSME

# --------------------------------------------------------------------- #
# Detector
# --------------------------------------------------------------------- #

#: One observation: (selection_size, enabled_size) with size <= enabled.
observations = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).map(
        lambda pair: (min(pair), max(pair))
    ),
    min_size=0,
    max_size=40,
)


def _estimate_stream(detector: RegimeDetector, stream):
    estimates = []
    for selection_size, enabled_size in stream:
        detector.observe(
            selection_size, enabled_size, frozenset(range(selection_size))
        )
        estimates.append(detector.estimate())
    return estimates


@settings(max_examples=40, deadline=None)
@given(stream=observations)
def test_detector_is_a_pure_function_of_the_observation_stream(stream):
    first = _estimate_stream(RegimeDetector(12), stream)
    second = _estimate_stream(RegimeDetector(12), stream)
    assert first == second

    # reset() restores a fresh detector: replaying the stream reproduces
    # the exact estimate stream (this is what makes seeded adaptive runs
    # reproducible end to end).
    detector = RegimeDetector(12)
    _estimate_stream(detector, stream)
    detector.reset()
    assert detector.observations == 0
    assert _estimate_stream(detector, stream) == first


def test_detector_warmup_hysteresis_and_classification():
    detector = RegimeDetector(10, min_observations=8)
    for _ in range(7):
        detector.observe(10, 10)
        assert detector.classify() is None  # warmup
    detector.observe(10, 10)
    assert detector.classify() == RegimeDetector.DENSE
    assert detector.estimate().regime == RegimeDetector.DENSE

    # A long sparse phase pulls the EWMA through the hysteresis band
    # (None in between) down to a sparse classification.
    seen = []
    for _ in range(20):
        detector.observe(1, 5)
        seen.append(detector.classify())
    assert seen[-1] == RegimeDetector.SPARSE
    assert None in seen  # the band between the thresholds was crossed

    # Coverage tracks |selection| / |enabled| independently of density:
    # the last samples selected 1 of 5 enabled.
    assert 0.0 < detector.coverage < 1.0


def test_detector_overlap_identity_fast_path():
    detector = RegimeDetector(4)
    selection = frozenset({0, 1, 2, 3})
    detector.observe(4, 4, selection)
    detector.observe(4, 4, selection)  # same object: overlap sample 1.0
    assert detector.overlap == 1.0
    detector.observe(2, 4, frozenset({0, 1}))
    assert detector.overlap < 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 0},
        {"smoothing": 0.0},
        {"smoothing": 1.5},
        {"window": 0},
        {"dense_threshold": 0.2, "sparse_threshold": 0.5},
        {"dense_threshold": 1.2},
        {"min_observations": 0},
    ],
)
def test_detector_rejects_bad_parameters(kwargs):
    with pytest.raises(SimulationError):
        RegimeDetector(**{"n": 8, **kwargs})


# --------------------------------------------------------------------- #
# The regime-switch workload daemon
# --------------------------------------------------------------------- #


def test_regime_switching_daemon_phases_and_selections():
    daemon = RegimeSwitchingDaemon(dense_steps=3, sparse_steps=5)
    assert [daemon.in_dense_phase(i) for i in range(8)] == (
        [True] * 3 + [False] * 5
    )
    assert daemon.in_dense_phase(8)  # next period

    protocol = SSME(ring_graph(6))
    daemon.bind(protocol)
    configuration = protocol.random_configuration(random.Random(0))
    enabled = protocol.enabled_vertices(configuration)
    rng = random.Random(1)
    assert daemon.select(enabled, configuration, 0, rng) == enabled
    sparse = daemon.select(enabled, configuration, 4, rng)
    assert len(sparse) == 1 and sparse <= enabled

    # Advisory flags stay at the sparse defaults: static selection must
    # not route this daemon to the array backends (that is adaptive's job).
    assert not daemon.dense and not daemon.synchronous


def test_regime_switching_daemon_registry_and_validation():
    daemon = make_daemon("regime-switch")
    assert isinstance(daemon, RegimeSwitchingDaemon)
    assert (daemon.dense_steps, daemon.sparse_steps) == (64, 192)
    with pytest.raises(DaemonError):
        RegimeSwitchingDaemon(dense_steps=0)
    with pytest.raises(DaemonError):
        RegimeSwitchingDaemon(sparse_steps=0)


# --------------------------------------------------------------------- #
# Adaptive engine equivalence
# --------------------------------------------------------------------- #

DAEMONS = {
    "sd": SynchronousDaemon,
    "cd": CentralDaemon,
    "regime-switch": lambda: RegimeSwitchingDaemon(48, 96),
}


def _run(protocol, daemon_name, engine, trace, initial, steps, seed):
    simulator = Simulator(
        protocol,
        DAEMONS[daemon_name](),
        rng=random.Random(seed),
        engine=engine,
        trace=trace,
    )
    execution = simulator.run(initial, max_steps=steps)
    return simulator, execution


def _normalized_records(execution):
    normalized = []
    for index in range(execution.steps):
        records = sorted(
            execution.activation_records(index),
            key=lambda r: (repr(r.vertex), r.rule_name),
        )
        normalized.append(
            [(r.vertex, r.rule_name, r.old_state, r.new_state) for r in records]
        )
    return normalized


@pytest.mark.parametrize("daemon_name", sorted(DAEMONS))
@pytest.mark.parametrize("trace", ["full", "light"])
def test_adaptive_engine_is_bit_identical_to_incremental(daemon_name, trace):
    protocol = SSME(ring_graph(16))
    initial = protocol.random_configuration(random.Random(3))
    steps = 288 if daemon_name == "regime-switch" else 120
    _, reference = _run(protocol, daemon_name, "incremental", "full", initial, steps, 7)
    simulator, adaptive = _run(protocol, daemon_name, "adaptive", trace, initial, steps, 7)

    assert adaptive.steps == reference.steps
    assert adaptive.truncated == reference.truncated
    assert list(adaptive.configurations) == list(reference.configurations)
    assert [adaptive.selection(i) for i in range(adaptive.steps)] == [
        reference.selection(i) for i in range(reference.steps)
    ]
    assert [adaptive.enabled_at(i) for i in range(adaptive.steps)] == [
        reference.enabled_at(i) for i in range(reference.steps)
    ]
    assert _normalized_records(adaptive) == _normalized_records(reference)
    assert adaptive.moves() == reference.moves()
    assert adaptive.rule_counts() == reference.rule_counts()

    # The switch history always exists and is duplicate-free; its step
    # indices are strictly increasing from 0.
    switches = simulator.last_run_switches
    assert switches[0].step == 0
    assert all(isinstance(event, SwitchEvent) for event in switches)
    assert all(b.step > a.step for a, b in zip(switches, switches[1:]))
    assert all(b.backend != a.backend for a, b in zip(switches, switches[1:]))


def test_adaptive_engine_promotes_under_a_dense_schedule():
    pytest.importorskip("numpy")
    protocol = SSME(ring_graph(24))
    initial = protocol.random_configuration(random.Random(0))
    simulator, _ = _run(protocol, "sd", "adaptive", "light", initial, 96, 0)
    backends = [event.backend for event in simulator.last_run_switches]
    assert backends[0] == "dict"
    assert backends[-1] == "vector-superstep"  # sd densities promote
    assert simulator.last_run_backend == "vector-superstep"


def test_adaptive_engine_switches_back_and_forth_under_regime_switching():
    pytest.importorskip("numpy")
    protocol = SSME(ring_graph(24))
    initial = protocol.random_configuration(random.Random(0))
    simulator, _ = _run(protocol, "regime-switch", "adaptive", "light", initial, 288, 0)
    backends = [event.backend for event in simulator.last_run_switches]
    assert backends[0] == "dict"
    assert "vector" in backends  # promoted during a dense phase
    assert len(backends) >= 3  # ... and demoted again


def test_adaptive_engine_stays_dict_under_a_sparse_schedule():
    protocol = SSME(ring_graph(16))
    initial = protocol.random_configuration(random.Random(0))
    simulator, _ = _run(protocol, "cd", "adaptive", "light", initial, 120, 0)
    assert simulator.last_run_switches == (SwitchEvent(0, "dict"),)
    assert simulator.last_run_backend == "dict"


def test_adaptive_engine_degrades_to_one_dict_segment_without_numpy(monkeypatch):
    monkeypatch.setitem(sys.modules, "numpy", None)
    assert not numpy_available()
    protocol = SSME(ring_graph(12))
    initial = protocol.random_configuration(random.Random(2))
    _, reference = _run(protocol, "sd", "incremental", "full", initial, 60, 5)
    simulator, adaptive = _run(protocol, "sd", "adaptive", "full", initial, 60, 5)
    assert simulator.last_run_backend == "dict"
    assert simulator.last_run_switches == (SwitchEvent(0, "dict"),)
    assert list(adaptive.configurations) == list(reference.configurations)


def test_adaptive_engine_stop_when_sees_a_gapless_global_stream():
    protocol = SSME(ring_graph(16))
    initial = protocol.random_configuration(random.Random(3))
    observed = []

    def stop_when(configuration, index):
        observed.append(index)
        return index == 70

    simulator = Simulator(
        protocol,
        RegimeSwitchingDaemon(24, 48),
        rng=random.Random(7),
        engine="adaptive",
        trace="light",
    )
    execution = simulator.run(initial, max_steps=288, stop_when=stop_when)
    # Exactly once per global index, in order, stopping where asked —
    # segment boundaries must neither skip nor re-present an index.
    assert observed == list(range(71))
    assert execution.steps == 70
    assert execution.truncated


# --------------------------------------------------------------------- #
# Adaptive protocol
# --------------------------------------------------------------------- #


def test_adaptive_protocol_stabilizes_under_the_synchronous_daemon():
    adaptive = AdaptiveProtocol(ring_graph(6))
    initial = adaptive.speculative.random_configuration(random.Random(4))
    run = adaptive.run(initial, SynchronousDaemon(), max_steps=120, rng=random.Random(0))
    assert run.final_legitimate
    assert run.switches[0] == (0, "speculative")
    # Safety (first index safe forever) is never later than legitimacy.
    assert run.safety_index <= run.stabilization_index <= run.steps + 1

    # Deterministic given seeds: the whole run record reproduces.
    again = adaptive.run(initial, SynchronousDaemon(), max_steps=120, rng=random.Random(0))
    assert again == run


def test_adaptive_protocol_switches_rule_sets_and_still_stabilizes():
    adaptive = AdaptiveProtocol(ring_graph(6), dwell=8)
    initial = adaptive.speculative.random_configuration(random.Random(1))
    run = adaptive.run(
        initial,
        RegimeSwitchingDaemon(24, 48),
        max_steps=360,
        rng=random.Random(2),
    )
    assert run.final_legitimate
    modes = [switch.mode for switch in run.switches]
    assert modes[0] == "speculative"
    assert all(b != a for a, b in zip(modes, modes[1:]))
    assert len(modes) >= 2  # the sparse phases demote to conservative
    assert run.safety_index <= run.stabilization_index <= run.steps + 1
    assert run.moves > 0


def test_adaptive_protocol_default_rule_sets_share_a_state_space():
    adaptive = AdaptiveProtocol(ring_graph(5))
    assert adaptive.conservative.K == adaptive.speculative.K
    rng = random.Random(9)
    for _ in range(5):
        configuration = adaptive.speculative.random_configuration(rng)
        assert adaptive.compatible(configuration)


def test_adaptive_protocol_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        AdaptiveProtocol(ring_graph(4), dwell=0)
    with pytest.raises(SimulationError):
        AdaptiveProtocol(ring_graph(4), initial_mode="turbo")
    with pytest.raises(SimulationError):
        AdaptiveProtocol(ring_graph(4)).run(
            None, SynchronousDaemon(), max_steps=-1
        )
