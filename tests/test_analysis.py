"""Unit tests for the analysis helpers (tables and metrics)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    fit_power_law,
    format_cell,
    format_markdown_table,
    format_table,
    growth_exponent,
    ratios,
    summarize,
    within_bound,
)


class TestFormatCell:
    def test_none_and_bool(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_floats(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, float_digits=4) == "3.1416"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"
        assert format_cell(float("nan")) == "nan"

    def test_other_types(self):
        assert format_cell(7) == "7"
        assert format_cell("abc") == "abc"


class TestTables:
    ROWS = [
        {"name": "ring", "n": 8, "steps": 2.0},
        {"name": "path", "n": 9, "steps": 4.0, "extra": True},
    ]

    def test_format_table_alignment_and_columns(self):
        text = format_table(self.ROWS)
        lines = text.splitlines()
        assert "name" in lines[0] and "extra" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows
        assert "ring" in lines[2]

    def test_format_table_with_title_and_column_selection(self):
        text = format_table(self.ROWS, columns=["name", "steps"], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        header_columns = [cell.strip() for cell in lines[1].split("|")]
        assert header_columns == ["name", "steps"]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])
        assert "(no rows)" in format_table([], title="t")

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| name")
        assert lines[1].startswith("|---")
        assert len(lines) == 4

    def test_markdown_table_empty(self):
        assert format_markdown_table([]) == "(no rows)"


class TestMetrics:
    def test_ratios(self):
        assert ratios([2, 4], [4, 0]) == [0.5, None]

    def test_ratios_length_mismatch(self):
        with pytest.raises(ValueError):
            ratios([1], [1, 2])

    def test_within_bound(self):
        assert within_bound([1, 2, 3], [1, 2, 3])
        assert not within_bound([2], [1])
        with pytest.raises(ValueError):
            within_bound([1], [])

    def test_fit_power_law_exact(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x**2 for x in xs]
        exponent, constant = fit_power_law(xs, ys)
        assert exponent == pytest.approx(2.0)
        assert constant == pytest.approx(3.0)

    def test_growth_exponent_linear(self):
        xs = [5, 10, 20, 40]
        ys = [7 * x for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(1.0)

    def test_fit_power_law_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 0], [1, 1])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [4, 4])

    def test_fit_power_law_drops_non_positive_points(self):
        exponent, _ = fit_power_law([0, 2, 4], [5, 8, 32])
        assert exponent == pytest.approx(2.0)

    def test_summarize(self):
        stats = summarize([1.0, 3.0, 5.0])
        assert stats["count"] == 3
        assert stats["min"] == 1.0
        assert stats["max"] == 5.0
        assert stats["mean"] == 3.0

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats["count"] == 0
        assert math.isnan(stats["mean"])
