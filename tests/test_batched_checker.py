"""Bit-identical equivalence of the batched array checker and the dict path.

The contract of :mod:`repro.verify.batched` is *exactness*, not
approximation: same reachable keys, same per-state successor lists (order
included), same safety labels, same game values, same lassos-that-replay.
These tests pin that contract on every daemon class over full products,
seeded regions, diverging instances and every protocol family with an
array codec — plus the engine dispatch (``engine="auto"|"dict"|"batched"``)
and the graceful no-NumPy degradation.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.baselines import (
    BfsSpanningTree,
    BfsTreeSpec,
    MaximalMatching,
    MaximalMatchingSpec,
)
from repro.exceptions import VerificationError
from repro.graphs import path_graph, ring_graph
from repro.mutex import SSME, DijkstraTokenRing, MutualExclusionSpec
from repro.unison import AsynchronousUnison, AsynchronousUnisonSpec
from repro.verify import (
    StateSpace,
    TransitionSystem,
    batched_supported,
    solve,
    verify_stabilization,
)

np = pytest.importorskip("numpy")

from repro.verify import BatchedTransitionSystem, solve_arrays  # noqa: E402
from repro.verify.batched import ArrayPacker  # noqa: E402

DAEMON_CLASSES = ("synchronous", "central", "distributed")


def assert_systems_identical(protocol, specification, daemon_class, initial=None):
    """Explore both paths and compare every observable, bit for bit."""
    space = StateSpace(protocol)
    dict_ts = TransitionSystem(
        protocol, specification, daemon_class, space=space
    )
    batched_ts = BatchedTransitionSystem(
        protocol, specification, daemon_class, space=space
    )
    if initial is None:
        dict_system = dict_ts.explore_full()
        batched_system = batched_ts.explore_full()
    else:
        dict_system = dict_ts.explore(initial)
        batched_system = batched_ts.explore(initial)
    as_dict = batched_system.to_explored_system()
    assert set(dict_system.keys) == set(as_dict.keys)
    assert dict_system.successors == as_dict.successors
    assert dict_system.safe == as_dict.safe
    assert set(dict_system.terminal_keys) == set(as_dict.terminal_keys)
    assert list(dict_system.initial_keys) == list(as_dict.initial_keys)
    dict_solution = solve(dict_system)
    array_solution = solve_arrays(batched_system)
    as_game = array_solution.to_game_solution()
    assert dict_solution.values == as_game.values
    assert dict_solution.legitimate == as_game.legitimate
    assert dict_solution.diverging == as_game.diverging
    assert dict_solution.exact_worst_case == array_solution.exact_worst_case


def replay_lasso(counterexample, protocol):
    """Check a lasso counterexample transition-by-transition."""
    configs = list(counterexample.stem) + list(counterexample.cycle)
    selections = list(counterexample.stem_selections) + list(
        counterexample.cycle_selections
    )
    assert len(configs) == len(selections)
    sequence = configs + [counterexample.cycle[0]]
    for i, selection in enumerate(selections):
        if not selection:
            assert sequence[i] == sequence[i + 1]
            continue
        successor, _ = protocol.apply(sequence[i], selection)
        assert successor == sequence[i + 1], f"replay mismatch at step {i}"


# --------------------------------------------------------------------- #
# Full-product equivalence, every daemon class
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("daemon_class", DAEMON_CLASSES)
class TestFullProductEquivalence:
    def test_dijkstra_stabilizing(self, daemon_class):
        protocol = DijkstraTokenRing.on_ring(4)
        assert_systems_identical(
            protocol, MutualExclusionSpec(protocol), daemon_class
        )

    def test_dijkstra_diverging(self, daemon_class):
        # K = 2 < n + 1: legitimately diverges, the values/diverging sets
        # must still match exactly.
        protocol = DijkstraTokenRing.on_ring(3, K=2)
        assert_systems_identical(
            protocol, MutualExclusionSpec(protocol), daemon_class
        )

    def test_unison(self, daemon_class):
        n = 3 if daemon_class == "distributed" else 4
        protocol = AsynchronousUnison(ring_graph(n), alpha=2, K=8)
        assert_systems_identical(
            protocol, AsynchronousUnisonSpec(protocol), daemon_class
        )

    def test_bfs_tree(self, daemon_class):
        protocol = BfsSpanningTree(path_graph(4))
        assert_systems_identical(protocol, BfsTreeSpec(protocol), daemon_class)

    def test_matching(self, daemon_class):
        protocol = MaximalMatching(ring_graph(4))
        assert_systems_identical(
            protocol, MaximalMatchingSpec(protocol), daemon_class
        )

    def test_region_exploration(self, daemon_class):
        protocol = DijkstraTokenRing.on_ring(5)
        initial = [
            protocol.configuration(
                {v: (v * 2) % protocol.K for v in protocol.graph.vertices}
            ),
            protocol.configuration({v: 0 for v in protocol.graph.vertices}),
        ]
        assert_systems_identical(
            protocol, MutualExclusionSpec(protocol), daemon_class, initial
        )


# --------------------------------------------------------------------- #
# Engine dispatch and result API
# --------------------------------------------------------------------- #
class TestEngineDispatch:
    def test_engines_agree_end_to_end(self):
        protocol = DijkstraTokenRing.on_ring(4)
        specification = MutualExclusionSpec(protocol)
        by_engine = {
            engine: verify_stabilization(
                protocol, specification, "central", engine=engine
            )
            for engine in ("dict", "batched", "auto")
        }
        reference = by_engine["dict"]
        for result in by_engine.values():
            assert result.exact_worst_case == reference.exact_worst_case
            assert result.state_count == reference.state_count
            assert result.transition_count == reference.transition_count
            assert result.legitimate_count == reference.legitimate_count
            assert result.stabilizes == reference.stabilizes
        legit = protocol.legitimate_configuration(2)
        batched = by_engine["batched"]
        assert batched.value_of(legit) == reference.value_of(legit) == 0
        assert batched.is_certified_legitimate(legit)
        assert sorted(batched.legitimate_configurations(), key=repr) == sorted(
            reference.legitimate_configurations(), key=repr
        )

    def test_unknown_engine_rejected(self):
        protocol = DijkstraTokenRing.on_ring(3)
        with pytest.raises(VerificationError, match="unknown engine"):
            verify_stabilization(
                protocol, MutualExclusionSpec(protocol), "central",
                engine="gpu",
            )

    def test_lassos_replay_on_both_engines(self):
        protocol = DijkstraTokenRing.on_ring(3, K=2)
        specification = MutualExclusionSpec(protocol)
        for engine in ("dict", "batched"):
            for daemon_class in ("synchronous", "distributed"):
                result = verify_stabilization(
                    protocol, specification, daemon_class, engine=engine
                )
                assert not result.stabilizes
                assert result.counterexample is not None
                replay_lasso(result.counterexample, protocol)

    def test_exploration_cap_message_matches_dict_path(self):
        protocol = DijkstraTokenRing.on_ring(5)
        specification = MutualExclusionSpec(protocol)
        errors = {}
        for engine in ("dict", "batched"):
            with pytest.raises(VerificationError) as excinfo:
                verify_stabilization(
                    protocol, specification, "central",
                    engine=engine, max_states=100,
                )
            errors[engine] = str(excinfo.value)
        assert errors["dict"] == errors["batched"]


# --------------------------------------------------------------------- #
# The packer (state identity without bignums)
# --------------------------------------------------------------------- #
class TestArrayPacker:
    def _packer(self, protocol):
        space = StateSpace(protocol)
        return space, ArrayPacker(space, protocol.array_codec())

    def test_keys_match_state_space_encoding(self):
        protocol = DijkstraTokenRing.on_ring(5)
        space, packer = self._packer(protocol)
        assert packer.packable
        rng = random.Random(0)
        configurations = [
            protocol.random_configuration(rng) for _ in range(20)
        ]
        keys = [space.encode(c) for c in configurations]
        idx = packer.indices_of_keys(keys)
        assert packer.python_keys(idx) == keys
        assert packer.configurations_of(idx) == configurations
        # codec-row round trip: rows_of and indices_of invert each other
        assert (packer.indices_of(packer.rows_of(idx)) == idx).all()

    def test_wide_keys_use_column_groups(self):
        # SSME ring(10): the full mixed-radix key exceeds int64, so the
        # packer must split into column groups yet still reproduce the
        # exact arbitrary-precision python keys.
        protocol = SSME(ring_graph(10))
        space, packer = self._packer(protocol)
        assert not packer.packable
        assert packer.columns > 1
        rng = random.Random(1)
        configurations = [
            protocol.random_configuration(rng) for _ in range(10)
        ]
        keys = [space.encode(c) for c in configurations]
        idx = packer.indices_of_keys(keys)
        assert packer.python_keys(idx) == keys
        assert packer.configurations_of(idx) == configurations

    def test_out_of_domain_row_is_a_clear_error(self):
        protocol = DijkstraTokenRing.on_ring(4, K=5)
        space, packer = self._packer(protocol)
        rows = packer.rows_of(
            packer.indices_of_keys([space.encode(
                protocol.configuration({v: 0 for v in protocol.graph.vertices})
            )])
        )
        rows[0, 0, 0] = 99  # clock value far outside 0..K-1
        with pytest.raises(VerificationError, match="outside the declared"):
            packer.indices_of(rows)


# --------------------------------------------------------------------- #
# No-NumPy degradation
# --------------------------------------------------------------------- #
class TestNoNumpyDegradation:
    def test_auto_falls_back_and_batched_raises(self, monkeypatch):
        protocol = DijkstraTokenRing.on_ring(3)
        specification = MutualExclusionSpec(protocol)
        with_numpy = verify_stabilization(
            protocol, specification, "central", engine="auto"
        )
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert not batched_supported(protocol, specification)
        without_numpy = verify_stabilization(
            protocol, specification, "central", engine="auto"
        )
        assert without_numpy.exact_worst_case == with_numpy.exact_worst_case
        assert without_numpy.state_count == with_numpy.state_count
        with pytest.raises(VerificationError, match="batched"):
            verify_stabilization(
                protocol, specification, "central", engine="batched"
            )
